//! E10 — engine batch throughput: requests/second for a mixed batch at 1, 4,
//! and all-cores workers, with the cache off (every request computed) and on
//! (duplicates served from the cache).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qld_engine::{Engine, EngineConfig};
use qld_harness::workloads;

fn bench_engine(c: &mut Criterion) {
    let requests = workloads::engine_batch(120);
    let mut group = c.benchmark_group("e10_engine");
    group.throughput(Throughput::Elements(requests.len() as u64));
    let all_cores = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .min(8);
    let mut worker_counts = vec![1, 4, all_cores];
    worker_counts.sort_unstable();
    worker_counts.dedup();
    for workers in worker_counts {
        for cache in [false, true] {
            group.bench_with_input(
                BenchmarkId::new(
                    if cache { "cached" } else { "uncached" },
                    format!("workers={workers}"),
                ),
                &requests,
                |b, requests| {
                    b.iter(|| {
                        let engine = Engine::new(EngineConfig {
                            workers,
                            cache,
                            ..EngineConfig::default()
                        });
                        criterion::black_box(engine.run_batch(requests.clone()))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = qld_bench::quick();
    targets = bench_engine
}
criterion_main!(benches);
