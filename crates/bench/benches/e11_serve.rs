//! E11 — serve-session throughput: a mixed wire-format workload streamed
//! through `Engine::serve_with` (the same path every socket connection
//! takes), comparing in-order emission with out-of-order (`arrival`)
//! streaming, and a tight LRU cache against the default capacity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qld_engine::{Engine, EngineConfig, OrderMode, ServeOptions};
use qld_harness::workloads;

fn bench_serve(c: &mut Criterion) {
    let input: String = workloads::engine_wire_lines(120)
        .iter()
        .map(|line| format!("{line}\n"))
        .collect();
    let requests = input.lines().count() as u64;
    let mut group = c.benchmark_group("e11_serve");
    group.throughput(Throughput::Elements(requests));
    for order in [OrderMode::Input, OrderMode::Arrival] {
        for (cache_name, cache_capacity) in [("lru64k", 65_536usize), ("lru16", 16)] {
            group.bench_with_input(
                BenchmarkId::new(
                    format!("order={}", order.name()),
                    format!("cache={cache_name}"),
                ),
                &input,
                |b, input| {
                    b.iter(|| {
                        let engine = Engine::new(EngineConfig {
                            workers: 4,
                            cache_capacity,
                            ..EngineConfig::default()
                        });
                        let mut out = Vec::with_capacity(1 << 16);
                        let summary = engine
                            .serve_with(
                                input.as_bytes(),
                                &mut out,
                                &ServeOptions {
                                    order,
                                    ..ServeOptions::default()
                                },
                            )
                            .expect("serve session");
                        assert_eq!(summary.requests, requests);
                        criterion::black_box(out)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = qld_bench::quick();
    targets = bench_serve
}
criterion_main!(benches);
