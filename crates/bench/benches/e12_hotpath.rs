//! E12 — set-representation hot path: `oracle::classify` and transversal-check
//! throughput of the inline `VertexSet` + `HypergraphIndex` layer, with the faithful
//! pre-refactor replica from `qld_harness::hotpath` as the baseline.
//!
//! Besides the Criterion timings, every run appends one JSON line to
//! `target/e12_hotpath.json` — the bench's before/after **trajectory** — so hot-path
//! regressions are visible across commits.  Set `E12_SMOKE=1` to skip the Criterion
//! measurement windows and record a single fast iteration (the CI smoke mode).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion, Throughput};
use qld_core::oracle::{classify, MaterializedOracle};
use qld_harness::hotpath::{self, ref_is_transversal, ClassifyWorkload, QueryDrivenOracle, RefSet};
use qld_logspace::SpaceMeter;

fn smoke() -> bool {
    std::env::var("E12_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn bench_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_hotpath/classify");
    for (tag, workload) in [
        ("inline", hotpath::classify_workload_small()),
        ("spilled", hotpath::classify_workload_spilled()),
    ] {
        let ClassifyWorkload { inst, sets } = workload;
        let meter = SpaceMeter::new();
        let oracles: Vec<MaterializedOracle> = sets
            .iter()
            .map(|s| MaterializedOracle::new(s.clone(), &meter))
            .collect();
        group.throughput(Throughput::Elements(oracles.len() as u64));
        group.bench_function(BenchmarkId::new("optimized", tag), |b| {
            b.iter(|| {
                for o in &oracles {
                    black_box(classify(&inst, o, &meter));
                }
            })
        });
        group.bench_function(BenchmarkId::new("baseline", tag), |b| {
            b.iter(|| {
                for o in &oracles {
                    black_box(classify(&inst, &QueryDrivenOracle(o), &meter));
                }
            })
        });
    }
    group.finish();
}

fn bench_transversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_hotpath/transversal");
    for (tag, n, m, seed) in [
        ("inline", 48usize, 40usize, 0xE12Au64),
        ("spilled", 96, 40, 0xE12B),
    ] {
        let (h, raw) = hotpath::transversal_workload(n, m, seed);
        let mut candidates = hotpath::repair_to_transversals(&h, &raw[..raw.len() / 2]);
        candidates.extend_from_slice(&raw[raw.len() / 2..]);
        let ref_edges: Vec<RefSet> = h.edges().iter().map(RefSet::from_set).collect();
        let ref_candidates: Vec<RefSet> = candidates.iter().map(RefSet::from_set).collect();
        h.index(); // cached outside the timed region, as in the serving hot path
        group.throughput(Throughput::Elements(candidates.len() as u64));
        group.bench_function(BenchmarkId::new("optimized", tag), |b| {
            b.iter(|| {
                for t in &candidates {
                    black_box(h.is_transversal(t));
                }
            })
        });
        group.bench_function(BenchmarkId::new("baseline", tag), |b| {
            b.iter(|| {
                for t in &ref_candidates {
                    black_box(ref_is_transversal(&ref_edges, t));
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = qld_bench::quick();
    targets = bench_classify, bench_transversal
}

/// Runs the before/after measurements and appends one JSON line to the trajectory.
fn record_trajectory() {
    let iters = if smoke() { 1 } else { 48 };
    let metrics = hotpath::measure_all(iters);
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let rows: Vec<String> = metrics.iter().map(|m| m.to_json()).collect();
    let line = format!(
        "{{\"bench\":\"e12_hotpath\",\"unix_secs\":{},\"smoke\":{},\"metrics\":[{}]}}",
        unix_secs,
        smoke(),
        rows.join(",")
    );
    for m in &metrics {
        println!(
            "e12   {:<22} n={:<4} baseline {:>10.1} ns/iter  optimized {:>10.1} ns/iter  speedup {:>5.2}x",
            m.name,
            m.universe,
            m.baseline_ns,
            m.optimized_ns,
            m.speedup()
        );
    }
    match qld_bench::append_trajectory("e12_hotpath.json", &line) {
        Ok(path) => println!("e12   trajectory appended to {}", path.display()),
        Err(e) => eprintln!("e12   {e}"),
    }
}

fn main() {
    if !smoke() {
        benches();
    }
    record_trajectory();
}
