//! E13 — the streaming job pipeline: time-to-first-result vs. time-to-last
//! for streamed transversal enumeration and full-border identification
//! (`stream=` requests, `qld enumerate --stream`, `mine --full`).
//!
//! Criterion times three shapes per workload: the latency to the *first*
//! streamed item (the number streaming exists to shrink), a full stream
//! drain, and the one-shot run of the same request.  Besides the Criterion
//! timings, every run appends one JSON line to `target/e13_stream.json` —
//! the bench's **trajectory** — so streaming-latency regressions are visible
//! across commits.  Set `E13_SMOKE=1` to skip the Criterion measurement
//! windows and record a single fast pass (the CI smoke mode).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use qld_engine::{ChunkPayload, Engine, EngineConfig, StreamEvent, StreamRunOptions};
use qld_harness::{experiments, workloads};
use std::io::Write;

fn smoke() -> bool {
    std::env::var("E13_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// A fresh cache-less single-worker engine (cached runs would measure the
/// replay path, not the solvers).
fn engine() -> Engine {
    Engine::new(EngineConfig {
        workers: 1,
        cache: false,
        ..EngineConfig::default()
    })
}

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_stream");
    for (name, request) in workloads::streaming_workloads() {
        let engine = engine();
        let request_first = request.clone();
        group.bench_with_input(
            BenchmarkId::new("first_item", &name),
            &request_first,
            |b, request| {
                b.iter(|| {
                    let handle = engine.run_streaming(request.clone(), StreamRunOptions::default());
                    // Wait for the first item, cancel, drain the remainder.
                    let mut first = None;
                    while let Some(event) = handle.next_event() {
                        match event {
                            StreamEvent::Chunk(frame) => {
                                if matches!(frame.payload, ChunkPayload::Item(_)) {
                                    first = Some(frame);
                                    break;
                                }
                            }
                            StreamEvent::Done(_) => break,
                        }
                    }
                    handle.cancel_token().cancel();
                    while let Some(event) = handle.next_event() {
                        if matches!(event, StreamEvent::Done(_)) {
                            break;
                        }
                    }
                    black_box(first)
                })
            },
        );
        let request_full = request.clone();
        group.bench_with_input(
            BenchmarkId::new("full_stream", &name),
            &request_full,
            |b, request| {
                b.iter(|| {
                    let handle = engine.run_streaming(request.clone(), StreamRunOptions::default());
                    let mut chunks = 0u64;
                    while let Some(event) = handle.next_event() {
                        match event {
                            StreamEvent::Chunk(_) => chunks += 1,
                            StreamEvent::Done(response) => {
                                assert!(response.is_ok());
                                break;
                            }
                        }
                    }
                    black_box(chunks)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("oneshot", &name),
            &request,
            |b, request| b.iter(|| black_box(engine.run_one(request.clone()))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = qld_bench::quick();
    targets = bench_streaming
}

/// `target/e13_stream.json`, located from the bench executable's own path
/// (`target/<profile>/deps/e13_stream-…`).
fn trajectory_path() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    // deps -> profile -> target
    let target = exe.parent()?.parent()?.parent()?;
    Some(target.join("e13_stream.json"))
}

/// Runs the streaming measurements and appends one JSON line to the
/// trajectory.
fn record_trajectory() {
    let metrics = experiments::measure_streaming();
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let rows: Vec<String> = metrics.iter().map(|m| m.to_json()).collect();
    let line = format!(
        "{{\"bench\":\"e13_stream\",\"unix_secs\":{},\"smoke\":{},\"metrics\":[{}]}}",
        unix_secs,
        smoke(),
        rows.join(",")
    );
    for m in &metrics {
        println!(
            "e13   {:<42} items={:<4} first {:>10.1} us  done {:>10.1} us  ({:>5.1}% of done)  oneshot {:>10.1} us  agree={}",
            m.name,
            m.items,
            m.first_item_us,
            m.done_us,
            100.0 * m.first_fraction(),
            m.oneshot_us,
            m.agree
        );
    }
    match trajectory_path() {
        Some(path) => {
            let result = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| writeln!(f, "{line}"));
            match result {
                Ok(()) => println!("e13   trajectory appended to {}", path.display()),
                Err(e) => eprintln!("e13   could not write {}: {e}", path.display()),
            }
        }
        None => eprintln!("e13   could not locate the target directory; line: {line}"),
    }
}

fn main() {
    if !smoke() {
        benches();
    }
    record_trajectory();
}
