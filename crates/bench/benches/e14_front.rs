//! E14 — the shard-fleet router (`qld front`): request throughput through
//! the front socket at 1 vs. 2 backend shards, plus crash-recovery time.
//!
//! Criterion times a warm pass of the mixed wire workload through an
//! in-process router backed by real `qld serve` shard processes — the hot
//! path is the routing/relay hop itself, since the shards answer from their
//! caches after the setup pass.  Besides the Criterion timings, every run
//! appends one JSON line to `target/e14_front.json` — the bench's
//! **trajectory** — covering cold-pass throughput, warm re-ask affinity, and
//! supervisor recovery time at each shard count.  Set `E14_SMOKE=1` to skip
//! the Criterion measurement windows and record a single fast pass (the CI
//! smoke mode).  Both modes need Unix sockets and a built `qld` binary
//! (`$QLD_BIN`, or a `qld` next to the `target/<profile>/` directory); when
//! either is missing the run degrades to an empty trajectory entry.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use qld_harness::experiments;
use std::io::Write;

fn smoke() -> bool {
    std::env::var("E14_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn bench_front(c: &mut Criterion) {
    #[cfg(unix)]
    bench_front_unix(c);
    #[cfg(not(unix))]
    let _ = c;
}

#[cfg(unix)]
fn bench_front_unix(c: &mut Criterion) {
    use qld_engine::SocketServer;
    use qld_front::{policy_from_name, session_handler, Fleet, FleetConfig, Router};
    use qld_harness::workloads;
    use std::io::{BufRead, BufReader};
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;
    use std::time::Duration;

    let Some(binary) = experiments::locate_qld_binary() else {
        eprintln!("e14   no qld binary found (set QLD_BIN); skipping Criterion group");
        return;
    };
    let lines = workloads::engine_wire_lines(20);

    let mut group = c.benchmark_group("e14_front");
    for shards in [1usize, 2] {
        let dir =
            std::env::temp_dir().join(format!("qld-e14-bench-{}-{}", shards, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = FleetConfig::new(shards, binary.clone(), dir.join("shards"));
        config.probe_interval = Duration::from_millis(50);
        config.spec.workers = Some(2);
        let fleet = Fleet::start(config).expect("fleet start");
        let policy = policy_from_name("hash", shards).expect("hash policy");
        let router = Router::new(Arc::clone(&fleet), policy, true);
        let socket = dir.join("front.sock");
        let server = SocketServer::bind(&socket).expect("bind front socket");
        let shutdown = server.shutdown_handle();
        let runner = std::thread::spawn(move || server.run_with(Arc::new(session_handler(router))));

        let pass = |tag: &str| -> u64 {
            let mut stream = UnixStream::connect(&socket).expect("connect to front");
            for (i, line) in lines.iter().enumerate() {
                writeln!(stream, "{line} id={tag}-{i}").expect("send");
            }
            stream
                .shutdown(std::net::Shutdown::Write)
                .expect("half-close");
            let mut answered = 0u64;
            for response in BufReader::new(stream).lines() {
                assert!(!response.expect("response line").is_empty());
                answered += 1;
            }
            answered
        };

        // Warm the shard caches so Criterion times the router hop, not the
        // solvers.
        assert_eq!(pass("warmup"), lines.len() as u64);

        group.bench_with_input(
            BenchmarkId::new("warm_pass", shards),
            &shards,
            |b, _shards| {
                let mut round = 0u64;
                b.iter(|| {
                    round += 1;
                    black_box(pass(&format!("r{round}")))
                })
            },
        );

        shutdown.shutdown();
        let _ = runner.join();
        fleet.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = qld_bench::quick();
    targets = bench_front
}

/// `target/e14_front.json`, located from the bench executable's own path
/// (`target/<profile>/deps/e14_front-…`).
fn trajectory_path() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    // deps -> profile -> target
    let target = exe.parent()?.parent()?.parent()?;
    Some(target.join("e14_front.json"))
}

/// Runs the fleet measurements and appends one JSON line to the trajectory.
fn record_trajectory() {
    let metrics = experiments::measure_fleet();
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let rows: Vec<String> = metrics.iter().map(|m| m.to_json()).collect();
    let line = format!(
        "{{\"bench\":\"e14_front\",\"unix_secs\":{},\"smoke\":{},\"metrics\":[{}]}}",
        unix_secs,
        smoke(),
        rows.join(",")
    );
    for m in &metrics {
        println!(
            "e14   shards={} requests={} errors={} cold {:>8.1} ms ({:>7.1} req/s)  warm-hits={}  recovery {}  ok={}",
            m.shards,
            m.requests,
            m.errors,
            m.total_ms,
            m.req_per_s,
            m.warm_hits,
            if m.recovery_ms < 0.0 {
                "-".to_string()
            } else {
                format!("{:.1} ms", m.recovery_ms)
            },
            m.ok
        );
    }
    if metrics.is_empty() {
        println!("e14   no measurements (needs unix sockets and a built `qld` binary)");
    }
    match trajectory_path() {
        Some(path) => {
            let result = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| writeln!(f, "{line}"));
            match result {
                Ok(()) => println!("e14   trajectory appended to {}", path.display()),
                Err(e) => eprintln!("e14   could not write {}: {e}", path.display()),
            }
        }
        None => eprintln!("e14   could not locate the target directory; line: {line}"),
    }
}

fn main() {
    if !smoke() {
        benches();
    }
    record_trajectory();
}
