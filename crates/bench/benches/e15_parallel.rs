//! E15 — intra-query work stealing: 1-vs-N-worker latency of the largest
//! `QuadChain` duality queries with subtask splitting forced on
//! (`parallel_threshold = 0`) and off (`usize::MAX`), via
//! `qld_harness::experiments::measure_parallel`.
//!
//! Besides the Criterion timings, every run appends one JSON line to
//! `target/e15_parallel.json` — the trajectory across commits.  The line also
//! re-records this container's E10 batch throughput and E12 hot-path metrics,
//! so the parallelism trajectory carries its own single-machine baseline.
//! Set `E15_SMOKE=1` to skip the Criterion windows and record one fast
//! iteration at a small scale (the CI smoke mode).
//!
//! On a single-CPU container the wall-time columns show parity between 1 and
//! N workers (there is nothing to run the stolen subtasks on in parallel);
//! the `subtasks` / `subtasks_stolen` counters still prove the split-and-steal
//! machinery end to end, and `nproc` is recorded so readers can tell the two
//! regimes apart.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use qld_engine::{Engine, EngineConfig, FixedPolicy, SolverKind};
use qld_harness::experiments::measure_parallel;
use qld_harness::{hotpath, workloads};
use std::sync::Arc;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("E15_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn nproc() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

fn bench_parallel(c: &mut Criterion) {
    use qld_engine::Request;
    use qld_hypergraph::generators;

    let mut group = c.benchmark_group("e15_parallel/decide");
    let li = generators::matching_instance(8);
    let request = Request::DecideDuality { g: li.g, h: li.h };
    for (tag, workers, threshold) in [
        ("1w-seq", 1usize, usize::MAX),
        ("1w-split", 1, 0usize),
        ("2w-split", 2, 0),
    ] {
        let engine = Engine::new(EngineConfig {
            workers,
            cache: false,
            policy: Arc::new(FixedPolicy(SolverKind::QuadChain)),
            parallel_threshold: threshold,
            ..EngineConfig::default()
        });
        group.bench_function(BenchmarkId::new("matching-8", tag), |b| {
            b.iter(|| black_box(engine.run_one(request.clone())))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = qld_bench::quick();
    targets = bench_parallel
}

/// This container's E10 batch throughput (default engine, mixed workload),
/// re-measured so the trajectory line carries a machine baseline.
fn e10_reqs_per_s() -> f64 {
    let requests = workloads::engine_batch(if smoke() { 20 } else { 120 });
    let engine = Engine::new(EngineConfig {
        cache: false,
        ..EngineConfig::default()
    });
    let count = requests.len();
    let started = Instant::now();
    let responses = engine.run_batch(requests);
    assert_eq!(responses.len(), count);
    count as f64 / started.elapsed().as_secs_f64().max(1e-9)
}

/// Runs the 1-vs-N measurements and appends one JSON line to the trajectory.
fn record_trajectory() {
    let scale = if smoke() { 6 } else { 10 };
    let rows = measure_parallel(scale);
    for m in &rows {
        println!(
            "e15   {:<16} workers={} split={:<5} wall {:>9.2} ms  subtasks {:>6} stolen {:>6}  {}",
            m.name,
            m.workers,
            m.split,
            m.wall_ms,
            m.subtasks,
            m.subtasks_stolen,
            if m.matches_baseline { "ok" } else { "MISMATCH" }
        );
        assert!(
            m.matches_baseline,
            "{}: split run changed the answer",
            m.name
        );
    }
    let e10 = e10_reqs_per_s();
    let e12 = hotpath::measure_all(if smoke() { 1 } else { 24 });
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let parallel_rows: Vec<String> = rows.iter().map(|m| m.to_json()).collect();
    let e12_rows: Vec<String> = e12.iter().map(|m| m.to_json()).collect();
    let line = format!(
        "{{\"bench\":\"e15_parallel\",\"unix_secs\":{},\"smoke\":{},\"nproc\":{},\"scale\":{},\"parallel\":[{}],\"baseline_e10_reqs_per_s\":{:.1},\"baseline_e12\":[{}]}}",
        unix_secs,
        smoke(),
        nproc(),
        scale,
        parallel_rows.join(","),
        e10,
        e12_rows.join(",")
    );
    match qld_bench::append_trajectory("e15_parallel.json", &line) {
        Ok(path) => println!("e15   trajectory appended to {}", path.display()),
        Err(e) => eprintln!("e15   {e}"),
    }
}

fn main() {
    if !smoke() {
        benches();
    }
    record_trajectory();
}
