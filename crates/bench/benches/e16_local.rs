//! E16 — one-shot small-instance latency: the engine's in-process local route
//! (`EngineConfig::local_threshold`, answering sub-threshold `check`s on the
//! submitting thread) vs. the pool round-trip, via
//! `qld_harness::experiments::measure_local`.
//!
//! Besides the Criterion timings, every run appends one JSON line to
//! `target/e16_local.json` — the trajectory across commits.  The line carries
//! a top-level `"local_beats_pool"` verdict: true iff the local route's mean
//! one-shot latency beats the pool's on every measured sub-threshold
//! instance.  Set `E16_SMOKE=1` to skip the Criterion windows and record one
//! fast iteration (the CI smoke mode).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use qld_engine::{Engine, EngineConfig, Request};
use qld_harness::experiments::measure_local;
use qld_hypergraph::generators;

fn smoke() -> bool {
    std::env::var("E16_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn bench_local(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_local/check");
    let li = generators::matching_instance(3);
    let request = Request::DecideDuality { g: li.g, h: li.h };
    for (tag, local_threshold) in [("pool", 0usize), ("local", usize::MAX)] {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            cache: false,
            local_threshold,
            ..EngineConfig::default()
        });
        group.bench_function(BenchmarkId::new("matching-3", tag), |b| {
            b.iter(|| black_box(engine.run_one(request.clone())))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = qld_bench::quick();
    targets = bench_local
}

/// Runs the pool-vs-local measurements and appends one JSON line to the
/// trajectory.
fn record_trajectory() {
    let iters = if smoke() { 4 } else { 200 };
    let rows = measure_local(iters);
    for m in &rows {
        println!(
            "e16   {:<18} work={:<5} pool {:>8.2} us  local {:>8.2} us  speedup {:>5.2}x  {}",
            m.name,
            m.work,
            m.pool_us,
            m.local_us,
            m.speedup(),
            if m.matches { "ok" } else { "MISMATCH" }
        );
        assert!(m.matches, "{}: local route changed the answer", m.name);
    }
    let local_beats_pool = !rows.is_empty() && rows.iter().all(|m| m.local_us < m.pool_us);
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let row_json: Vec<String> = rows.iter().map(|m| m.to_json()).collect();
    let line = format!(
        "{{\"bench\":\"e16_local\",\"unix_secs\":{},\"smoke\":{},\"iters\":{},\"local_beats_pool\":{},\"routes\":[{}]}}",
        unix_secs,
        smoke(),
        iters,
        local_beats_pool,
        row_json.join(",")
    );
    match qld_bench::append_trajectory("e16_local.json", &line) {
        Ok(path) => println!("e16   trajectory appended to {}", path.display()),
        Err(e) => eprintln!("e16   {e}"),
    }
}

fn main() {
    if !smoke() {
        benches();
    }
    record_trajectory();
}
