//! E17 — single-flight request coalescing: a barrier-released stampede of K
//! identical slow one-shot requests against a fresh cached engine, with the
//! flight layer off vs. on, via `qld_harness::experiments::measure_coalesce`.
//!
//! Besides the Criterion timings, every run appends one JSON line to
//! `target/e17_coalesce.json` — the trajectory across commits.  The line
//! carries a top-level `"coalesce_wins"` verdict: true iff the coalesced
//! stampede executed the solver exactly once, at least one duplicate attached
//! to the flight, every response agreed, and the uncoalesced run executed at
//! least as often.  Set `E17_SMOKE=1` to skip the Criterion windows and
//! record one fast measurement (the CI smoke mode).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use qld_harness::experiments::{coalesce_wins, measure_coalesce};

const K: usize = 8;

fn smoke() -> bool {
    std::env::var("E17_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn bench_stampede(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_coalesce/stampede");
    for (tag, coalesce) in [("off", false), ("on", true)] {
        group.bench_function(BenchmarkId::new("check-matching-3", tag), |b| {
            b.iter(|| {
                // A fresh engine per stampede: a warm cache would answer
                // every duplicate without the flight layer doing anything.
                // 5ms per duality decision keeps the Criterion window short.
                let rows = measure_coalesce(K, 5);
                let m = rows.into_iter().find(|m| m.coalesce == coalesce).unwrap();
                assert!(m.matches, "a stampede answer diverged");
                black_box(m.wall_ms)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = qld_bench::quick();
    targets = bench_stampede
}

/// Runs the off-vs-on stampede and appends one JSON line to the trajectory.
fn record_trajectory() {
    let per_call_ms = if smoke() { 15 } else { 25 };
    let rows = measure_coalesce(K, per_call_ms);
    for m in &rows {
        println!(
            "e17   {:<24} K={:<2} coalesce={:<5} executions={:<2} flights={} coalesced={} \
             p50 {:>9.1} us  p99 {:>9.1} us  {}",
            m.name,
            m.k,
            m.coalesce,
            m.executions,
            m.flights,
            m.coalesced,
            m.p50_us,
            m.p99_us,
            if m.matches { "ok" } else { "MISMATCH" }
        );
        assert!(m.matches, "{}: a stampede answer diverged", m.name);
    }
    let wins = coalesce_wins(&rows);
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let row_json: Vec<String> = rows.iter().map(|m| m.to_json()).collect();
    let line = format!(
        "{{\"bench\":\"e17_coalesce\",\"unix_secs\":{},\"smoke\":{},\"k\":{},\"coalesce_wins\":{},\"runs\":[{}]}}",
        unix_secs,
        smoke(),
        K,
        wins,
        row_json.join(",")
    );
    match qld_bench::append_trajectory("e17_coalesce.json", &line) {
        Ok(path) => println!("e17   trajectory appended to {}", path.display()),
        Err(e) => eprintln!("e17   {e}"),
    }
}

fn main() {
    if !smoke() {
        benches();
    }
    record_trajectory();
}
