//! E2 — Proposition 2.1: cost of building the explicit decomposition tree `T(G, H)`
//! across the instance families whose shape statistics the experiment table reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qld_core::instance::DualInstance;
use qld_core::tree::{build_tree, BuildOptions};
use qld_harness::workloads;

fn bench_tree_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_tree_shape");
    for li in workloads::dual_instances() {
        let inst = DualInstance::new(li.g.clone(), li.h.clone())
            .unwrap()
            .oriented()
            .0;
        group.bench_with_input(
            BenchmarkId::new("build_tree", &li.name),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let tree = build_tree(inst, &BuildOptions::default()).unwrap();
                    criterion::black_box(tree.stats())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = qld_bench::quick();
    targets = bench_tree_construction
}
criterion_main!(benches);
