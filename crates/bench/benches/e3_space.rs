//! E3 — Theorem 4.1: time cost of the two space strategies of the quadratic-logspace
//! solver on the growing matching family (the space numbers themselves are printed by
//! `cargo run -p qld-harness --bin experiments -- --exp e3`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qld_core::{QuadLogspaceSolver, SpaceStrategy};
use qld_harness::workloads;

fn bench_space_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_space");
    for (li, measure_recompute) in workloads::space_scaling_instances() {
        let chain = QuadLogspaceSolver::new(SpaceStrategy::MaterializeChain);
        group.bench_with_input(
            BenchmarkId::new("materialize-chain", &li.name),
            &li,
            |b, li| b.iter(|| criterion::black_box(chain.decide_with_space(&li.g, &li.h).unwrap())),
        );
        if measure_recompute {
            let recompute = QuadLogspaceSolver::new(SpaceStrategy::Recompute);
            group.bench_with_input(BenchmarkId::new("recompute", &li.name), &li, |b, li| {
                b.iter(|| criterion::black_box(recompute.decide_with_space(&li.g, &li.h).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = qld_bench::quick();
    targets = bench_space_strategies
}
criterion_main!(benches);
