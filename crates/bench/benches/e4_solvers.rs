//! E4 — solver comparison: the decomposition solvers of `qld-core` against the
//! classical baselines of `qld-fk`, on representative dual and non-dual instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qld_core::{BorosMakinoTreeSolver, DualitySolver, QuadLogspaceSolver};
use qld_fk::{BergeSolver, FkASolver};
use qld_hypergraph::generators;

fn representative_instances() -> Vec<generators::LabelledInstance> {
    let mut out = vec![
        generators::matching_instance(3),
        generators::matching_instance(5),
        generators::threshold_instance(7, 3),
        generators::self_dual_instance(3),
        generators::graph_cover_instance("C7", generators::cycle_graph(7)),
    ];
    let broken: Vec<_> = out
        .iter()
        .enumerate()
        .filter_map(|(i, li)| generators::perturb(li, generators::Perturbation::DropDualEdge, i))
        .collect();
    out.extend(broken);
    out
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_solvers");
    let solvers: Vec<Box<dyn DualitySolver>> = vec![
        Box::new(BergeSolver::new()),
        Box::new(FkASolver::new()),
        Box::new(BorosMakinoTreeSolver::new()),
        Box::new(QuadLogspaceSolver::default()),
    ];
    for li in representative_instances() {
        for solver in &solvers {
            group.bench_with_input(BenchmarkId::new(solver.name(), &li.name), &li, |b, li| {
                b.iter(|| criterion::black_box(solver.decide(&li.g, &li.h).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = qld_bench::quick();
    targets = bench_solvers
}
criterion_main!(benches);
