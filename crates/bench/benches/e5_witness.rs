//! E5 — Corollary 4.1(2): producing a new-transversal witness on non-dual instances and
//! minimizing it into a missing dual edge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qld_core::witness::missing_dual_edge;
use qld_core::{DualitySolver, QuadLogspaceSolver};
use qld_harness::workloads;

fn bench_witness_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_witness");
    let solver = QuadLogspaceSolver::default();
    for li in workloads::non_dual_instances().into_iter().take(8) {
        group.bench_with_input(
            BenchmarkId::new("decide+minimize", &li.name),
            &li,
            |b, li| {
                b.iter(|| {
                    let result = solver.decide(&li.g, &li.h).unwrap();
                    let witness = result.witness().cloned();
                    let minimal = witness
                        .as_ref()
                        .and_then(|w| missing_dual_edge(&li.g, &li.h, w));
                    criterion::black_box((witness, minimal))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = qld_bench::quick();
    targets = bench_witness_extraction
}
criterion_main!(benches);
