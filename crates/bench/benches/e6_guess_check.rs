//! E6 — Theorem 5.1: finding and verifying guess-and-check certificates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qld_core::guess_check::{find_certificate, verify_certificate};
use qld_core::SpaceStrategy;
use qld_harness::workloads;
use qld_logspace::SpaceMeter;

fn bench_guess_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_guess_check");
    let meter = SpaceMeter::new();
    for li in workloads::non_dual_instances().into_iter().take(8) {
        group.bench_with_input(BenchmarkId::new("find", &li.name), &li, |b, li| {
            b.iter(|| criterion::black_box(find_certificate(&li.g, &li.h, &meter).unwrap()))
        });
        if let Some(cert) = find_certificate(&li.g, &li.h, &meter).unwrap() {
            group.bench_with_input(
                BenchmarkId::new("verify", &li.name),
                &(li, cert),
                |b, (li, cert)| {
                    b.iter(|| {
                        criterion::black_box(
                            verify_certificate(
                                &li.g,
                                &li.h,
                                cert,
                                SpaceStrategy::MaterializeChain,
                                &meter,
                            )
                            .unwrap(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = qld_bench::quick();
    targets = bench_guess_check
}
criterion_main!(benches);
