//! E7 — Proposition 1.1: computing frequent-itemset borders by repeated dualization,
//! against the level-wise (Apriori) baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qld_datamining::{apriori, dualize_and_advance};
use qld_harness::workloads;

fn bench_borders(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_itemsets");
    for (name, relation, z) in workloads::datamining_workloads() {
        group.bench_with_input(
            BenchmarkId::new("dualize-and-advance", &name),
            &(relation.clone(), z),
            |b, (relation, z)| {
                b.iter(|| criterion::black_box(dualize_and_advance(relation, *z).unwrap()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("apriori", &name),
            &(relation, z),
            |b, (relation, z)| b.iter(|| criterion::black_box(apriori(relation, *z))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = qld_bench::quick();
    targets = bench_borders
}
criterion_main!(benches);
