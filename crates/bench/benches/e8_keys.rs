//! E8 — Proposition 1.2: enumerating minimal keys via duality, against brute force.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qld_core::QuadLogspaceSolver;
use qld_harness::workloads;
use qld_keys::{enumerate_minimal_keys_with, minimal_keys_brute, minimal_keys_exact};

fn bench_keys(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_keys");
    for (name, table) in workloads::key_workloads() {
        group.bench_with_input(
            BenchmarkId::new("duality-enumeration", &name),
            &table,
            |b, table| {
                b.iter(|| {
                    criterion::black_box(
                        enumerate_minimal_keys_with(table, &QuadLogspaceSolver::default()).unwrap(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("transversal-batch", &name),
            &table,
            |b, table| b.iter(|| criterion::black_box(minimal_keys_exact(table))),
        );
        group.bench_with_input(
            BenchmarkId::new("brute-force", &name),
            &table,
            |b, table| b.iter(|| criterion::black_box(minimal_keys_brute(table))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = qld_bench::quick();
    targets = bench_keys
}
criterion_main!(benches);
