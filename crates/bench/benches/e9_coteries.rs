//! E9 — Proposition 1.3: the coterie non-domination check (self-duality), against the
//! exact dualization baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qld_coteries::check_domination;
use qld_harness::workloads;
use qld_hypergraph::transversal::is_self_dual_exact;

fn bench_coteries(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_coteries");
    for (name, coterie) in workloads::coterie_workloads() {
        group.bench_with_input(
            BenchmarkId::new("duality-check", &name),
            &coterie,
            |b, coterie| b.iter(|| criterion::black_box(check_domination(coterie).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("exact-dualization", &name),
            &coterie,
            |b, coterie| b.iter(|| criterion::black_box(is_self_dual_exact(coterie.quorums()))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = qld_bench::quick();
    targets = bench_coteries
}
criterion_main!(benches);
