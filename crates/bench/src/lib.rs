//! # qld-bench
//!
//! Criterion benchmarks, one per experiment table/figure of `EXPERIMENTS.md`
//! (E2–E9).  The benchmarks time exactly the workloads defined in
//! `qld_harness::workloads`, so the rows of the experiment tables and the bench
//! results refer to the same instances.
//!
//! Run with `cargo bench --workspace`; individual experiments with e.g.
//! `cargo bench -p qld-bench --bench e4_solvers`.

#![forbid(unsafe_code)]

/// Shared Criterion configuration: short measurement windows so that the full suite
/// regenerates every table-backing series in a few minutes.
pub fn quick() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

/// `target/<file_name>`, located from the bench executable's own path
/// (`target/<profile>/deps/<bench>-…`).  `None` when the executable path is
/// unavailable or too shallow to contain a target directory.
pub fn trajectory_path(file_name: &str) -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    // deps -> profile -> target
    let target = exe.parent()?.parent()?.parent()?;
    Some(target.join(file_name))
}

/// Appends one JSON line to the `target/<file_name>` trajectory file, creating
/// the directory if it does not exist (a wiped or redirected `target/` must
/// not lose the measurement).  Returns the path written, or a readable
/// single-line error that includes the path it tried and the JSON line itself,
/// so a failed append still leaves the measurement in the bench log.
pub fn append_trajectory(file_name: &str, line: &str) -> Result<std::path::PathBuf, String> {
    use std::io::Write as _;
    let path = trajectory_path(file_name)
        .ok_or_else(|| format!("could not locate the target directory; line: {line}"))?;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("could not create {}: {e}; line: {line}", dir.display()))?;
    }
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{line}"))
        .map_err(|e| format!("could not write {}: {e}; line: {line}", path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    #[test]
    fn append_trajectory_creates_and_appends() {
        // The test binary also lives under target/<profile>/deps, so the
        // helper resolves the same way it does for benches.
        let name = format!("trajectory-helper-test-{}.json", std::process::id());
        let path = super::append_trajectory(&name, "{\"probe\":1}").unwrap();
        let path2 = super::append_trajectory(&name, "{\"probe\":2}").unwrap();
        assert_eq!(path, path2);
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "{\"probe\":1}\n{\"probe\":2}\n");
        let _ = std::fs::remove_file(&path);
    }
}
