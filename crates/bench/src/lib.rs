//! # qld-bench
//!
//! Criterion benchmarks, one per experiment table/figure of `EXPERIMENTS.md`
//! (E2–E17).  The benchmarks time exactly the workloads defined in
//! `qld_harness::workloads`, so the rows of the experiment tables and the bench
//! results refer to the same instances.
//!
//! Run with `cargo bench --workspace`; individual experiments with e.g.
//! `cargo bench -p qld-bench --bench e4_solvers`.

#![forbid(unsafe_code)]

/// Shared Criterion configuration: short measurement windows so that the full suite
/// regenerates every table-backing series in a few minutes.
pub fn quick() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

/// `target/<file_name>`, located from the bench executable's own path
/// (`target/<profile>/deps/<bench>-…`).  `None` when the executable path is
/// unavailable or too shallow to contain a target directory.
pub fn trajectory_path(file_name: &str) -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    // deps -> profile -> target
    let target = exe.parent()?.parent()?.parent()?;
    Some(target.join(file_name))
}

/// The repo-root mirror of a trajectory file: `BENCH_<file_name>` in the
/// workspace directory (two levels above this crate's manifest, captured at
/// compile time).  `None` when the build tree no longer exists — e.g. a bench
/// binary copied to another machine.
pub fn mirror_path(file_name: &str) -> Option<std::path::PathBuf> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()?
        .parent()?;
    root.is_dir()
        .then(|| root.join(format!("BENCH_{file_name}")))
}

/// Appends one JSON line to the `target/<file_name>` trajectory file, creating
/// the directory if it does not exist (a wiped or redirected `target/` must
/// not lose the measurement).  The same line is mirrored to the repo-root
/// `BENCH_<file_name>` so the perf history survives `cargo clean`; the mirror
/// is best effort and never fails the append.  Returns the primary path
/// written, or a readable single-line error that includes the path it tried
/// and the JSON line itself, so a failed append still leaves the measurement
/// in the bench log.
pub fn append_trajectory(file_name: &str, line: &str) -> Result<std::path::PathBuf, String> {
    let path = trajectory_path(file_name)
        .ok_or_else(|| format!("could not locate the target directory; line: {line}"))?;
    append_line(&path, line)
        .map_err(|e| format!("could not write {}: {e}; line: {line}", path.display()))?;
    if let Some(mirror) = mirror_path(file_name) {
        let _ = append_line(&mirror, line);
    }
    Ok(path)
}

fn append_line(path: &std::path::Path, line: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{line}"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn append_trajectory_creates_and_appends() {
        // The test binary also lives under target/<profile>/deps, so the
        // helper resolves the same way it does for benches.
        let name = format!("trajectory-helper-test-{}.json", std::process::id());
        let path = super::append_trajectory(&name, "{\"probe\":1}").unwrap();
        let path2 = super::append_trajectory(&name, "{\"probe\":2}").unwrap();
        assert_eq!(path, path2);
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "{\"probe\":1}\n{\"probe\":2}\n");
        let _ = std::fs::remove_file(&path);
        // The repo-root mirror got the same lines (perf history that
        // survives `cargo clean`).
        let mirror = super::mirror_path(&name).expect("repo root exists in the build tree");
        assert!(mirror.ends_with(format!("BENCH_{name}")));
        assert_eq!(std::fs::read_to_string(&mirror).unwrap(), body);
        let _ = std::fs::remove_file(&mirror);
    }
}
