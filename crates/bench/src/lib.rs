//! # qld-bench
//!
//! Criterion benchmarks, one per experiment table/figure of `EXPERIMENTS.md`
//! (E2–E9).  The benchmarks time exactly the workloads defined in
//! `qld_harness::workloads`, so the rows of the experiment tables and the bench
//! results refer to the same instances.
//!
//! Run with `cargo bench --workspace`; individual experiments with e.g.
//! `cargo bench -p qld-bench --bench e4_solvers`.

#![forbid(unsafe_code)]

/// Shared Criterion configuration: short measurement windows so that the full suite
/// regenerates every table-backing series in a few minutes.
pub fn quick() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}
