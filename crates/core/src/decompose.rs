//! Algorithm `decompose` (Theorem 4.1): enumerating the whole tree `T(G, H)` from path
//! descriptors, in quadratic logspace.
//!
//! The paper's algorithm iterates over **all** path descriptors `π ∈ PD(I)` (and all
//! consecutive pairs), calling `pathnode(I, π)` for each and printing the node / edge
//! when the descriptor is valid.  Only the current descriptor and the registers of
//! `pathnode` are ever held on the work tape, which gives the `O(log² n)` bound; the
//! price is that the number of iterations is `(|V|·|G|)^{⌊log|H|⌋}`, i.e.
//! quasi-polynomial.  [`decompose`] implements that literal algorithm (guarded by a
//! descriptor-count limit), while [`decompose_pruned`] walks only the descriptors that
//! actually name nodes — same output, polynomially fewer `pathnode` calls — and is what
//! the solver uses.

use crate::error::DualError;
use crate::instance::DualInstance;
use crate::node::NodeAttr;
use crate::path::{
    descriptor_space_size, enumerate_descriptors, max_branching, max_descriptor_length,
    PathDescriptor,
};
use crate::pathnode::{pathnode, PathnodeOutcome, SpaceStrategy};
use alloc::vec;
use alloc::vec::Vec;
use qld_logspace::SpaceMeter;

/// The output of the `decompose` algorithm: the vertices (node attributes) and edges
/// (pairs of labels) of `T(G, H)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecomposeOutput {
    /// The attribute tuples of all tree nodes, in the order they were emitted.
    pub vertices: Vec<NodeAttr>,
    /// The tree edges as `(parent label, child label)` pairs.
    pub edges: Vec<(PathDescriptor, PathDescriptor)>,
}

impl DecomposeOutput {
    /// Number of nodes emitted.
    pub fn node_count(&self) -> usize {
        self.vertices.len()
    }
}

/// The literal Theorem 4.1 algorithm: iterate over the full descriptor space.
///
/// Returns [`DualError::DescriptorSpaceTooLarge`] if the number of descriptors exceeds
/// `max_descriptors` — use [`decompose_pruned`] for anything but small instances.
pub fn decompose(
    inst: &DualInstance,
    strategy: SpaceStrategy,
    meter: &SpaceMeter,
    max_descriptors: u128,
) -> Result<DecomposeOutput, DualError> {
    let (oriented, _swapped) = inst.oriented();
    let max_len = max_descriptor_length(oriented.h().num_edges());
    let branch = max_branching(oriented.num_vertices(), oriented.g().num_edges());
    let space = descriptor_space_size(max_len, branch);
    if space > max_descriptors {
        return Err(DualError::DescriptorSpaceTooLarge {
            descriptors: space,
            limit: max_descriptors,
        });
    }
    let mut vertices = Vec::new();
    let mut edges = Vec::new();
    // "output('Vertices:'); for each path descriptor π ∈ PD(I) …"
    for pi in enumerate_descriptors(max_len, branch) {
        if let PathnodeOutcome::Node(attr) = pathnode(&oriented, &pi, strategy, meter) {
            if !pi.is_empty() {
                let parent =
                    PathDescriptor::from_indices(pi.indices()[..pi.len() - 1].iter().copied());
                edges.push((parent, pi.clone()));
            }
            vertices.push(attr);
        }
    }
    Ok(DecomposeOutput { vertices, edges })
}

/// The pruned enumeration: depth-first over existing children only.  Produces the same
/// set of vertices and edges as [`decompose`] (possibly in a different order).
pub fn decompose_pruned(
    inst: &DualInstance,
    strategy: SpaceStrategy,
    meter: &SpaceMeter,
) -> DecomposeOutput {
    let (oriented, _swapped) = inst.oriented();
    let mut vertices = Vec::new();
    let mut edges = Vec::new();
    let mut stack = vec![PathDescriptor::root()];
    while let Some(pi) = stack.pop() {
        match pathnode(&oriented, &pi, strategy, meter) {
            PathnodeOutcome::WrongPath => continue,
            PathnodeOutcome::Node(attr) => {
                let is_leaf = attr.is_leaf();
                if !pi.is_empty() {
                    let parent =
                        PathDescriptor::from_indices(pi.indices()[..pi.len() - 1].iter().copied());
                    edges.push((parent, pi.clone()));
                }
                vertices.push(attr);
                if !is_leaf {
                    // Push candidate children; invalid indices are filtered by the
                    // WrongPath branch above.  Descending order so that child 1 is
                    // popped (and emitted) first.
                    let branch = max_branching(oriented.num_vertices(), oriented.g().num_edges());
                    for i in (1..=branch).rev() {
                        stack.push(pi.child(i));
                    }
                }
            }
        }
    }
    DecomposeOutput { vertices, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{build_tree, BuildOptions};
    use qld_hypergraph::generators;

    fn instance(li: generators::LabelledInstance) -> DualInstance {
        DualInstance::new(li.g, li.h).unwrap()
    }

    #[test]
    fn literal_decompose_matches_explicit_tree() {
        let inst = instance(generators::matching_instance(2));
        let meter = SpaceMeter::new();
        let out = decompose(&inst, SpaceStrategy::MaterializeChain, &meter, 1_000_000).unwrap();
        let (oriented, _) = inst.oriented();
        let tree = build_tree(&oriented, &BuildOptions::default()).unwrap();
        assert_eq!(out.node_count(), tree.len());
        assert_eq!(out.edges.len(), tree.len() - 1);
        // every explicit-tree node appears with identical attributes
        for node in tree.nodes() {
            assert!(
                out.vertices.iter().any(|a| a == &node.attr),
                "missing node {}",
                node.attr.label
            );
        }
    }

    #[test]
    fn literal_decompose_guards_descriptor_space() {
        let inst = instance(generators::matching_instance(4));
        let meter = SpaceMeter::new();
        let err = decompose(&inst, SpaceStrategy::MaterializeChain, &meter, 10).unwrap_err();
        assert!(matches!(err, DualError::DescriptorSpaceTooLarge { .. }));
    }

    #[test]
    fn pruned_decompose_matches_literal_on_small_instances() {
        for li in [
            generators::matching_instance(2),
            generators::self_dual_instance(1),
        ] {
            let inst = instance(li);
            let meter = SpaceMeter::new();
            let literal =
                decompose(&inst, SpaceStrategy::MaterializeChain, &meter, 10_000_000).unwrap();
            let pruned = decompose_pruned(&inst, SpaceStrategy::MaterializeChain, &meter);
            assert_eq!(literal.node_count(), pruned.node_count());
            let mut a: Vec<String> = literal.vertices.iter().map(|v| format!("{v:?}")).collect();
            let mut b: Vec<String> = pruned.vertices.iter().map(|v| format!("{v:?}")).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
            let mut ea: Vec<_> = literal.edges.clone();
            let mut eb: Vec<_> = pruned.edges.clone();
            ea.sort();
            eb.sort();
            assert_eq!(ea, eb);
        }
    }

    #[test]
    fn pruned_decompose_handles_larger_instances() {
        let inst = instance(generators::matching_instance(3));
        let meter = SpaceMeter::new();
        let pruned = decompose_pruned(&inst, SpaceStrategy::MaterializeChain, &meter);
        let (oriented, _) = inst.oriented();
        let tree = build_tree(&oriented, &BuildOptions::default()).unwrap();
        assert_eq!(pruned.node_count(), tree.len());
    }
}
