//! Error types for `DUAL` instances and solvers.

use core::fmt;
use qld_hypergraph::HypergraphError;

/// Which of the two hypergraphs of a `DUAL` instance an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The first hypergraph (`G`).
    G,
    /// The second hypergraph (`H`).
    H,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::G => write!(f, "G"),
            Side::H => write!(f, "H"),
        }
    }
}

/// Errors raised when constructing or solving a `DUAL` instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DualError {
    /// One of the hypergraphs is not simple (the paper requires irredundant inputs).
    NotSimple {
        /// Which hypergraph violates simplicity.
        side: Side,
        /// The underlying validation error.
        source: HypergraphError,
    },
    /// The two hypergraphs are declared over different vertex universes.
    UniverseMismatch {
        /// Universe size of `G`.
        g_vertices: usize,
        /// Universe size of `H`.
        h_vertices: usize,
    },
    /// A resource limit of the explicit tree builder was exceeded.
    TreeTooLarge {
        /// The configured node limit.
        limit: usize,
    },
    /// The literal `decompose` enumeration was asked to range over too many path
    /// descriptors (use the pruned traversal instead).
    DescriptorSpaceTooLarge {
        /// The number of path descriptors that would have to be enumerated.
        descriptors: u128,
        /// The configured limit.
        limit: u128,
    },
    /// The computation was cancelled before an answer was reached: a parallel
    /// split's subtasks were skipped at a steal boundary, so no (deterministic)
    /// result exists.  Serving layers map this to their cancellation outcome;
    /// it never occurs without an external cancellation request.
    Interrupted,
}

impl fmt::Display for DualError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DualError::NotSimple { side, source } => {
                write!(f, "hypergraph {side} is not simple: {source}")
            }
            DualError::UniverseMismatch {
                g_vertices,
                h_vertices,
            } => write!(
                f,
                "hypergraphs are over different universes ({g_vertices} vs {h_vertices} vertices)"
            ),
            DualError::TreeTooLarge { limit } => {
                write!(f, "decomposition tree exceeded the node limit of {limit}")
            }
            DualError::DescriptorSpaceTooLarge { descriptors, limit } => write!(
                f,
                "decompose would enumerate {descriptors} path descriptors, above the limit of {limit}"
            ),
            DualError::Interrupted => {
                write!(f, "computation cancelled before an answer was reached")
            }
        }
    }
}

impl core::error::Error for DualError {
    fn source(&self) -> Option<&(dyn core::error::Error + 'static)> {
        match self {
            DualError::NotSimple { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DualError::NotSimple {
            side: Side::H,
            source: HypergraphError::NotSimple {
                contained: 0,
                container: 1,
            },
        };
        assert!(e.to_string().contains("H is not simple"));
        assert!(core::error::Error::source(&e).is_some());

        let u = DualError::UniverseMismatch {
            g_vertices: 3,
            h_vertices: 4,
        };
        assert!(u.to_string().contains("3 vs 4"));
        assert!(core::error::Error::source(&u).is_none());

        let t = DualError::TreeTooLarge { limit: 10 };
        assert!(t.to_string().contains("10"));

        let d = DualError::DescriptorSpaceTooLarge {
            descriptors: 1000,
            limit: 10,
        };
        assert!(d.to_string().contains("1000"));
    }

    #[test]
    fn side_display() {
        assert_eq!(Side::G.to_string(), "G");
        assert_eq!(Side::H.to_string(), "H");
    }
}
