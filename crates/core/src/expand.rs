//! The single decomposition step: `marksmall` and `process` (Section 2 of the paper).
//!
//! [`expand`] takes the original instance and a node's vertex set `S_α` and either marks
//! the node (`done` / `fail` with a witness) or produces the ordered list of child
//! vertex sets.  This is the *materialized* reference semantics; the oracle chain of
//! [`crate::oracle`] re-implements exactly the same decision rules in a query-driven,
//! register-bounded way, and the two are cross-checked in tests.
//!
//! # Deterministic instantiation
//!
//! The paper notes that `marksmall` and `process` involve arbitrary choices and that any
//! deterministic version may be fixed.  This implementation fixes them as follows (and
//! the oracle chain follows the same rules):
//!
//! * `marksmall`, case 4: the **smallest** vertex `i ∈ H` with `{i} ∉ G_{S_α}` is chosen
//!   (as suggested in the paper).
//! * `process`, Step 3: the qualifying edge `G` is the restriction `E_j ∩ S_α` of the
//!   edge `E_j ∈ G` with the **smallest input index** `j` such that
//!   `(E_j ∩ S_α) ∩ I_α = ∅`.
//! * `process`, Step 4: the qualifying edge `H` is the edge of `H` with the smallest
//!   input index that is contained in `S_α` and in `I_α`.
//! * Children are enumerated **without deduplication**, in the following canonical
//!   order.  Step 3: over pairs `(j, i)` with `j` ranging over the edges of `G` in input
//!   order (skipping edges whose restriction misses the chosen `G`), and `i` ranging
//!   over `(E_j ∩ S_α) ∩ G` in increasing vertex order; the child set is
//!   `S_α − ((E_j ∩ S_α) − {i})`.  Step 4: for `i` ranging over the chosen `H` in
//!   increasing vertex order the child `S_α − {i}`, followed by the child `H` itself.
//!   Omitting deduplication can only repeat identical sub-trees; it does not affect
//!   correctness, keeps every child computable from `(S_α, index)` alone with
//!   `O(log n)` registers, and respects the `|V|·|G|` branching bound of
//!   Proposition 2.1(3).

use crate::instance::DualInstance;
use alloc::vec;
use alloc::vec::Vec;
use qld_hypergraph::{Vertex, VertexSet};

/// Why a leaf was marked `fail`; identifies which rule produced the witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailRule {
    /// `marksmall` case 1: `H_{S_α}` is empty and `∅ ∉ G_{S_α}`; witness `S_α`.
    EmptyHs,
    /// `marksmall` case 4: `H_{S_α} = {H}` and some `i ∈ H` has `{i} ∉ G_{S_α}`;
    /// witness `S_α − {i}`.
    SingletonHs {
        /// Index (into the original `H`) of the unique edge of `H_{S_α}`.
        h_edge: usize,
        /// The removed vertex `i`.
        removed: Vertex,
    },
    /// `process` Step 2: the frequent-vertex set `I_α` is itself a new transversal of
    /// `G_{S_α}` w.r.t. `H_{S_α}`; witness `I_α`.
    FrequentSet,
}

/// Which branching rule produced the children of an inner node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchCase {
    /// `process` Step 3: some restricted edge of `G` misses `I_α`.
    GEdgeMissesIAlpha {
        /// Index (into the original `G`) of the chosen edge.
        g_edge: usize,
    },
    /// `process` Step 4: some edge of `H_{S_α}` is contained in `I_α`.
    HEdgeInsideIAlpha {
        /// Index (into the original `H`) of the chosen edge.
        h_edge: usize,
    },
}

/// The outcome of expanding a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expansion {
    /// The node is a leaf marked `done`.
    Done,
    /// The node is a leaf marked `fail`; `witness` is the new transversal `t(α)`.
    Fail {
        /// The witness set `t(α)`.
        witness: VertexSet,
        /// The rule that produced it.
        rule: FailRule,
    },
    /// The node is an inner node with the given ordered children (`S` sets).
    Branch {
        /// The rule that produced the children.
        case: BranchCase,
        /// The child vertex sets `C₁, …, C_κ(α)` in canonical order.
        children: Vec<VertexSet>,
    },
}

impl Expansion {
    /// The number of children (`κ(α)`), zero for leaves.
    pub fn child_count(&self) -> usize {
        match self {
            Expansion::Branch { children, .. } => children.len(),
            _ => 0,
        }
    }

    /// Whether the expansion marks a leaf.
    pub fn is_leaf(&self) -> bool {
        !matches!(self, Expansion::Branch { .. })
    }
}

/// Whether the singleton `{v}` occurs in `G_{S}` — i.e. some edge `E ∈ G` has
/// `E ∩ S = {v}`.  Only the edges containing `v` can qualify, so the scan runs over
/// the incidence list of the cached [`qld_hypergraph::HypergraphIndex`], and each
/// candidate is tested with a word-wise popcount instead of materializing `E ∩ S`.
fn singleton_in_gs(inst: &DualInstance, s: &VertexSet, v: Vertex) -> bool {
    let g = inst.g();
    g.edges_containing(v)
        .iter()
        .any(|&j| g.index().edge_intersection_len(j as usize, s) == 1)
}

/// Expands the node with vertex set `s`: applies `marksmall` when `|H_S| ≤ 1` and
/// `process` otherwise, following the deterministic instantiation documented in the
/// module docs.
pub fn expand(inst: &DualInstance, s: &VertexSet) -> Expansion {
    let n = inst.num_vertices();
    let h_inside = inst.h().index().edges_inside(s);

    // ---- marksmall -------------------------------------------------------------
    if h_inside.is_empty() {
        // case 1 / case 2
        let empty_in_gs = inst.g().index().first_edge_disjoint(s).is_some();
        return if empty_in_gs {
            Expansion::Done
        } else {
            Expansion::Fail {
                witness: s.clone(),
                rule: FailRule::EmptyHs,
            }
        };
    }
    if h_inside.len() == 1 {
        // case 3 / case 4
        let h_edge = h_inside[0];
        let he = inst.h().edge(h_edge);
        let missing = he.iter().find(|&v| !singleton_in_gs(inst, s, v));
        return match missing {
            None => Expansion::Done,
            Some(i) => Expansion::Fail {
                witness: s.without(i),
                rule: FailRule::SingletonHs { h_edge, removed: i },
            },
        };
    }

    // ---- process ---------------------------------------------------------------
    let m = h_inside.len();
    // Step 1: I_α — vertices occurring in more than m/2 of the edges of H_S.
    let mut freq = vec![0usize; n];
    for &j in &h_inside {
        for v in inst.h().edge(j).iter() {
            freq[v.index()] += 1;
        }
    }
    let mut i_alpha = VertexSet::empty(n);
    for (idx, &f) in freq.iter().enumerate() {
        if f > m / 2 {
            i_alpha.insert(Vertex::from(idx));
        }
    }

    // Step 2: is I_α a new transversal of G_S with respect to H_S?  (`I_α ⊆ S_α` —
    // its members occur in edges of `H_S`, all inside `S_α` — so `(E ∩ S) ∩ I_α`
    // simplifies to `E ∩ I_α` and no restriction needs to be materialized.  Both
    // "every edge meets S" and "every edge meets I_α" come from one batched pass
    // over the G arena.)
    debug_assert!(i_alpha.is_subset(s));
    let both = inst.g().index().transversal_many(&[s, &i_alpha]);
    let i_alpha_transversal = both[0] && both[1];
    let contains_h_edge = h_inside
        .iter()
        .any(|&j| inst.h().index().edge_is_subset(j, &i_alpha));
    if i_alpha_transversal && !contains_h_edge {
        return Expansion::Fail {
            witness: i_alpha,
            rule: FailRule::FrequentSet,
        };
    }

    // Step 3: a restricted G-edge disjoint from I_α? (again `E ∩ S ∩ I_α = E ∩ I_α`)
    let g_choice = inst.g().index().first_edge_disjoint(&i_alpha);
    if let Some(g_edge) = g_choice {
        let ge = inst.g().edge(g_edge).intersection(s);
        debug_assert!(
            !ge.is_empty(),
            "empty restricted G-edge with non-empty H_S: precondition violated"
        );
        let mut children = Vec::new();
        for e in inst.g().edges() {
            let r = e.intersection(s);
            if !r.intersects(&ge) {
                continue; // E' ⊆ S_α − G: dropped by the paper's G_{S_α}^G filter
            }
            for i in r.iter() {
                if !ge.contains(i) {
                    continue;
                }
                // C = S_α − (E − {i})  (restricting E to S_α first changes nothing)
                let mut c = s.difference(&r);
                c.insert(i);
                children.push(c);
            }
        }
        return Expansion::Branch {
            case: BranchCase::GEdgeMissesIAlpha { g_edge },
            children,
        };
    }

    // Step 4: an H_S-edge contained in I_α (must exist when Step 2 and Step 3 fail).
    let h_edge = h_inside
        .iter()
        .copied()
        .find(|&j| inst.h().index().edge_is_subset(j, &i_alpha))
        .expect("process: neither Step 3 nor Step 4 applies — impossible by case analysis");
    let he = inst.h().edge(h_edge);
    let mut children = Vec::new();
    for i in he.iter() {
        children.push(s.without(i));
    }
    let mut he_full = he.clone();
    he_full.grow(n);
    children.push(he_full);
    Expansion::Branch {
        case: BranchCase::HEdgeInsideIAlpha { h_edge },
        children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_hypergraph::{vset, Hypergraph};

    fn matching2() -> DualInstance {
        // Oriented as the solver would: G = tr(M(2)) (4 edges), H = M(2) (2 edges).
        let h = Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3]]);
        let g = Hypergraph::from_index_edges(4, &[&[0, 2], &[0, 3], &[1, 2], &[1, 3]]);
        DualInstance::new(g, h).unwrap()
    }

    #[test]
    fn root_of_dual_matching_instance_branches() {
        let inst = matching2();
        let s = VertexSet::full(4);
        let exp = expand(&inst, &s);
        match &exp {
            Expansion::Branch { case, children } => {
                // I_α is empty (no vertex is in more than 1 of the 2 H-edges), so Step 3
                // fires with the first G-edge.
                assert_eq!(*case, BranchCase::GEdgeMissesIAlpha { g_edge: 0 });
                assert!(!children.is_empty());
                // branching bound of Prop. 2.1(3)
                assert!(children.len() <= 4 * inst.g().num_edges());
                // every child is a proper subset of S (progress)
                for c in children {
                    assert!(c.is_subset(&s));
                }
            }
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn empty_hs_cases() {
        let inst = matching2();
        // S = {0}: no H-edge inside; G-edges restricted: {0},{0},∅,∅ → ∅ ∈ G_S → done
        let exp = expand(&inst, &vset![4; 0]);
        assert_eq!(exp, Expansion::Done);
        assert!(exp.is_leaf());
        assert_eq!(exp.child_count(), 0);

        // Make an instance where H_S is empty but no restricted G-edge is empty:
        // G = {{0,1}}, H = {{0,1}} — restrict to S = {0}: H_S empty, G_S = {{0}} → fail
        let g = Hypergraph::from_index_edges(2, &[&[0, 1]]);
        let h = Hypergraph::from_index_edges(2, &[&[0, 1]]);
        let inst2 = DualInstance::new(g, h).unwrap();
        let exp = expand(&inst2, &vset![2; 0]);
        match exp {
            Expansion::Fail { witness, rule } => {
                assert_eq!(rule, FailRule::EmptyHs);
                assert_eq!(witness, vset![2; 0]);
                // the witness is a genuine new transversal of G w.r.t. H
                assert!(inst2.g().is_new_transversal(inst2.h(), &witness));
            }
            other => panic!("expected fail, got {other:?}"),
        }
    }

    #[test]
    fn singleton_hs_done_and_fail() {
        let inst = matching2();
        // S = {0,2}: H-edges inside: none ({0,1}⊄, {2,3}⊄) — pick another S.
        // S = {0,1}: H-edge {0,1} inside; G_S = {{0},{0},{1},{1}} contains {0} and {1}
        // → marksmall case 3 → done.
        let exp = expand(&inst, &vset![4; 0, 1]);
        assert_eq!(exp, Expansion::Done);

        // Now remove the G-edges providing the singleton {1}: G = {{0,2},{0,3}},
        // H = {{0,1},{2,3}} (not dual, but expand is purely combinatorial).
        let g = Hypergraph::from_index_edges(4, &[&[0, 2], &[0, 3]]);
        let h = Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3]]);
        let inst2 = DualInstance::new(g, h).unwrap();
        let exp = expand(&inst2, &vset![4; 0, 1]);
        match exp {
            Expansion::Fail { witness, rule } => {
                assert_eq!(
                    rule,
                    FailRule::SingletonHs {
                        h_edge: 0,
                        removed: Vertex::new(1)
                    }
                );
                assert_eq!(witness, vset![4; 0]);
                assert!(inst2.g().is_new_transversal(inst2.h(), &witness));
            }
            other => panic!("expected fail, got {other:?}"),
        }
    }

    #[test]
    fn frequent_set_fail_case() {
        // Construct an instance where I_α is a new transversal at the root:
        // H = {{0,1},{0,2}} (vertex 0 occurs in both → I_α = {0}),
        // G = {{0,3}} (restriction {0,3} meets I_α, {0} ∉ H-edges ⊆ I_α).
        let g = Hypergraph::from_index_edges(4, &[&[0, 3]]);
        let h = Hypergraph::from_index_edges(4, &[&[0, 1], &[0, 2]]);
        let inst = DualInstance::new(g, h).unwrap();
        let exp = expand(&inst, &VertexSet::full(4));
        match exp {
            Expansion::Fail { witness, rule } => {
                assert_eq!(rule, FailRule::FrequentSet);
                assert_eq!(witness, vset![4; 0]);
                assert!(inst.g().is_new_transversal(inst.h(), &witness));
            }
            other => panic!("expected fail, got {other:?}"),
        }
    }

    #[test]
    fn h_edge_inside_i_alpha_branches_with_final_child() {
        // H = {{0,1},{0,2},{1,2}} over {0,1,2}: each vertex occurs in 2 > 3/2 edges, so
        // I_α = {0,1,2} ⊇ every H-edge; G = tr(H) = same triangle (self-dual), so I_α is
        // a transversal of G_S but contains an H-edge → Step 4.
        let k3 = Hypergraph::from_index_edges(3, &[&[0, 1], &[0, 2], &[1, 2]]);
        let inst = DualInstance::new(k3.clone(), k3).unwrap();
        let s = VertexSet::full(3);
        let exp = expand(&inst, &s);
        match exp {
            Expansion::Branch { case, children } => {
                assert_eq!(case, BranchCase::HEdgeInsideIAlpha { h_edge: 0 });
                // children: S−{0}, S−{1}, then the edge {0,1} itself
                assert_eq!(children.len(), 3);
                assert_eq!(children[0], vset![3; 1, 2]);
                assert_eq!(children[1], vset![3; 0, 2]);
                assert_eq!(children[2], vset![3; 0, 1]);
            }
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn step3_children_match_formula() {
        let inst = matching2();
        let s = VertexSet::full(4);
        if let Expansion::Branch { children, .. } = expand(&inst, &s) {
            // chosen G-edge is edge #0 = {0,2} (I_α = ∅).  Children are S−(E−{i}) for
            // every G-edge E meeting {0,2} and every i ∈ E ∩ {0,2}.  E.g. for E={0,2}
            // itself: i=0 → {0,1,3}, i=2 → {1,2,3}.
            assert!(children.contains(&vset![4; 0, 1, 3]));
            assert!(children.contains(&vset![4; 1, 2, 3]));
            // for E={0,3}: i=0 → S−{3}+... S−({0,3}−{0}) = {0,1,2}
            assert!(children.contains(&vset![4; 0, 1, 2]));
        } else {
            panic!("expected branch");
        }
    }
}
