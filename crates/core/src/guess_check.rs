//! The guess-and-check bound (Section 5): `DUAL ∈ GC(log² n, [[LOGSPACE_pol]]^log)`.
//!
//! Theorem 5.1 shows that non-duality has certificates of `O(log² n)` bits: a path
//! descriptor leading to a `fail` leaf of the decomposition tree.  Verifying the
//! certificate amounts to one `pathnode` evaluation followed by a mark check
//! (Lemma 5.1), which lies in `[[LOGSPACE_pol]]^log ∘ LOGSPACE`.  This module makes the
//! certificate explicit: [`Certificate`] wraps the guessed path descriptor,
//! [`verify_certificate`] is the Lemma 5.1 checker, and [`find_certificate`] searches
//! for a certificate (which exists iff the instance is not dual, by
//! Proposition 2.1(4)).

use crate::error::DualError;
use crate::node::Mark;
use crate::path::{max_branching, PathDescriptor};
use crate::pathnode::{pathnode, PathnodeOutcome, SpaceStrategy};
use crate::solver::{preflight, Preflight};
use alloc::vec;
use qld_hypergraph::Hypergraph;
use qld_logspace::SpaceMeter;

/// A non-duality certificate: the `O(log² n)` nondeterministic bits of Theorem 5.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The guessed path descriptor (empty when the instance fails its preconditions,
    /// in which case the preflight check itself refutes duality).
    pub path: PathDescriptor,
}

impl Certificate {
    /// The number of bits of the certificate for an instance of the given dimensions
    /// (the quantity bounded by `O(log² n)`).
    pub fn bits(&self, num_vertices: usize, g_edges: usize) -> u64 {
        self.path.bits(max_branching(num_vertices, g_edges))
    }
}

/// The result of verifying a certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertificateCheck {
    /// The certificate is valid: it proves that the instance is **not** dual.
    RefutesDuality,
    /// The certificate is invalid (it does not lead to a `fail` leaf); nothing is
    /// learned about the instance.
    Invalid,
}

/// Lemma 5.1: checks whether `pathnode(I, π)` is a leaf marked `fail` (or whether the
/// instance already fails its logspace-checkable preconditions, in which case any
/// certificate — including the empty one — counts as a refutation).
pub fn verify_certificate(
    g: &Hypergraph,
    h: &Hypergraph,
    certificate: &Certificate,
    strategy: SpaceStrategy,
    meter: &SpaceMeter,
) -> Result<CertificateCheck, DualError> {
    match preflight(g, h)? {
        Preflight::Decided(answer) => Ok(if answer.is_dual() {
            CertificateCheck::Invalid
        } else {
            CertificateCheck::RefutesDuality
        }),
        Preflight::Ready { oriented, .. } => {
            match pathnode(&oriented, &certificate.path, strategy, meter) {
                PathnodeOutcome::WrongPath => Ok(CertificateCheck::Invalid),
                PathnodeOutcome::Node(attr) => Ok(if attr.mark == Mark::Fail {
                    CertificateCheck::RefutesDuality
                } else {
                    CertificateCheck::Invalid
                }),
            }
        }
    }
}

/// Searches for a certificate by a depth-first walk of the virtual tree.  Returns
/// `Ok(Some(_))` iff the instance is not dual (Proposition 2.1(4) guarantees a `fail`
/// leaf exists in that case), `Ok(None)` if it is dual.
pub fn find_certificate(
    g: &Hypergraph,
    h: &Hypergraph,
    meter: &SpaceMeter,
) -> Result<Option<Certificate>, DualError> {
    match preflight(g, h)? {
        Preflight::Decided(answer) => Ok(if answer.is_dual() {
            None
        } else {
            Some(Certificate {
                path: PathDescriptor::root(),
            })
        }),
        Preflight::Ready { oriented, .. } => {
            // Depth-first search over valid descriptors using the materializing chain
            // (the search itself is not part of the guess-and-check model; only the
            // verification of the found certificate is).
            let mut stack = vec![PathDescriptor::root()];
            let branch = max_branching(oriented.num_vertices(), oriented.g().num_edges());
            while let Some(pi) = stack.pop() {
                match pathnode(&oriented, &pi, SpaceStrategy::MaterializeChain, meter) {
                    PathnodeOutcome::WrongPath => continue,
                    PathnodeOutcome::Node(attr) => match attr.mark {
                        Mark::Fail => return Ok(Some(Certificate { path: pi })),
                        Mark::Done => continue,
                        Mark::Nil => {
                            for i in (1..=branch).rev() {
                                stack.push(pi.child(i));
                            }
                        }
                    },
                }
            }
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_hypergraph::generators;

    #[test]
    fn dual_instances_have_no_certificate() {
        let meter = SpaceMeter::new();
        for li in [
            generators::matching_instance(2),
            generators::matching_instance(3),
            generators::threshold_instance(5, 2),
        ] {
            assert_eq!(
                find_certificate(&li.g, &li.h, &meter).unwrap(),
                None,
                "{}",
                li.name
            );
        }
    }

    #[test]
    fn non_dual_instances_yield_verifiable_certificates() {
        let meter = SpaceMeter::new();
        for k in 2..=4 {
            let li = generators::matching_instance(k);
            let broken =
                generators::perturb(&li, generators::Perturbation::DropDualEdge, k).unwrap();
            let cert = find_certificate(&broken.g, &broken.h, &meter)
                .unwrap()
                .expect("non-dual instance must have a certificate");
            let check = verify_certificate(
                &broken.g,
                &broken.h,
                &cert,
                SpaceStrategy::MaterializeChain,
                &meter,
            )
            .unwrap();
            assert_eq!(check, CertificateCheck::RefutesDuality, "k={k}");
            // Certificate size is small: within the O(log² n) budget with a modest
            // constant (here: ≤ 4·log₂²(input bits)).
            let input_bits =
                ((broken.g.num_edges() + broken.h.num_edges()) * broken.g.num_vertices()) as f64;
            let budget = 4.0 * input_bits.log2() * input_bits.log2();
            assert!(
                (cert.bits(broken.g.num_vertices(), broken.g.num_edges()) as f64) <= budget,
                "certificate of {} bits exceeds budget {budget}",
                cert.bits(broken.g.num_vertices(), broken.g.num_edges())
            );
        }
    }

    #[test]
    fn bogus_certificates_are_rejected() {
        let meter = SpaceMeter::new();
        let li = generators::matching_instance(3);
        // On a dual instance, no certificate can verify.
        let bogus = Certificate {
            path: PathDescriptor::from_indices([1]),
        };
        assert_eq!(
            verify_certificate(
                &li.g,
                &li.h,
                &bogus,
                SpaceStrategy::MaterializeChain,
                &meter
            )
            .unwrap(),
            CertificateCheck::Invalid
        );
        // A wrong-path certificate on a non-dual instance is also rejected.
        let broken = generators::perturb(&li, generators::Perturbation::DropDualEdge, 0).unwrap();
        let wrong = Certificate {
            path: PathDescriptor::from_indices([100_000]),
        };
        assert_eq!(
            verify_certificate(
                &broken.g,
                &broken.h,
                &wrong,
                SpaceStrategy::MaterializeChain,
                &meter
            )
            .unwrap(),
            CertificateCheck::Invalid
        );
    }

    #[test]
    fn precondition_violations_short_circuit_verification() {
        let meter = SpaceMeter::new();
        let a = qld_hypergraph::Hypergraph::from_index_edges(4, &[&[0, 1]]);
        let b = qld_hypergraph::Hypergraph::from_index_edges(4, &[&[2, 3]]);
        let cert = Certificate {
            path: PathDescriptor::root(),
        };
        assert_eq!(
            verify_certificate(&a, &b, &cert, SpaceStrategy::MaterializeChain, &meter).unwrap(),
            CertificateCheck::RefutesDuality
        );
        let found = find_certificate(&a, &b, &meter).unwrap();
        assert!(found.is_some());
    }

    #[test]
    fn recompute_strategy_verifies_small_certificates() {
        let meter = SpaceMeter::new();
        let li = generators::matching_instance(2);
        let broken = generators::perturb(&li, generators::Perturbation::DropDualEdge, 1).unwrap();
        let cert = find_certificate(&broken.g, &broken.h, &meter)
            .unwrap()
            .expect("certificate");
        assert_eq!(
            verify_certificate(
                &broken.g,
                &broken.h,
                &cert,
                SpaceStrategy::Recompute,
                &meter
            )
            .unwrap(),
            CertificateCheck::RefutesDuality
        );
    }
}
