//! Validated `DUAL` instances.
//!
//! A [`DualInstance`] is a pair of simple hypergraphs `(G, H)` over a common vertex
//! universe.  Construction validates the simplicity requirement of the paper (inputs are
//! irredundant DNFs / simple hypergraphs); the degenerate cases involving edgeless
//! hypergraphs and the empty edge are resolved by [`DualInstance::degenerate_answer`];
//! and [`DualInstance::check_preconditions`] performs the logspace-checkable tests
//! `G ⊆ tr(H)` and `H ⊆ tr(G)` that the Boros–Makino decomposition assumes (Section 2),
//! returning a ready-made non-duality witness when they fail.

use crate::error::{DualError, Side};
use crate::result::NonDualWitness;
use qld_hypergraph::{Hypergraph, VertexSet};

/// A validated instance of the `DUAL` problem.
#[derive(Debug, Clone)]
pub struct DualInstance {
    g: Hypergraph,
    h: Hypergraph,
    num_vertices: usize,
}

impl DualInstance {
    /// Builds an instance, checking that both hypergraphs are simple.
    ///
    /// The two hypergraphs may be declared over different universe sizes; the instance
    /// uses the larger one for both.
    pub fn new(g: Hypergraph, h: Hypergraph) -> Result<Self, DualError> {
        g.check_simple().map_err(|source| DualError::NotSimple {
            side: Side::G,
            source,
        })?;
        h.check_simple().map_err(|source| DualError::NotSimple {
            side: Side::H,
            source,
        })?;
        let num_vertices = g.num_vertices().max(h.num_vertices());
        let g = regrow(g, num_vertices);
        let h = regrow(h, num_vertices);
        Ok(DualInstance { g, h, num_vertices })
    }

    /// Builds an instance after minimizing (absorbing) both hypergraphs, so that any
    /// monotone DNF pair can be fed in.
    pub fn new_minimized(g: Hypergraph, h: Hypergraph) -> Result<Self, DualError> {
        DualInstance::new(g.minimize(), h.minimize())
    }

    /// The first hypergraph `G`.
    pub fn g(&self) -> &Hypergraph {
        &self.g
    }

    /// The second hypergraph `H`.
    pub fn h(&self) -> &Hypergraph {
        &self.h
    }

    /// The size of the common vertex universe `V`.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The number of bits of the natural encoding of the instance — the `n` in which
    /// the paper's `O(log² n)` bounds are expressed.
    pub fn encoding_bits(&self) -> usize {
        (self.g.num_edges() + self.h.num_edges()) * self.num_vertices.max(1)
    }

    /// The instance with the roles of `G` and `H` exchanged.
    pub fn swapped(&self) -> DualInstance {
        DualInstance {
            g: self.h.clone(),
            h: self.g.clone(),
            num_vertices: self.num_vertices,
        }
    }

    /// Resolves the degenerate cases that the decomposition method does not handle:
    /// edgeless hypergraphs and the hypergraph `{∅}`.
    ///
    /// Returns `Some(result)` when the instance is degenerate, `None` when both
    /// hypergraphs are non-empty and all their edges are non-empty (the situation the
    /// decomposition assumes).
    ///
    /// Conventions (`tr(∅) = {∅}`, `tr({∅}) = ∅`): the constant-false DNF is dual to the
    /// constant-true DNF and vice versa.
    pub fn degenerate_answer(&self) -> Option<crate::result::DualityResult> {
        use crate::result::DualityResult::*;
        let g_trivial_true = self.g.has_empty_edge(); // G ⊇ {∅}, i.e. G = {∅} by simplicity
        let h_trivial_true = self.h.has_empty_edge();
        if self.g.is_empty() {
            // tr(G) = {∅}: dual iff H = {∅}.
            return Some(if h_trivial_true && self.h.num_edges() == 1 {
                Dual
            } else {
                // ∅ is a transversal of the edgeless G and contains no (non-empty) edge
                // of H; if H is also edgeless the same witness applies.
                NotDual(NonDualWitness::NewTransversalOfG(VertexSet::empty(
                    self.num_vertices,
                )))
            });
        }
        if self.h.is_empty() {
            return Some(if g_trivial_true && self.g.num_edges() == 1 {
                Dual
            } else {
                NotDual(NonDualWitness::NewTransversalOfH(VertexSet::empty(
                    self.num_vertices,
                )))
            });
        }
        if g_trivial_true {
            // G = {∅} has no transversals, so tr(G) = ∅ ≠ H (H is non-empty here).
            let h_index = 0;
            return Some(NotDual(NonDualWitness::DisjointEdges {
                g_index: 0,
                h_index,
            }));
        }
        if h_trivial_true {
            let g_index = 0;
            return Some(NotDual(NonDualWitness::DisjointEdges {
                g_index,
                h_index: 0,
            }));
        }
        None
    }

    /// The logspace-checkable preconditions of the decomposition method:
    /// `G ⊆ tr(H)` and `H ⊆ tr(G)` (every edge of each hypergraph is a *minimal*
    /// transversal of the other).  On failure returns a non-duality witness.
    ///
    /// Should only be called on non-degenerate instances.
    pub fn check_preconditions(&self) -> Result<(), NonDualWitness> {
        // Cross-intersection: every edge of G meets every edge of H.
        for (gi, ge) in self.g.edges().iter().enumerate() {
            for (hi, he) in self.h.edges().iter().enumerate() {
                if ge.is_disjoint(he) {
                    return Err(NonDualWitness::DisjointEdges {
                        g_index: gi,
                        h_index: hi,
                    });
                }
            }
        }
        // Minimality of each G-edge as a transversal of H.  (Cross-intersection already
        // makes each G-edge a transversal of H.)  A non-minimal edge yields, after
        // minimization, a transversal of H that cannot contain any edge of G (it is a
        // proper subset of a G-edge and G is simple) — a new transversal of H w.r.t. G.
        for ge in self.g.edges() {
            if !self.h.is_minimal_transversal(ge) {
                let reduced = self.h.minimize_transversal(ge);
                return Err(NonDualWitness::NewTransversalOfH(reduced));
            }
        }
        // Symmetrically for H-edges as transversals of G.
        for he in self.h.edges() {
            if !self.g.is_minimal_transversal(he) {
                let reduced = self.g.minimize_transversal(he);
                return Err(NonDualWitness::NewTransversalOfG(reduced));
            }
        }
        Ok(())
    }

    /// Returns the instance oriented so that the *decomposed* side (the `H` of
    /// Section 2, whose size bounds the tree depth) is the smaller one, together with a
    /// flag saying whether the roles were exchanged.
    ///
    /// The Boros–Makino description assumes `|H| ≤ |G|`; because duality is symmetric
    /// (`H = tr(G)` iff `G = tr(H)` for simple hypergraphs), solving the swapped
    /// instance decides the same question, and witnesses are mapped back with
    /// [`NonDualWitness::swap_sides`].
    pub fn oriented(&self) -> (DualInstance, bool) {
        if self.h.num_edges() <= self.g.num_edges() {
            (self.clone(), false)
        } else {
            (self.swapped(), true)
        }
    }
}

fn regrow(h: Hypergraph, n: usize) -> Hypergraph {
    if h.num_vertices() == n {
        return h;
    }
    let mut out = Hypergraph::new(n);
    for e in h.edges() {
        let mut e = e.clone();
        e.grow(n);
        out.add_edge(e);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::DualityResult;
    use qld_hypergraph::vset;

    #[test]
    fn construction_validates_simplicity() {
        let g = Hypergraph::from_index_edges(3, &[&[0, 1], &[1, 2]]);
        let h = Hypergraph::from_index_edges(3, &[&[1], &[0, 2]]);
        assert!(DualInstance::new(g.clone(), h).is_ok());
        let bad = Hypergraph::from_index_edges(3, &[&[0], &[0, 1]]);
        let err = DualInstance::new(g, bad).unwrap_err();
        assert!(matches!(err, DualError::NotSimple { side: Side::H, .. }));
    }

    #[test]
    fn new_minimized_accepts_redundant_input() {
        let g = Hypergraph::from_index_edges(3, &[&[0], &[0, 1]]);
        let h = Hypergraph::from_index_edges(3, &[&[1], &[0, 2]]);
        let inst = DualInstance::new_minimized(g, h).unwrap();
        assert_eq!(inst.g().num_edges(), 1);
    }

    #[test]
    fn universes_are_unified() {
        let g = Hypergraph::from_index_edges(2, &[&[0, 1]]);
        let h = Hypergraph::from_index_edges(5, &[&[4]]);
        let inst = DualInstance::new(g, h).unwrap();
        assert_eq!(inst.num_vertices(), 5);
        assert_eq!(inst.g().num_vertices(), 5);
        assert_eq!(inst.encoding_bits(), 2 * 5);
    }

    #[test]
    fn degenerate_cases() {
        let n = 3;
        let empty = Hypergraph::new(n);
        let true_dnf = Hypergraph::from_edges(n, [VertexSet::empty(n)]);
        let k3 = Hypergraph::from_index_edges(n, &[&[0, 1], &[1, 2], &[0, 2]]);

        // false vs true: dual.
        let inst = DualInstance::new(empty.clone(), true_dnf.clone()).unwrap();
        assert_eq!(inst.degenerate_answer(), Some(DualityResult::Dual));
        let inst = DualInstance::new(true_dnf.clone(), empty.clone()).unwrap();
        assert_eq!(inst.degenerate_answer(), Some(DualityResult::Dual));

        // false vs something else: not dual, with a checkable witness.
        let inst = DualInstance::new(empty.clone(), k3.clone()).unwrap();
        match inst.degenerate_answer().unwrap() {
            DualityResult::NotDual(w) => {
                assert!(crate::result::verify_witness(inst.g(), inst.h(), &w))
            }
            other => panic!("expected NotDual, got {other:?}"),
        }

        // true vs something else: not dual.
        let inst = DualInstance::new(true_dnf.clone(), k3.clone()).unwrap();
        match inst.degenerate_answer().unwrap() {
            DualityResult::NotDual(w) => {
                assert!(crate::result::verify_witness(inst.g(), inst.h(), &w))
            }
            other => panic!("expected NotDual, got {other:?}"),
        }

        // both empty: not dual (tr(∅) = {∅} ≠ ∅).
        let inst = DualInstance::new(empty.clone(), empty.clone()).unwrap();
        assert!(matches!(
            inst.degenerate_answer(),
            Some(DualityResult::NotDual(_))
        ));

        // Non-degenerate instance yields None.
        let inst = DualInstance::new(k3.clone(), k3).unwrap();
        assert_eq!(inst.degenerate_answer(), None);
    }

    #[test]
    fn preconditions_pass_for_dual_pairs() {
        let g = Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3]]);
        let h = Hypergraph::from_index_edges(4, &[&[0, 2], &[0, 3], &[1, 2], &[1, 3]]);
        let inst = DualInstance::new(g, h).unwrap();
        assert!(inst.check_preconditions().is_ok());
    }

    #[test]
    fn precondition_failure_disjoint_edges() {
        let g = Hypergraph::from_index_edges(4, &[&[0, 1]]);
        let h = Hypergraph::from_index_edges(4, &[&[2, 3]]);
        let inst = DualInstance::new(g, h).unwrap();
        let w = inst.check_preconditions().unwrap_err();
        assert!(matches!(w, NonDualWitness::DisjointEdges { .. }));
        assert!(crate::result::verify_witness(inst.g(), inst.h(), &w));
    }

    #[test]
    fn precondition_failure_non_minimal_edge() {
        // Every edge of G = {{0},{1}} is a minimal transversal of H = {{0,1,2}}, but
        // H's single edge is a non-minimal transversal of G, so the check reports a new
        // transversal of G (its minimization, {0,1}).
        let g = Hypergraph::from_index_edges(3, &[&[0], &[1]]);
        let h = Hypergraph::from_index_edges(3, &[&[0, 1, 2]]);
        let inst = DualInstance::new(g.clone(), h.clone()).unwrap();
        let w = inst.check_preconditions().unwrap_err();
        assert!(matches!(w, NonDualWitness::NewTransversalOfG(_)));
        assert!(crate::result::verify_witness(inst.g(), inst.h(), &w));

        // And symmetrically when the offending (non-minimal) edge is in G.
        let inst = DualInstance::new(h, g).unwrap();
        let w = inst.check_preconditions().unwrap_err();
        assert!(matches!(w, NonDualWitness::NewTransversalOfH(_)));
        assert!(crate::result::verify_witness(inst.g(), inst.h(), &w));
    }

    #[test]
    fn orientation_puts_smaller_side_second() {
        let g = Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3]]);
        let h = Hypergraph::from_index_edges(4, &[&[0, 2], &[0, 3], &[1, 2], &[1, 3]]);
        // |H| > |G|: swap
        let inst = DualInstance::new(g.clone(), h.clone()).unwrap();
        let (oriented, swapped) = inst.oriented();
        assert!(swapped);
        assert_eq!(oriented.h().num_edges(), 2);
        // |H| <= |G|: keep
        let inst = DualInstance::new(h, g).unwrap();
        let (oriented, swapped) = inst.oriented();
        assert!(!swapped);
        assert_eq!(oriented.h().num_edges(), 2);
    }

    #[test]
    fn swapped_exchanges_sides() {
        let g = Hypergraph::from_index_edges(3, &[&[0, 1]]);
        let h = Hypergraph::from_index_edges(3, &[&[0], &[1]]);
        let inst = DualInstance::new(g, h).unwrap();
        let sw = inst.swapped();
        assert_eq!(sw.g().num_edges(), 2);
        assert_eq!(sw.h().num_edges(), 1);
        assert_eq!(vset![3; 0, 1], *sw.h().edge(0));
    }
}
