//! # qld-core
//!
//! Rust implementation of the algorithms and bounds of Georg Gottlob,
//! *Deciding Monotone Duality and Identifying Frequent Itemsets in Quadratic Logspace*
//! (PODS 2013).
//!
//! The `DUAL` problem asks whether two irredundant monotone DNFs — equivalently, two
//! simple hypergraphs `G` and `H` — are dual, i.e. whether `H` consists exactly of the
//! minimal transversals of `G`.  This crate provides:
//!
//! * [`DualInstance`] — validated instances, degenerate-case handling, and the
//!   logspace-checkable preconditions `G ⊆ tr(H)`, `H ⊆ tr(G)`;
//! * [`expand`](crate::expand::expand) and [`tree`] — the Boros–Makino decomposition
//!   step (`marksmall` / `process`) and the explicit decomposition tree `T(G, H)` of
//!   Section 2 (Proposition 2.1);
//! * [`path`], [`oracle`], [`mod@pathnode`], [`decompose`] — path descriptors, the oracle
//!   chain realizing `next` (Lemma 4.1) and `pathnode` (Lemma 4.2), and the
//!   `decompose` enumeration of Theorem 4.1, all charged against a
//!   [`qld_logspace::SpaceMeter`] so the `O(log² n)` work-space claim can be measured;
//! * [`solver`] — [`BorosMakinoTreeSolver`] (reference) and [`QuadLogspaceSolver`] (the
//!   paper's algorithm, with a faithful recompute strategy and a practical
//!   materialize-per-level strategy), both returning checkable non-duality witnesses
//!   (Corollary 4.1);
//! * [`guess_check`] — the `GC(log² n, [[LOGSPACE_pol]]^log)` certificates of Section 5
//!   (Theorem 5.1) and their Lemma 5.1 verifier;
//! * [`witness`] — post-processing a new transversal into a new *minimal* transversal.
//!
//! # Quick start
//!
//! ```
//! use qld_core::prelude::*;
//! use qld_hypergraph::Hypergraph;
//!
//! // G = {{0,1},{2,3}} and its minimal transversals.
//! let g = Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3]]);
//! let h = Hypergraph::from_index_edges(4, &[&[0, 2], &[0, 3], &[1, 2], &[1, 3]]);
//! assert!(qld_core::is_dual(&g, &h).unwrap());
//!
//! // Remove a transversal: no longer dual, and the solver names a missing one.
//! let mut broken = h.clone();
//! broken.remove_edge(0);
//! let result = qld_core::decide_duality(&g, &broken).unwrap();
//! assert!(!result.is_dual());
//! let witness = result.witness().unwrap();
//! assert!(qld_core::verify_witness(&g, &broken, witness));
//! ```

#![cfg_attr(all(not(feature = "std"), not(test)), no_std)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

extern crate alloc;

pub mod decompose;
pub mod error;
pub mod expand;
pub mod guess_check;
pub mod instance;
pub mod node;
pub mod oracle;
#[cfg(feature = "std")]
pub mod par;
pub mod path;
pub mod pathnode;
pub mod result;
pub mod solver;
pub mod stats;
pub mod tree;
pub mod witness;

pub use error::{DualError, Side};
pub use instance::DualInstance;
pub use node::{Mark, NodeAttr};
#[cfg(feature = "std")]
pub use par::{InlinePool, ParallelContext, SubtaskPool, SubtaskScope};
pub use path::PathDescriptor;
pub use pathnode::{pathnode, PathnodeOutcome, SpaceStrategy};
pub use result::{verify_witness, DualityResult, NonDualWitness};
pub use solver::{
    decide_duality, is_dual, BorosMakinoTreeSolver, DualitySolver, QuadLogspaceSolver,
};
pub use stats::SpaceReport;

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::guess_check::{find_certificate, verify_certificate, Certificate};
    pub use crate::result::verify_witness;
    pub use crate::solver::{
        decide_duality, is_dual, BorosMakinoTreeSolver, DualitySolver, QuadLogspaceSolver,
    };
    pub use crate::{
        DualError, DualInstance, DualityResult, Mark, NodeAttr, NonDualWitness, PathDescriptor,
        SpaceReport, SpaceStrategy,
    };
}
