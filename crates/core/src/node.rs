//! Node attributes of the decomposition tree.
//!
//! Every node `α` of `T(G, H)` carries the five data structures listed in Section 2 of
//! the paper: its label (a path descriptor), the vertex set `S_α`, the induced instance
//! `(G_{S_α}, H_{S_α})`, a mark, and the witness set `t(α)`.  Since `G_{S_α}` and
//! `H_{S_α}` are determined by `S_α` and the original instance, [`NodeAttr`] stores only
//! the label, `S_α`, the mark and `t(α)`, and recomputes the induced instance on demand
//! — this is exactly the observation that makes the oracle chain of
//! [`crate::oracle`] possible.

use crate::instance::DualInstance;
use crate::path::PathDescriptor;
use core::fmt;
use qld_hypergraph::{Hypergraph, VertexSet};

/// The mark of a decomposition-tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mark {
    /// The dummy value carried by inner nodes.
    Nil,
    /// A leaf whose branch is consistent with `H = tr(G)`.
    Done,
    /// A leaf witnessing `H ≠ tr(G)`; its `t(α)` is a new transversal.
    Fail,
}

impl fmt::Display for Mark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mark::Nil => write!(f, "nil"),
            Mark::Done => write!(f, "done"),
            Mark::Fail => write!(f, "fail"),
        }
    }
}

/// The attributes `attr(α)` of a decomposition-tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeAttr {
    /// `label(α)`: the path descriptor naming the node.
    pub label: PathDescriptor,
    /// `S_α ⊆ V`.
    pub s: VertexSet,
    /// `mark(α)`.
    pub mark: Mark,
    /// `t(α)`: the witness set; non-empty only for `fail` leaves (it is `∅` otherwise,
    /// matching the paper's convention, and represented as `None` here).
    pub witness: Option<VertexSet>,
}

impl NodeAttr {
    /// The root attributes: label `()`, `S = V`, mark `nil`, `t = ∅`.
    pub fn root(inst: &DualInstance) -> NodeAttr {
        NodeAttr {
            label: PathDescriptor::root(),
            s: VertexSet::full(inst.num_vertices()),
            mark: Mark::Nil,
            witness: None,
        }
    }

    /// The induced hypergraph `G_{S_α} = { E ∩ S_α | E ∈ G }` (duplicates collapsed).
    pub fn g_restricted(&self, inst: &DualInstance) -> Hypergraph {
        inst.g().restrict_intersections(&self.s)
    }

    /// The induced hypergraph `H_{S_α} = { E ∈ H | E ⊆ S_α }`.
    pub fn h_restricted(&self, inst: &DualInstance) -> Hypergraph {
        inst.h().restrict_subedges(&self.s)
    }

    /// The set `I_α` of vertices occurring in more than `|H_{S_α}|/2` edges of
    /// `H_{S_α}` (Step 1 of `process`).
    pub fn i_alpha(&self, inst: &DualInstance) -> VertexSet {
        let hs = self.h_restricted(inst);
        hs.frequent_vertices(hs.num_edges() / 2)
    }

    /// Whether this node is a leaf of the final tree (marked `done` or `fail`).
    pub fn is_leaf(&self) -> bool {
        self.mark != Mark::Nil
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_hypergraph::{vset, Hypergraph};

    fn instance() -> DualInstance {
        // G = {{0,1},{2,3}}, H = tr(G)
        let g = Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3]]);
        let h = Hypergraph::from_index_edges(4, &[&[0, 2], &[0, 3], &[1, 2], &[1, 3]]);
        DualInstance::new(g, h).unwrap()
    }

    #[test]
    fn root_attributes() {
        let inst = instance();
        let root = NodeAttr::root(&inst);
        assert_eq!(root.label, PathDescriptor::root());
        assert_eq!(root.s, VertexSet::full(4));
        assert_eq!(root.mark, Mark::Nil);
        assert!(root.witness.is_none());
        assert!(!root.is_leaf());
    }

    #[test]
    fn restrictions_follow_paper_definitions() {
        let inst = instance();
        let mut node = NodeAttr::root(&inst);
        node.s = vset![4; 0, 2, 3];
        let gs = node.g_restricted(&inst);
        assert!(gs.contains_edge(&vset![4; 0]));
        assert!(gs.contains_edge(&vset![4; 2, 3]));
        let hs = node.h_restricted(&inst);
        // H-edges inside {0,2,3}: {0,2} and {0,3}
        assert_eq!(hs.num_edges(), 2);
        assert!(hs.contains_edge(&vset![4; 0, 2]));
        assert!(hs.contains_edge(&vset![4; 0, 3]));
        // I_α: vertices in more than 1 of those 2 edges → only vertex 0
        assert_eq!(node.i_alpha(&inst).to_indices(), vec![0]);
    }

    #[test]
    fn i_alpha_at_root() {
        let inst = instance();
        let root = NodeAttr::root(&inst);
        // every vertex occurs in exactly 2 of the 4 H-edges; threshold is 2 ("more
        // than"), so I_α is empty at the root.
        assert!(root.i_alpha(&inst).is_empty());
    }

    #[test]
    fn mark_display_and_leaf() {
        assert_eq!(Mark::Nil.to_string(), "nil");
        assert_eq!(Mark::Done.to_string(), "done");
        assert_eq!(Mark::Fail.to_string(), "fail");
        let inst = instance();
        let mut n = NodeAttr::root(&inst);
        n.mark = Mark::Done;
        assert!(n.is_leaf());
    }
}
