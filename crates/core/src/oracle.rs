//! The oracle chain: Lemma 4.1 / Lemma 4.2 as executable, space-metered code.
//!
//! The key observation behind the paper's space bound is that the node attributes
//! `attr(α)` of the decomposition tree are determined by the original instance together
//! with the set `S_α`, and that `S_{α_i}` (the `i`-th child's set) is computable from
//! `S_α` by a deterministic logspace procedure (`next`, Lemma 4.1).  Hence a node named
//! by a path descriptor can be evaluated by a *chain* of such procedures, one per tree
//! level, none of which ever stores an intermediate `S` set: whenever level `k` needs to
//! know whether a vertex belongs to its `S`, it recomputes the answer from queries to
//! level `k−1` using `O(log n)` bits of registers (Lemma 3.1 / Lemma 4.2).
//!
//! This module implements that chain.  [`SAlphaOracle`] is the query interface
//! (`v ∈ S_α?`); [`RootOracle`] answers for the root (`S = V`); [`ChildOracle`] layers
//! one decomposition step on top of a parent oracle, re-deriving the `marksmall` /
//! `process` decisions of [`crate::expand`] from queries only; and the free functions
//! ([`classify`], [`child_count`], [`child_contains`], …) are the logspace
//! sub-procedures they share.  [`MaterializedOracle`] is the contrasting strategy that
//! stores one `S` set per level (charging `|V|` bits), used by the practical solver mode
//! and by the space experiments as a comparison point.
//!
//! Every function takes a [`SpaceMeter`] and allocates its loop counters and per-level
//! registers through it, so the peak meter reading of a traversal is an honest measure
//! of work-tape usage under the `DSPACE[·]` accounting convention (read-only input and
//! write-only output are free).

use crate::expand::{BranchCase, FailRule};
use crate::instance::DualInstance;
use crate::node::Mark;
use alloc::vec;
use qld_hypergraph::{Vertex, VertexSet};
use qld_logspace::{LogRegister, SpaceMeter};

/// Query interface to the vertex set `S_α` of a decomposition-tree node.
pub trait SAlphaOracle {
    /// Whether vertex `v` belongs to `S_α`.
    fn contains(&self, v: Vertex) -> bool;

    /// The explicit bitmap backing this oracle, when it has one.
    ///
    /// Oracles that already hold `S_α` on the work tape (the [`MaterializedOracle`] of
    /// the practical solver mode, charged `|V|` bits) expose it here so that the
    /// logspace sub-procedures can answer whole-edge questions with word operations
    /// against the instance's [`qld_hypergraph::HypergraphIndex`] instead of one
    /// membership query per vertex.  Chained oracles return `None` and keep the
    /// query-driven path; the decisions taken are identical either way.
    fn materialized(&self) -> Option<&VertexSet> {
        None
    }
}

/// The root oracle: `S_{α₀} = V`.
#[derive(Debug, Clone, Copy)]
pub struct RootOracle {
    num_vertices: usize,
}

impl RootOracle {
    /// Creates the root oracle for an instance.
    pub fn new(inst: &DualInstance) -> Self {
        RootOracle {
            num_vertices: inst.num_vertices(),
        }
    }
}

impl SAlphaOracle for RootOracle {
    fn contains(&self, v: Vertex) -> bool {
        v.index() < self.num_vertices
    }
}

/// An oracle backed by an explicit, metered vertex set (one tree level's `S` held on
/// the work tape).  Charges `|V|` bits for as long as it lives.
#[derive(Debug)]
pub struct MaterializedOracle {
    s: VertexSet,
    bits: u64,
    meter: SpaceMeter,
}

impl MaterializedOracle {
    /// Wraps an explicit vertex set, charging the meter for it.
    pub fn new(s: VertexSet, meter: &SpaceMeter) -> Self {
        let bits = s.capacity().max(1) as u64;
        meter.charge(bits);
        MaterializedOracle {
            s,
            bits,
            meter: meter.clone(),
        }
    }

    /// The underlying set.
    pub fn set(&self) -> &VertexSet {
        &self.s
    }
}

impl Drop for MaterializedOracle {
    fn drop(&mut self) {
        self.meter.free(self.bits);
    }
}

impl SAlphaOracle for MaterializedOracle {
    fn contains(&self, v: Vertex) -> bool {
        self.s.contains(v)
    }

    fn materialized(&self) -> Option<&VertexSet> {
        Some(&self.s)
    }
}

/// The classification of a node, as derived by the logspace sub-procedures.
///
/// It mirrors [`crate::expand::Expansion`] but carries only `O(log n)`-bit data (edge
/// indices and a vertex), never a vertex set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeClass {
    /// Leaf marked `done`.
    Done,
    /// Leaf marked `fail` (the witness is recoverable from the rule and the oracle).
    Fail(FailRule),
    /// Inner node branching according to the given rule.
    Branch(BranchCase),
}

impl NodeClass {
    /// The node's mark.
    pub fn mark(&self) -> Mark {
        match self {
            NodeClass::Done => Mark::Done,
            NodeClass::Fail(_) => Mark::Fail,
            NodeClass::Branch(_) => Mark::Nil,
        }
    }
}

/// Whether the `j`-th edge of `H` is contained in `S`.
fn h_edge_inside(inst: &DualInstance, s: &dyn SAlphaOracle, j: usize) -> bool {
    match s.materialized() {
        Some(set) => inst.h().index().edge_is_subset(j, set),
        None => inst.h().edge(j).iter().all(|v| s.contains(v)),
    }
}

/// `|H_S|`: the number of `H`-edges contained in `S`.
pub fn count_h_inside(inst: &DualInstance, s: &dyn SAlphaOracle, meter: &SpaceMeter) -> u64 {
    let mut count = LogRegister::new(meter, inst.h().num_edges() as u64);
    let mut j = LogRegister::new(meter, inst.h().num_edges() as u64);
    while (j.get() as usize) < inst.h().num_edges() {
        if h_edge_inside(inst, s, j.get() as usize) {
            count.increment();
        }
        j.increment();
    }
    count.get()
}

/// Whether `v ∈ I_α`: `v` occurs in more than `|H_S|/2` of the edges of `H_S`.
pub fn i_alpha_contains(
    inst: &DualInstance,
    s: &dyn SAlphaOracle,
    v: Vertex,
    meter: &SpaceMeter,
) -> bool {
    let m_edges = inst.h().num_edges() as u64;
    let mut total = LogRegister::new(meter, m_edges);
    let mut with_v = LogRegister::new(meter, m_edges);
    let mut j = LogRegister::new(meter, m_edges);
    while (j.get() as usize) < inst.h().num_edges() {
        let idx = j.get() as usize;
        if h_edge_inside(inst, s, idx) {
            total.increment();
            if inst.h().edge(idx).contains(v) {
                with_v.increment();
            }
        }
        j.increment();
    }
    2 * with_v.get() > total.get()
}

/// Whether the singleton `{v}` belongs to `G_S`: some edge `E ∈ G` has `E ∩ S = {v}`.
/// Only the edges containing `v` can qualify, so the scan runs over the incidence list.
fn singleton_in_gs(inst: &DualInstance, s: &dyn SAlphaOracle, v: Vertex) -> bool {
    if !s.contains(v) {
        return false;
    }
    let g = inst.g();
    match s.materialized() {
        Some(set) => g
            .edges_containing(v)
            .iter()
            .any(|&j| g.index().edge_intersection_len(j as usize, set) == 1),
        None => g
            .edges_containing(v)
            .iter()
            .any(|&j| g.edge(j as usize).iter().all(|u| u == v || !s.contains(u))),
    }
}

/// Whether the restriction `E ∩ S` of the `j`-th `G`-edge is empty.
fn g_restriction_empty(inst: &DualInstance, s: &dyn SAlphaOracle, j: usize) -> bool {
    match s.materialized() {
        Some(set) => !inst.g().index().edge_intersects(j, set),
        None => inst.g().edge(j).iter().all(|v| !s.contains(v)),
    }
}

/// Whether the restriction `E_j ∩ S` intersects `I_α`.
fn g_restriction_meets_i_alpha(
    inst: &DualInstance,
    s: &dyn SAlphaOracle,
    j: usize,
    meter: &SpaceMeter,
) -> bool {
    inst.g()
        .edge(j)
        .iter()
        .any(|v| s.contains(v) && i_alpha_contains(inst, s, v, meter))
}

/// Whether the `j`-th `H`-edge is contained in `I_α`.
fn h_edge_inside_i_alpha(
    inst: &DualInstance,
    s: &dyn SAlphaOracle,
    j: usize,
    meter: &SpaceMeter,
) -> bool {
    inst.h()
        .edge(j)
        .iter()
        .all(|v| i_alpha_contains(inst, s, v, meter))
}

/// [`classify`] for an oracle that holds `S_α` on the work tape: the same
/// decision rules, answered with whole-edge word scans against the cached
/// [`qld_hypergraph::HypergraphIndex`] instead of per-vertex membership
/// queries.  `I_α` is computed once as an explicit bitmap (charged to the
/// meter: `|V|` bits for the set plus `|V| · ⌈log |H|⌉` bits for the
/// occurrence counters) and every Step-2/3/4 question becomes a batched or
/// single-row arena scan.  The decisions — including which edge index each
/// branch rule names — are identical to the query-driven path; the
/// cross-checks in this module's tests enforce that.
fn classify_materialized(inst: &DualInstance, set: &VertexSet, meter: &SpaceMeter) -> NodeClass {
    let h = inst.h();
    let g = inst.g();
    let h_inside = h.index().edges_inside(set);
    let m = h_inside.len();

    if m == 0 {
        // marksmall cases 1 and 2: done iff some G-restriction is empty.
        return match g.index().first_edge_disjoint(set) {
            Some(_) => NodeClass::Done,
            None => NodeClass::Fail(FailRule::EmptyHs),
        };
    }

    if m == 1 {
        // marksmall cases 3 and 4.
        let h_edge = h_inside[0];
        for v in h.edge(h_edge).iter() {
            if !g
                .edges_containing(v)
                .iter()
                .any(|&j| g.index().edge_intersection_len(j as usize, set) == 1)
            {
                return NodeClass::Fail(FailRule::SingletonHs { h_edge, removed: v });
            }
        }
        return NodeClass::Done;
    }

    // process: build I_α — vertices in more than m/2 of the edges of H_S.
    let n = inst.num_vertices();
    let scratch_bits = n as u64 * (1 + qld_logspace::bits_for(m as u64));
    meter.charge(scratch_bits);
    let mut freq = vec![0usize; n];
    for &j in &h_inside {
        for v in h.edge(j).iter() {
            freq[v.index()] += 1;
        }
    }
    let mut i_alpha = VertexSet::empty(n);
    for (idx, &f) in freq.iter().enumerate() {
        if f > m / 2 {
            i_alpha.insert(Vertex::from(idx));
        }
    }
    // Every member of I_α occurs in an edge of H_S ⊆ 2^S, so I_α ⊆ S and
    // `(E ∩ S) ∩ I_α = E ∩ I_α` for every G-edge E.
    debug_assert!(i_alpha.is_subset(set));

    let class = 'class: {
        // Step 2: I_α is a new transversal of G_S w.r.t. H_S?  "Every
        // restriction is non-empty and meets I_α" is exactly "S and I_α are
        // both transversals of G" — one batched arena pass.
        let both = g.index().transversal_many(&[set, &i_alpha]);
        if both[0] && both[1] {
            let contains_h_edge = h_inside
                .iter()
                .any(|&j| h.index().edge_is_subset(j, &i_alpha));
            if !contains_h_edge {
                break 'class NodeClass::Fail(FailRule::FrequentSet);
            }
        }

        // Step 3: first G-edge whose restriction misses I_α.
        if let Some(g_edge) = g.index().first_edge_disjoint(&i_alpha) {
            break 'class NodeClass::Branch(BranchCase::GEdgeMissesIAlpha { g_edge });
        }

        // Step 4: first H_S-edge contained in I_α.
        let h_edge = h_inside
            .iter()
            .copied()
            .find(|&j| h.index().edge_is_subset(j, &i_alpha))
            .expect("process: neither Step 3 nor Step 4 applies — impossible by case analysis");
        NodeClass::Branch(BranchCase::HEdgeInsideIAlpha { h_edge })
    };
    meter.free(scratch_bits);
    class
}

/// Classifies the node with vertex-set oracle `s`: re-derives the `marksmall` /
/// `process` decision of [`crate::expand::expand`] from membership queries only.
pub fn classify(inst: &DualInstance, s: &dyn SAlphaOracle, meter: &SpaceMeter) -> NodeClass {
    if let Some(set) = s.materialized() {
        return classify_materialized(inst, set, meter);
    }
    let m = count_h_inside(inst, s, meter);

    if m == 0 {
        // marksmall cases 1 and 2.
        let mut j = LogRegister::new(meter, inst.g().num_edges() as u64);
        while (j.get() as usize) < inst.g().num_edges() {
            if g_restriction_empty(inst, s, j.get() as usize) {
                return NodeClass::Done;
            }
            j.increment();
        }
        return NodeClass::Fail(FailRule::EmptyHs);
    }

    if m == 1 {
        // marksmall cases 3 and 4: locate the unique H-edge inside S.
        let mut j = LogRegister::new(meter, inst.h().num_edges() as u64);
        let h_edge = loop {
            let idx = j.get() as usize;
            if h_edge_inside(inst, s, idx) {
                break idx;
            }
            j.increment();
        };
        for v in inst.h().edge(h_edge).iter() {
            if !singleton_in_gs(inst, s, v) {
                return NodeClass::Fail(FailRule::SingletonHs { h_edge, removed: v });
            }
        }
        return NodeClass::Done;
    }

    // process: Step 2 — is I_α a new transversal of G_S w.r.t. H_S?
    let mut transversal = true;
    {
        let mut j = LogRegister::new(meter, inst.g().num_edges() as u64);
        while (j.get() as usize) < inst.g().num_edges() {
            let idx = j.get() as usize;
            if g_restriction_empty(inst, s, idx)
                || !g_restriction_meets_i_alpha(inst, s, idx, meter)
            {
                transversal = false;
                break;
            }
            j.increment();
        }
    }
    if transversal {
        let mut contains_h_edge = false;
        let mut j = LogRegister::new(meter, inst.h().num_edges() as u64);
        while (j.get() as usize) < inst.h().num_edges() {
            let idx = j.get() as usize;
            if h_edge_inside(inst, s, idx) && h_edge_inside_i_alpha(inst, s, idx, meter) {
                contains_h_edge = true;
                break;
            }
            j.increment();
        }
        if !contains_h_edge {
            return NodeClass::Fail(FailRule::FrequentSet);
        }
    }

    // Step 3 — first G-edge whose restriction misses I_α.
    {
        let mut j = LogRegister::new(meter, inst.g().num_edges() as u64);
        while (j.get() as usize) < inst.g().num_edges() {
            let idx = j.get() as usize;
            if !g_restriction_meets_i_alpha(inst, s, idx, meter) {
                return NodeClass::Branch(BranchCase::GEdgeMissesIAlpha { g_edge: idx });
            }
            j.increment();
        }
    }

    // Step 4 — first H_S-edge contained in I_α.
    let mut j = LogRegister::new(meter, inst.h().num_edges() as u64);
    while (j.get() as usize) < inst.h().num_edges() {
        let idx = j.get() as usize;
        if h_edge_inside(inst, s, idx) && h_edge_inside_i_alpha(inst, s, idx, meter) {
            return NodeClass::Branch(BranchCase::HEdgeInsideIAlpha { h_edge: idx });
        }
        j.increment();
    }
    unreachable!("process: neither Step 3 nor Step 4 applies — impossible by case analysis")
}

/// The number of children `κ(α)` of the node (0 for leaves).
pub fn child_count(inst: &DualInstance, s: &dyn SAlphaOracle, meter: &SpaceMeter) -> u64 {
    let class = classify(inst, s, meter);
    child_count_given(inst, s, class, meter)
}

/// Like [`child_count`], but with the node's classification already known (the
/// classification is `O(log n)` bits of state, so callers that walk the tree keep it in
/// a register instead of recomputing it per query).
pub fn child_count_given(
    inst: &DualInstance,
    s: &dyn SAlphaOracle,
    class: NodeClass,
    meter: &SpaceMeter,
) -> u64 {
    match class {
        NodeClass::Done | NodeClass::Fail(_) => 0,
        NodeClass::Branch(BranchCase::GEdgeMissesIAlpha { g_edge }) => {
            let ge = inst.g().edge(g_edge);
            let mut count = LogRegister::new(
                meter,
                (inst.num_vertices() * inst.g().num_edges()) as u64 + 1,
            );
            let mut j = LogRegister::new(meter, inst.g().num_edges() as u64);
            while (j.get() as usize) < inst.g().num_edges() {
                let e = inst.g().edge(j.get() as usize);
                for v in e.iter() {
                    // v ∈ (E_j ∩ S) ∩ (G_e ∩ S)
                    if s.contains(v) && ge.contains(v) {
                        count.increment();
                    }
                }
                j.increment();
            }
            count.get()
        }
        NodeClass::Branch(BranchCase::HEdgeInsideIAlpha { h_edge }) => {
            let he = inst.h().edge(h_edge);
            let mut count = LogRegister::new(meter, inst.num_vertices() as u64 + 1);
            for v in he.iter() {
                if s.contains(v) {
                    count.increment();
                }
            }
            // every vertex of the chosen H-edge lies in S (the edge is in H_S), plus the
            // final child H_e itself.
            count.get() + 1
        }
    }
}

/// Whether vertex `v` belongs to the `index`-th child's set (1-based canonical order).
/// Returns `None` if the node has fewer than `index` children (including leaves).
pub fn child_contains(
    inst: &DualInstance,
    s: &dyn SAlphaOracle,
    index: u64,
    v: Vertex,
    meter: &SpaceMeter,
) -> Option<bool> {
    let class = classify(inst, s, meter);
    child_contains_given(inst, s, class, index, v, meter)
}

/// Like [`child_contains`], but with the node's classification already known.
pub fn child_contains_given(
    inst: &DualInstance,
    s: &dyn SAlphaOracle,
    class: NodeClass,
    index: u64,
    v: Vertex,
    meter: &SpaceMeter,
) -> Option<bool> {
    if index == 0 {
        return None;
    }
    match class {
        NodeClass::Done | NodeClass::Fail(_) => None,
        NodeClass::Branch(BranchCase::GEdgeMissesIAlpha { g_edge }) => {
            let ge = inst.g().edge(g_edge);
            let mut seen = LogRegister::new(
                meter,
                (inst.num_vertices() * inst.g().num_edges()) as u64 + 1,
            );
            let mut j = LogRegister::new(meter, inst.g().num_edges() as u64);
            while (j.get() as usize) < inst.g().num_edges() {
                let e = inst.g().edge(j.get() as usize);
                for i in e.iter() {
                    if s.contains(i) && ge.contains(i) {
                        seen.increment();
                        if seen.get() == index {
                            // C = S − ((E_j ∩ S) − {i})
                            let member = s.contains(v) && (!e.contains(v) || v == i);
                            return Some(member);
                        }
                    }
                }
                j.increment();
            }
            None
        }
        NodeClass::Branch(BranchCase::HEdgeInsideIAlpha { h_edge }) => {
            let he = inst.h().edge(h_edge);
            let mut seen = LogRegister::new(meter, inst.num_vertices() as u64 + 1);
            for i in he.iter() {
                if s.contains(i) {
                    seen.increment();
                    if seen.get() == index {
                        // C = S − {i}
                        return Some(s.contains(v) && v != i);
                    }
                }
            }
            if index == seen.get() + 1 {
                // final child: C = H_e itself
                Some(he.contains(v))
            } else {
                None
            }
        }
    }
}

/// One level of the oracle chain: presents the `index`-th child of the node whose set is
/// given by `parent`, recomputing every membership query from parent queries
/// (Lemma 4.1 composed as in Lemma 4.2).
///
/// The parent's classification (an `O(log n)`-bit value: a case tag plus an edge index)
/// is computed once at construction and kept in a metered register-equivalent, so that
/// individual membership queries only re-run the child-enumeration loop, not the whole
/// `marksmall`/`process` case analysis.
pub struct ChildOracle<'a> {
    inst: &'a DualInstance,
    parent: &'a dyn SAlphaOracle,
    parent_class: NodeClass,
    index: u64,
    class_bits: u64,
    meter: SpaceMeter,
}

impl<'a> ChildOracle<'a> {
    /// Creates the oracle for the `index`-th child (1-based), classifying the parent in
    /// the process.  The child's existence is *not* checked here; use [`child_count`]
    /// or [`child_contains`] first.
    pub fn new(
        inst: &'a DualInstance,
        parent: &'a dyn SAlphaOracle,
        index: u64,
        meter: &SpaceMeter,
    ) -> Self {
        let parent_class = classify(inst, parent, meter);
        Self::with_class(inst, parent, parent_class, index, meter)
    }

    /// Creates the oracle when the parent's classification is already known (avoids a
    /// redundant classification during tree walks).
    pub fn with_class(
        inst: &'a DualInstance,
        parent: &'a dyn SAlphaOracle,
        parent_class: NodeClass,
        index: u64,
        meter: &SpaceMeter,
    ) -> Self {
        // The cached classification occupies a case tag plus an edge index on the work
        // tape; charge it for the lifetime of this level.
        let class_bits =
            2 + qld_logspace::bits_for((inst.g().num_edges().max(inst.h().num_edges())) as u64);
        meter.charge(class_bits);
        ChildOracle {
            inst,
            parent,
            parent_class,
            index,
            class_bits,
            meter: meter.clone(),
        }
    }

    /// The cached classification of the parent node.
    pub fn parent_class(&self) -> NodeClass {
        self.parent_class
    }
}

impl Drop for ChildOracle<'_> {
    fn drop(&mut self) {
        self.meter.free(self.class_bits);
    }
}

impl SAlphaOracle for ChildOracle<'_> {
    fn contains(&self, v: Vertex) -> bool {
        child_contains_given(
            self.inst,
            self.parent,
            self.parent_class,
            self.index,
            v,
            &self.meter,
        )
        .expect("ChildOracle refers to a non-existent child")
    }
}

/// Materializes the node's vertex set (writing to the output tape is free, but reading
/// it back is not — callers that keep the result resident should wrap it in a
/// [`MaterializedOracle`] so it is charged).
pub fn materialize_s(inst: &DualInstance, s: &dyn SAlphaOracle) -> VertexSet {
    let n = inst.num_vertices();
    let mut out = VertexSet::empty(n);
    for i in 0..n {
        let v = Vertex::from(i);
        if s.contains(v) {
            out.insert(v);
        }
    }
    out
}

/// Materializes the witness `t(α)` of a `fail` leaf from its classification rule.
pub fn materialize_witness(
    inst: &DualInstance,
    s: &dyn SAlphaOracle,
    rule: FailRule,
    meter: &SpaceMeter,
) -> VertexSet {
    let n = inst.num_vertices();
    let mut out = VertexSet::empty(n);
    for i in 0..n {
        let v = Vertex::from(i);
        let member = match rule {
            FailRule::EmptyHs => s.contains(v),
            FailRule::SingletonHs { removed, .. } => s.contains(v) && v != removed,
            FailRule::FrequentSet => i_alpha_contains(inst, s, v, meter),
        };
        if member {
            out.insert(v);
        }
    }
    out
}

/// Materializes the `index`-th child's vertex set, or `None` if it does not exist.
pub fn materialize_child(
    inst: &DualInstance,
    s: &dyn SAlphaOracle,
    index: u64,
    meter: &SpaceMeter,
) -> Option<VertexSet> {
    let n = inst.num_vertices();
    let mut out = VertexSet::empty(n);
    for i in 0..n {
        let v = Vertex::from(i);
        match child_contains(inst, s, index, v, meter) {
            Some(true) => {
                out.insert(v);
            }
            Some(false) => {}
            None => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::{expand, Expansion};
    use qld_hypergraph::{generators, Hypergraph};

    fn oriented(g: Hypergraph, h: Hypergraph) -> DualInstance {
        DualInstance::new(g, h).unwrap().oriented().0
    }

    /// The oracle-level classification must agree with the materialized `expand`.
    fn check_node_consistency(inst: &DualInstance, s: &VertexSet) {
        let meter = SpaceMeter::new();
        let oracle = MaterializedOracle::new(s.clone(), &meter);
        let class = classify(inst, &oracle, &meter);
        let exp = expand(inst, s);
        match (&class, &exp) {
            (NodeClass::Done, Expansion::Done) => {}
            (
                NodeClass::Fail(rule),
                Expansion::Fail {
                    witness,
                    rule: erule,
                },
            ) => {
                assert_eq!(rule, erule);
                let w = materialize_witness(inst, &oracle, *rule, &meter);
                assert_eq!(&w, witness);
            }
            (
                NodeClass::Branch(case),
                Expansion::Branch {
                    case: ecase,
                    children,
                },
            ) => {
                assert_eq!(case, ecase);
                assert_eq!(
                    child_count(inst, &oracle, &meter) as usize,
                    children.len(),
                    "child count mismatch at S={s:?}"
                );
                for (k, child) in children.iter().enumerate() {
                    let got = materialize_child(inst, &oracle, k as u64 + 1, &meter)
                        .expect("child exists");
                    assert_eq!(&got, child, "child #{k} mismatch at S={s:?}");
                }
                // index past the end does not exist
                assert!(
                    materialize_child(inst, &oracle, children.len() as u64 + 1, &meter).is_none()
                );
            }
            _ => panic!("classification mismatch at S={s:?}: {class:?} vs {exp:?}"),
        }
    }

    #[test]
    fn oracle_matches_expand_on_matching_instances() {
        for k in 1..=3 {
            let li = generators::matching_instance(k);
            let inst = oriented(li.g, li.h);
            let n = inst.num_vertices();
            // check every subset of the universe (small n)
            for mask in 0u32..(1 << n) {
                let s = VertexSet::from_indices(n, (0..n).filter(|i| mask & (1 << i) != 0));
                check_node_consistency(&inst, &s);
            }
        }
    }

    #[test]
    fn oracle_matches_expand_on_other_families() {
        let cases = [
            generators::threshold_instance(5, 3),
            generators::graph_cover_instance("C5", generators::cycle_graph(5)),
            generators::self_dual_instance(1),
        ];
        for li in cases {
            let inst = oriented(li.g, li.h);
            let n = inst.num_vertices();
            for mask in 0u32..(1 << n) {
                let s = VertexSet::from_indices(n, (0..n).filter(|i| mask & (1 << i) != 0));
                check_node_consistency(&inst, &s);
            }
        }
    }

    #[test]
    fn root_oracle_is_full_set() {
        let li = generators::matching_instance(2);
        let inst = oriented(li.g, li.h);
        let root = RootOracle::new(&inst);
        assert!(root.contains(Vertex::new(0)));
        assert!(root.contains(Vertex::new(3)));
        assert!(!root.contains(Vertex::new(4)));
        assert_eq!(materialize_s(&inst, &root), VertexSet::full(4));
    }

    #[test]
    fn child_oracle_chains_match_explicit_children() {
        let li = generators::matching_instance(3);
        let inst = oriented(li.g, li.h);
        let meter = SpaceMeter::new();
        let root = RootOracle::new(&inst);
        let s_root = VertexSet::full(inst.num_vertices());
        if let Expansion::Branch { children, .. } = expand(&inst, &s_root) {
            for (k, expected_child) in children.iter().enumerate().take(4) {
                let child = ChildOracle::new(&inst, &root, k as u64 + 1, &meter);
                let got = materialize_s(&inst, &child);
                assert_eq!(&got, expected_child);
                // one level deeper: compare grandchildren through the chained oracle
                if let Expansion::Branch {
                    children: grand, ..
                } = expand(&inst, expected_child)
                {
                    for (k2, expected_grand) in grand.iter().enumerate().take(2) {
                        let grand_oracle = ChildOracle::new(&inst, &child, k2 as u64 + 1, &meter);
                        assert_eq!(&materialize_s(&inst, &grand_oracle), expected_grand);
                    }
                }
            }
        } else {
            panic!("root of matching(3) should branch");
        }
    }

    #[test]
    fn meter_is_released_after_queries() {
        let li = generators::matching_instance(2);
        let inst = oriented(li.g, li.h);
        let meter = SpaceMeter::new();
        let root = RootOracle::new(&inst);
        let _ = classify(&inst, &root, &meter);
        let _ = child_count(&inst, &root, &meter);
        assert_eq!(meter.current_bits(), 0);
        assert!(meter.peak_bits() > 0);
    }

    #[test]
    fn materialized_oracle_charges_universe_bits() {
        let li = generators::matching_instance(2);
        let inst = oriented(li.g, li.h);
        let meter = SpaceMeter::new();
        {
            let o = MaterializedOracle::new(VertexSet::full(4), &meter);
            assert_eq!(meter.current_bits(), 4);
            assert!(o.contains(Vertex::new(1)));
            assert_eq!(o.set().len(), 4);
        }
        assert_eq!(meter.current_bits(), 0);
        let _ = inst;
    }

    #[test]
    fn i_alpha_queries_match_materialized_view() {
        let li = generators::threshold_instance(5, 2);
        let inst = oriented(li.g, li.h);
        let meter = SpaceMeter::new();
        let n = inst.num_vertices();
        for mask in 0u32..(1 << n) {
            let s = VertexSet::from_indices(n, (0..n).filter(|i| mask & (1 << i) != 0));
            let oracle = MaterializedOracle::new(s.clone(), &meter);
            let hs = inst.h().restrict_subedges(&s);
            let expected = hs.frequent_vertices(hs.num_edges() / 2);
            for i in 0..n {
                let v = Vertex::from(i);
                assert_eq!(
                    i_alpha_contains(&inst, &oracle, v, &meter),
                    expected.contains(v),
                    "I_α membership of {v} at S={s:?}"
                );
            }
            assert_eq!(
                count_h_inside(&inst, &oracle, &meter) as usize,
                hs.num_edges()
            );
        }
    }
}
