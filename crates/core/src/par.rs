//! Intra-query parallelism plumbing.
//!
//! The decomposition's top-level branches are independent subtrees and FK-A's
//! self-duality split yields two independent subproblems, so a large query can
//! fan its work out instead of occupying one thread end-to-end.  This module
//! defines the *interface* the solvers program against; the serving engine
//! plugs its shared worker pool in behind it (work-stealing subtasks injected
//! back into the persistent pool — no new threads per query), while library
//! users and tests get [`InlinePool`], which runs every subtask immediately on
//! the calling thread.
//!
//! Contract highlights:
//!
//! * **Scoped**: [`SubtaskScope::join`] returns only after every spawned
//!   subtask has either run to completion or been skipped; no subtask outlives
//!   the scope.
//! * **Cancellation at steal boundaries**: a pool whose query was cancelled may
//!   *skip* queued subtasks wholesale (they are never started); a subtask that
//!   already started runs to completion.  [`ParallelContext::run`] surfaces a
//!   skipped subtask as `None` so callers can abort with
//!   [`crate::DualError::Interrupted`].
//! * **Determinism is the caller's job**: subtasks finish in arbitrary order;
//!   callers must merge results by spawn index (as [`ParallelContext::run`]
//!   does) and derive any early-exit decisions from index order alone.

use std::fmt;
use std::sync::mpsc;
use std::sync::Arc;

/// One bounded batch of subtasks.  Dropping a scope without calling
/// [`SubtaskScope::join`] is a bug in the pool's caller; implementations may
/// panic or block on drop.
pub trait SubtaskScope {
    /// Queues a subtask.  It may run on any pool thread, or inline on the
    /// spawning thread during [`SubtaskScope::join`].
    fn spawn(&mut self, task: Box<dyn FnOnce() + Send + 'static>);

    /// Blocks until every subtask spawned on this scope has completed or been
    /// skipped by cancellation.
    fn join(&mut self);
}

/// A provider of subtask scopes, shared by every level of a query.
pub trait SubtaskPool: Send + Sync {
    /// Opens a new scope for one batch of subtasks.
    fn scope(&self) -> Box<dyn SubtaskScope + '_>;

    /// Whether the owning query has been cancelled.  Pools observe this at
    /// steal boundaries: queued-but-unstarted subtasks are skipped.
    fn is_cancelled(&self) -> bool;
}

/// The degenerate pool: subtasks run immediately on the calling thread, in
/// spawn order, and cancellation never fires.  Semantically identical to not
/// parallelizing at all — used by library callers, tests, and as the reference
/// in determinism checks.
#[derive(Debug, Default, Clone, Copy)]
pub struct InlinePool;

struct InlineScope;

impl SubtaskScope for InlineScope {
    fn spawn(&mut self, task: Box<dyn FnOnce() + Send + 'static>) {
        task();
    }

    fn join(&mut self) {}
}

impl SubtaskPool for InlinePool {
    fn scope(&self) -> Box<dyn SubtaskScope + '_> {
        Box::new(InlineScope)
    }

    fn is_cancelled(&self) -> bool {
        false
    }
}

/// A solver's handle on intra-query parallelism: a pool plus the split
/// threshold in *work units* (`|V| · (|G| + |H|)` for duality instances).
/// Instances below the threshold stay sequential — the split has real
/// coordination cost and tiny queries lose more than they gain.
#[derive(Clone)]
pub struct ParallelContext {
    pool: Arc<dyn SubtaskPool>,
    threshold: usize,
}

impl fmt::Debug for ParallelContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParallelContext")
            .field("threshold", &self.threshold)
            .finish_non_exhaustive()
    }
}

impl ParallelContext {
    /// Wraps a pool with a split threshold.
    pub fn new(pool: Arc<dyn SubtaskPool>, threshold: usize) -> Self {
        ParallelContext { pool, threshold }
    }

    /// A context that runs subtasks inline (for tests and library callers).
    pub fn inline(threshold: usize) -> Self {
        ParallelContext::new(Arc::new(InlinePool), threshold)
    }

    /// Whether an instance of the given work size should be split.
    pub fn should_split(&self, work_units: usize) -> bool {
        work_units >= self.threshold
    }

    /// The configured split threshold in work units.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Whether the owning query has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.pool.is_cancelled()
    }

    /// Runs a batch of subtasks to completion and collects their results in
    /// spawn order.  `None` in a slot means the pool skipped that subtask
    /// because the query was cancelled; callers should treat any `None` as
    /// "no answer" and abort.
    pub fn run<T: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<Option<T>> {
        let count = tasks.len();
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        {
            let mut scope = self.pool.scope();
            for (i, task) in tasks.into_iter().enumerate() {
                let tx = tx.clone();
                scope.spawn(Box::new(move || {
                    let _ = tx.send((i, task()));
                }));
            }
            scope.join();
        }
        drop(tx);
        let mut out: Vec<Option<T>> = (0..count).map(|_| None).collect();
        while let Ok((i, value)) = rx.try_recv() {
            out[i] = Some(value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_pool_runs_everything_in_order() {
        let ctx = ParallelContext::inline(0);
        let results = ctx.run::<usize>((0..5usize).map(|i| Box::new(move || i * i) as _).collect());
        assert_eq!(results, vec![Some(0), Some(1), Some(4), Some(9), Some(16)]);
        assert!(!ctx.is_cancelled());
    }

    #[test]
    fn threshold_gates_splitting() {
        let ctx = ParallelContext::inline(100);
        assert!(!ctx.should_split(99));
        assert!(ctx.should_split(100));
        assert_eq!(ctx.threshold(), 100);
        assert!(format!("{ctx:?}").contains("threshold"));
    }

    #[test]
    fn skipping_pool_yields_none_slots() {
        /// A pool that runs even-numbered spawns and skips odd ones, as a
        /// cancelled engine pool would skip queued subtasks.
        struct SkipOdd;
        struct SkipOddScope {
            n: usize,
        }
        impl SubtaskScope for SkipOddScope {
            fn spawn(&mut self, task: Box<dyn FnOnce() + Send + 'static>) {
                if self.n.is_multiple_of(2) {
                    task();
                }
                self.n += 1;
            }
            fn join(&mut self) {}
        }
        impl SubtaskPool for SkipOdd {
            fn scope(&self) -> Box<dyn SubtaskScope + '_> {
                Box::new(SkipOddScope { n: 0 })
            }
            fn is_cancelled(&self) -> bool {
                true
            }
        }
        let ctx = ParallelContext::new(Arc::new(SkipOdd), 0);
        let results = ctx.run::<usize>((0..4usize).map(|i| Box::new(move || i) as _).collect());
        assert_eq!(results, vec![Some(0), None, Some(2), None]);
        assert!(ctx.is_cancelled());
    }
}
