//! Path descriptors (Section 4 of the paper).
//!
//! A path descriptor for a `DUAL` instance `I = (G, H)` is a sequence of at most
//! `⌊log |H|⌋` positive integers, each bounded by `|V|·|G|`; it names a candidate
//! root-to-node path of the decomposition tree `T(G, H)` by child indices.  A
//! descriptor occupies `O(log² n)` bits — this is both the working state of the
//! space-efficient algorithms of Section 4 and the certificate guessed in Section 5.

use alloc::vec;
use alloc::vec::Vec;
use core::fmt;
use serde::{Deserialize, Serialize};

/// A sequence of 1-based child indices describing a root-to-node path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct PathDescriptor(Vec<u64>);

impl PathDescriptor {
    /// The empty descriptor `()`, naming the root.
    pub fn root() -> Self {
        PathDescriptor(Vec::new())
    }

    /// Builds a descriptor from explicit child indices (1-based).
    pub fn from_indices(indices: impl IntoIterator<Item = u64>) -> Self {
        PathDescriptor(indices.into_iter().collect())
    }

    /// The child indices, outermost first.
    pub fn indices(&self) -> &[u64] {
        &self.0
    }

    /// The length `ℓ(π)` of the descriptor.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the root descriptor.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// `head(π)`: the first child index, if any.
    pub fn head(&self) -> Option<u64> {
        self.0.first().copied()
    }

    /// `tail(π)`: the descriptor with the first index removed.
    pub fn tail(&self) -> PathDescriptor {
        PathDescriptor(self.0.iter().skip(1).copied().collect())
    }

    /// The descriptor extended by one more child index (the label of the `i`-th child).
    pub fn child(&self, i: u64) -> PathDescriptor {
        let mut v = self.0.clone();
        v.push(i);
        PathDescriptor(v)
    }

    /// Whether `other` is a child descriptor of `self` (the "consecutive" relation of
    /// Section 4: `(i₁,…,iᵣ)` and `(i₁,…,iᵣ,iᵣ₊₁)`).
    pub fn is_parent_of(&self, other: &PathDescriptor) -> bool {
        other.len() == self.len() + 1 && other.0[..self.len()] == self.0[..]
    }

    /// The number of bits needed to write the descriptor down: `len` indices, each of
    /// `⌈log₂(max_branching+1)⌉` bits, plus the same width again for a length field.
    ///
    /// This is the quantity compared against `c·log² n` in experiments E3/E6.
    pub fn bits(&self, max_branching: u64) -> u64 {
        let per_entry = qld_logspace::bits_for(max_branching.max(1));
        (self.len() as u64 + 1) * per_entry
    }
}

impl fmt::Display for PathDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (k, i) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, ")")
    }
}

/// The maximal descriptor length for an instance whose decomposed hypergraph has
/// `h_edges` edges: `⌊log₂ |H|⌋` (Proposition 2.1(2)), and `0` when `|H| ≤ 1`.
pub fn max_descriptor_length(h_edges: usize) -> usize {
    if h_edges <= 1 {
        0
    } else {
        (usize::BITS - 1 - h_edges.leading_zeros()) as usize
    }
}

/// The maximal child index for an instance over `num_vertices` vertices whose other
/// hypergraph has `g_edges` edges: `|V|·|G|` (Proposition 2.1(3)).
pub fn max_branching(num_vertices: usize, g_edges: usize) -> u64 {
    (num_vertices as u64) * (g_edges as u64)
}

/// The number of path descriptors of length at most `max_len` with entries in
/// `1..=max_branch` — the size of the space the literal `decompose` algorithm iterates
/// over (geometric series `Σ_{ℓ=0}^{L} B^ℓ`).
pub fn descriptor_space_size(max_len: usize, max_branch: u64) -> u128 {
    let b = max_branch as u128;
    let mut total: u128 = 0;
    let mut pow: u128 = 1;
    for _ in 0..=max_len {
        total = total.saturating_add(pow);
        pow = pow.saturating_mul(b);
    }
    total
}

/// Iterates over **all** path descriptors of length at most `max_len` with entries in
/// `1..=max_branch`, in order of increasing length and then lexicographically — the
/// iteration order of the paper's `decompose` algorithm.
pub fn enumerate_descriptors(
    max_len: usize,
    max_branch: u64,
) -> impl Iterator<Item = PathDescriptor> {
    (0..=max_len).flat_map(move |len| LengthEnumerator::new(len, max_branch))
}

struct LengthEnumerator {
    current: Option<Vec<u64>>,
    max_branch: u64,
}

impl LengthEnumerator {
    fn new(len: usize, max_branch: u64) -> Self {
        let current = if max_branch == 0 && len > 0 {
            None
        } else {
            Some(vec![1; len])
        };
        LengthEnumerator {
            current,
            max_branch,
        }
    }
}

impl Iterator for LengthEnumerator {
    type Item = PathDescriptor;
    fn next(&mut self) -> Option<PathDescriptor> {
        let cur = self.current.clone()?;
        // advance (odometer over 1..=max_branch)
        let mut next = cur.clone();
        let mut pos = next.len();
        loop {
            if pos == 0 {
                self.current = None;
                break;
            }
            pos -= 1;
            if next[pos] < self.max_branch {
                next[pos] += 1;
                for x in next.iter_mut().skip(pos + 1) {
                    *x = 1;
                }
                self.current = Some(next);
                break;
            }
        }
        Some(PathDescriptor(cur))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_head_tail_child() {
        let root = PathDescriptor::root();
        assert!(root.is_empty());
        assert_eq!(root.len(), 0);
        assert_eq!(root.head(), None);
        let p = root.child(3).child(1);
        assert_eq!(p.indices(), &[3, 1]);
        assert_eq!(p.head(), Some(3));
        assert_eq!(p.tail().indices(), &[1]);
        assert_eq!(p.to_string(), "(3,1)");
        assert_eq!(root.to_string(), "()");
    }

    #[test]
    fn consecutive_relation() {
        let p = PathDescriptor::from_indices([2, 5]);
        let q = p.child(7);
        assert!(p.is_parent_of(&q));
        assert!(!q.is_parent_of(&p));
        assert!(!p.is_parent_of(&p));
        let r = PathDescriptor::from_indices([2, 6, 7]);
        assert!(!p.is_parent_of(&r));
    }

    #[test]
    fn max_length_is_floor_log2() {
        assert_eq!(max_descriptor_length(0), 0);
        assert_eq!(max_descriptor_length(1), 0);
        assert_eq!(max_descriptor_length(2), 1);
        assert_eq!(max_descriptor_length(3), 1);
        assert_eq!(max_descriptor_length(4), 2);
        assert_eq!(max_descriptor_length(7), 2);
        assert_eq!(max_descriptor_length(8), 3);
        assert_eq!(max_descriptor_length(1024), 10);
    }

    #[test]
    fn branching_bound() {
        assert_eq!(max_branching(6, 8), 48);
        assert_eq!(max_branching(0, 8), 0);
    }

    #[test]
    fn bit_size_is_quadratic_in_logs() {
        let p = PathDescriptor::from_indices([1, 2, 3]);
        // 3 entries + length field, each ⌈log2(48+1)⌉ = 6 bits
        assert_eq!(p.bits(48), 4 * 6);
        assert_eq!(PathDescriptor::root().bits(48), 6);
    }

    #[test]
    fn descriptor_space_counts() {
        // lengths 0..=2 over branch 3: 1 + 3 + 9 = 13
        assert_eq!(descriptor_space_size(2, 3), 13);
        assert_eq!(descriptor_space_size(0, 100), 1);
        assert_eq!(descriptor_space_size(3, 1), 4);
    }

    #[test]
    fn enumeration_is_exhaustive_and_ordered() {
        let all: Vec<PathDescriptor> = enumerate_descriptors(2, 3).collect();
        assert_eq!(all.len(), 13);
        // starts with the root
        assert_eq!(all[0], PathDescriptor::root());
        // length-1 descriptors next
        assert_eq!(all[1], PathDescriptor::from_indices([1]));
        assert_eq!(all[3], PathDescriptor::from_indices([3]));
        // all distinct
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 13);
        // entries within range
        for p in &all {
            assert!(p.indices().iter().all(|&i| (1..=3).contains(&i)));
            assert!(p.len() <= 2);
        }
    }

    #[test]
    fn enumeration_with_zero_branching() {
        let all: Vec<PathDescriptor> = enumerate_descriptors(2, 0).collect();
        assert_eq!(all, vec![PathDescriptor::root()]);
    }

    #[test]
    fn descriptor_is_serializable() {
        fn assert_serializable<T: serde::Serialize + for<'a> serde::Deserialize<'a>>() {}
        assert_serializable::<PathDescriptor>();
    }
}
