//! `pathnode(I, π)` — Lemma 4.2.
//!
//! Given a `DUAL` instance and a path descriptor, [`pathnode`] returns the attributes of
//! the decomposition-tree node the descriptor leads to, or [`PathnodeOutcome::WrongPath`]
//! if the descriptor does not correspond to a node of `T(G, H)`.  Two space strategies
//! are provided:
//!
//! * [`SpaceStrategy::Recompute`] — the faithful Lemma 3.1 / Lemma 4.2 construction: the
//!   walk keeps one [`crate::oracle::ChildOracle`] per level and never materializes any
//!   intermediate `S` set, so the metered work space is `O(log² n)` (one
//!   `O(log n)`-bit frame per level, at most `⌊log|H|⌋` levels); the price is
//!   quasi-polynomial recomputation time.
//! * [`SpaceStrategy::MaterializeChain`] — the practical variant: each level's `S` set is
//!   materialized (charging `|V|` bits per level) so queries at the next level are
//!   constant-time; the metered space is `O(|V|·log|H|)` — still exponentially smaller
//!   than the explicit tree, which is what makes the algorithm usable as a solver.

use crate::instance::DualInstance;
use crate::node::{Mark, NodeAttr};
use crate::oracle::{
    child_count_given, classify, materialize_child, materialize_s, materialize_witness,
    ChildOracle, MaterializedOracle, NodeClass, RootOracle, SAlphaOracle,
};
use crate::path::PathDescriptor;
use alloc::vec;
use alloc::vec::Vec;
use qld_logspace::SpaceMeter;

/// How `pathnode` (and the solver built on it) trades space for time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpaceStrategy {
    /// Recompute every membership query through the oracle chain (quadratic-logspace
    /// working set, quasi-polynomial time) — the construction of the paper.
    Recompute,
    /// Materialize one `S` set per level of the current path (linear-times-logarithmic
    /// working set, polynomial time per node).
    #[default]
    MaterializeChain,
}

/// The outcome of `pathnode`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathnodeOutcome {
    /// The descriptor names a node; its attributes follow.
    Node(NodeAttr),
    /// The descriptor does not correspond to a node of `T(G, H)`.
    WrongPath,
}

impl PathnodeOutcome {
    /// The node attributes, if the descriptor was valid.
    pub fn node(&self) -> Option<&NodeAttr> {
        match self {
            PathnodeOutcome::Node(attr) => Some(attr),
            PathnodeOutcome::WrongPath => None,
        }
    }
}

/// Computes the attributes of the node named by `path`, or detects that the path
/// descriptor is invalid.  Work-tape usage is charged to `meter` according to the
/// chosen [`SpaceStrategy`].
pub fn pathnode(
    inst: &DualInstance,
    path: &PathDescriptor,
    strategy: SpaceStrategy,
    meter: &SpaceMeter,
) -> PathnodeOutcome {
    match strategy {
        SpaceStrategy::Recompute => {
            let root = RootOracle::new(inst);
            walk_recompute(inst, &root, path, path.indices(), meter)
        }
        SpaceStrategy::MaterializeChain => walk_materialized(inst, path, meter),
    }
}

/// Recursive walk for the recompute strategy: each level stacks one `ChildOracle`
/// borrowing the previous level.
fn walk_recompute(
    inst: &DualInstance,
    s: &dyn SAlphaOracle,
    full_path: &PathDescriptor,
    remaining: &[u64],
    meter: &SpaceMeter,
) -> PathnodeOutcome {
    match remaining.split_first() {
        None => PathnodeOutcome::Node(attributes_at(inst, s, full_path, meter)),
        Some((&index, rest)) => {
            // The child exists iff the node branches and has at least `index` children.
            let class = classify(inst, s, meter);
            if index == 0 || child_count_given(inst, s, class, meter) < index {
                return PathnodeOutcome::WrongPath;
            }
            let child = ChildOracle::with_class(inst, s, class, index, meter);
            walk_recompute(inst, &child, full_path, rest, meter)
        }
    }
}

/// Iterative walk for the materializing strategy: keep the chain of materialized `S`
/// sets of the current path alive (so that the parent levels can still be queried if
/// needed), but never anything else.
fn walk_materialized(
    inst: &DualInstance,
    path: &PathDescriptor,
    meter: &SpaceMeter,
) -> PathnodeOutcome {
    let mut chain: Vec<MaterializedOracle> = vec![MaterializedOracle::new(
        qld_hypergraph::VertexSet::full(inst.num_vertices()),
        meter,
    )];
    for &index in path.indices() {
        let current = chain.last().expect("chain is never empty");
        if index == 0 {
            return PathnodeOutcome::WrongPath;
        }
        match materialize_child(inst, current, index, meter) {
            Some(child) => chain.push(MaterializedOracle::new(child, meter)),
            None => return PathnodeOutcome::WrongPath,
        }
    }
    let top = chain.last().expect("chain is never empty");
    PathnodeOutcome::Node(attributes_at(inst, top, path, meter))
}

/// Materializes the full attribute tuple of the node whose set is behind `s` (writing
/// the output is free in the space model).
fn attributes_at(
    inst: &DualInstance,
    s: &dyn SAlphaOracle,
    label: &PathDescriptor,
    meter: &SpaceMeter,
) -> NodeAttr {
    let class = classify(inst, s, meter);
    let witness = match class {
        NodeClass::Fail(rule) => Some(materialize_witness(inst, s, rule, meter)),
        _ => None,
    };
    NodeAttr {
        label: label.clone(),
        s: materialize_s(inst, s),
        mark: match class {
            NodeClass::Done => Mark::Done,
            NodeClass::Fail(_) => Mark::Fail,
            NodeClass::Branch(_) => Mark::Nil,
        },
        witness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{build_tree, BuildOptions};
    use qld_hypergraph::generators;

    fn oriented(li: generators::LabelledInstance) -> DualInstance {
        DualInstance::new(li.g, li.h).unwrap().oriented().0
    }

    #[test]
    fn pathnode_agrees_with_explicit_tree_on_all_labels() {
        // The recompute strategy is quasi-polynomial in time, so it is cross-checked on
        // the smaller instances only; the materializing strategy is checked everywhere.
        let cases = [
            (generators::matching_instance(2), true),
            (generators::matching_instance(3), true),
            (generators::threshold_instance(5, 3), false),
            (generators::self_dual_instance(1), true),
        ];
        for (li, check_recompute) in cases {
            let name = li.name.clone();
            let inst = oriented(li);
            let tree = build_tree(&inst, &BuildOptions::default()).unwrap();
            for node in tree.nodes() {
                let mut strategies = vec![SpaceStrategy::MaterializeChain];
                if check_recompute {
                    strategies.push(SpaceStrategy::Recompute);
                }
                for strategy in strategies {
                    let meter = SpaceMeter::new();
                    let out = pathnode(&inst, &node.attr.label, strategy, &meter);
                    let got = out.node().unwrap_or_else(|| {
                        panic!("{name}: {strategy:?} lost node {}", node.attr.label)
                    });
                    assert_eq!(got, &node.attr, "{name}: node {} mismatch", node.attr.label);
                    assert_eq!(meter.current_bits(), 0, "workspace not released");
                }
            }
        }
    }

    #[test]
    fn invalid_descriptors_are_rejected() {
        let inst = oriented(generators::matching_instance(3));
        let meter = SpaceMeter::new();
        // absurdly large child index at the root
        let p = PathDescriptor::from_indices([10_000]);
        assert_eq!(
            pathnode(&inst, &p, SpaceStrategy::MaterializeChain, &meter),
            PathnodeOutcome::WrongPath
        );
        assert_eq!(
            pathnode(&inst, &p, SpaceStrategy::Recompute, &meter),
            PathnodeOutcome::WrongPath
        );
        // descending into a leaf is also a wrong path
        let tree = build_tree(&inst, &BuildOptions::default()).unwrap();
        let leaf = tree
            .nodes()
            .iter()
            .find(|n| n.attr.is_leaf())
            .expect("tree has leaves");
        let p = leaf.attr.label.child(1);
        assert_eq!(
            pathnode(&inst, &p, SpaceStrategy::MaterializeChain, &meter),
            PathnodeOutcome::WrongPath
        );
        // child index 0 is never valid (indices are 1-based)
        let p = PathDescriptor::from_indices([0]);
        assert_eq!(
            pathnode(&inst, &p, SpaceStrategy::Recompute, &meter),
            PathnodeOutcome::WrongPath
        );
        assert_eq!(
            pathnode(&inst, &p, SpaceStrategy::MaterializeChain, &meter),
            PathnodeOutcome::WrongPath
        );
        assert!(PathnodeOutcome::WrongPath.node().is_none());
    }

    #[test]
    fn space_strategies_agree_and_materialize_pays_per_level() {
        let inst = oriented(generators::matching_instance(3));
        let tree = build_tree(&inst, &BuildOptions::default()).unwrap();
        // take the deepest node
        let node = tree
            .nodes()
            .iter()
            .max_by_key(|n| n.attr.label.len())
            .unwrap();
        let m_rec = SpaceMeter::new();
        let m_mat = SpaceMeter::new();
        let a = pathnode(&inst, &node.attr.label, SpaceStrategy::Recompute, &m_rec);
        let b = pathnode(
            &inst,
            &node.attr.label,
            SpaceStrategy::MaterializeChain,
            &m_mat,
        );
        assert_eq!(a, b);
        assert!(m_rec.peak_bits() > 0);
        assert!(m_mat.peak_bits() > 0);
        // The materializing chain must pay at least |V| bits per level of the path plus
        // the root level; the recompute strategy pays only register frames.
        assert!(m_mat.peak_bits() >= (inst.num_vertices() * (node.attr.label.len() + 1)) as u64);
    }

    #[test]
    fn root_descriptor_returns_root_attributes() {
        let inst = oriented(generators::matching_instance(2));
        let meter = SpaceMeter::new();
        let out = pathnode(
            &inst,
            &PathDescriptor::root(),
            SpaceStrategy::MaterializeChain,
            &meter,
        );
        let attr = out.node().unwrap();
        assert_eq!(attr.s.len(), inst.num_vertices());
        assert_eq!(attr.mark, Mark::Nil);
    }
}
