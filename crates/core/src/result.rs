//! Results of duality decisions and their certificates.

use core::fmt;
use qld_hypergraph::{Hypergraph, VertexSet};

/// A proof that a pair of simple hypergraphs `(G, H)` is **not** dual.
///
/// Every variant is independently checkable in polynomial time (and in logspace) by
/// [`verify_witness`]:
///
/// * if `(G, H)` were dual, every edge of `H` would be a transversal of `G`, so no edge
///   of `G` could be disjoint from an edge of `H` ([`NonDualWitness::DisjointEdges`]);
/// * if `(G, H)` were dual, every transversal of `G` would contain a minimal transversal
///   of `G`, i.e. an edge of `H` — so a transversal of `G` containing no edge of `H`
///   ([`NonDualWitness::NewTransversalOfG`], the paper's "new transversal of `G` with
///   respect to `H`") disproves duality, and symmetrically for
///   [`NonDualWitness::NewTransversalOfH`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NonDualWitness {
    /// Edge `g_index` of `G` and edge `h_index` of `H` do not intersect.
    DisjointEdges {
        /// Index of the edge of `G`.
        g_index: usize,
        /// Index of the edge of `H`.
        h_index: usize,
    },
    /// A transversal of `G` that contains no edge of `H`.
    NewTransversalOfG(VertexSet),
    /// A transversal of `H` that contains no edge of `G`.
    NewTransversalOfH(VertexSet),
}

impl NonDualWitness {
    /// If the witness is a new transversal (of either side), returns it.
    pub fn transversal(&self) -> Option<&VertexSet> {
        match self {
            NonDualWitness::NewTransversalOfG(t) | NonDualWitness::NewTransversalOfH(t) => Some(t),
            NonDualWitness::DisjointEdges { .. } => None,
        }
    }

    /// Swaps the roles of `G` and `H` in the witness (used when a solver internally
    /// normalizes the instance so that `|H| ≤ |G|`).
    pub fn swap_sides(self) -> NonDualWitness {
        match self {
            NonDualWitness::DisjointEdges { g_index, h_index } => NonDualWitness::DisjointEdges {
                g_index: h_index,
                h_index: g_index,
            },
            NonDualWitness::NewTransversalOfG(t) => NonDualWitness::NewTransversalOfH(t),
            NonDualWitness::NewTransversalOfH(t) => NonDualWitness::NewTransversalOfG(t),
        }
    }
}

impl fmt::Display for NonDualWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NonDualWitness::DisjointEdges { g_index, h_index } => {
                write!(
                    f,
                    "edge #{g_index} of G is disjoint from edge #{h_index} of H"
                )
            }
            NonDualWitness::NewTransversalOfG(t) => {
                write!(f, "new transversal of G w.r.t. H: {t}")
            }
            NonDualWitness::NewTransversalOfH(t) => {
                write!(f, "new transversal of H w.r.t. G: {t}")
            }
        }
    }
}

/// The outcome of a duality decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DualityResult {
    /// The two hypergraphs are dual (`H = tr(G)` and `G = tr(H)`).
    Dual,
    /// The two hypergraphs are not dual; the witness proves it.
    NotDual(NonDualWitness),
}

impl DualityResult {
    /// Whether the result is [`DualityResult::Dual`].
    pub fn is_dual(&self) -> bool {
        matches!(self, DualityResult::Dual)
    }

    /// The witness, if the result is negative.
    pub fn witness(&self) -> Option<&NonDualWitness> {
        match self {
            DualityResult::Dual => None,
            DualityResult::NotDual(w) => Some(w),
        }
    }
}

/// Checks that a [`NonDualWitness`] really disproves duality of `(g, h)`.
pub fn verify_witness(g: &Hypergraph, h: &Hypergraph, witness: &NonDualWitness) -> bool {
    match witness {
        NonDualWitness::DisjointEdges { g_index, h_index } => {
            *g_index < g.num_edges()
                && *h_index < h.num_edges()
                && g.edge(*g_index).is_disjoint(h.edge(*h_index))
        }
        NonDualWitness::NewTransversalOfG(t) => g.is_new_transversal(h, t),
        NonDualWitness::NewTransversalOfH(t) => h.is_new_transversal(g, t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_hypergraph::vset;

    fn pair() -> (Hypergraph, Hypergraph) {
        // G = {{0,1},{2,3}}, tr(G) = all one-from-each-pair selections.
        let g = Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3]]);
        let h = Hypergraph::from_index_edges(4, &[&[0, 2], &[0, 3], &[1, 2], &[1, 3]]);
        (g, h)
    }

    #[test]
    fn disjoint_edge_witness_verification() {
        let (g, h) = pair();
        // {0,1} and {2,3} of a *wrong* H: pretend H had edge {2,3}
        let bad_h = Hypergraph::from_index_edges(4, &[&[2, 3]]);
        let w = NonDualWitness::DisjointEdges {
            g_index: 0,
            h_index: 0,
        };
        assert!(verify_witness(&g, &bad_h, &w));
        // but against the true dual the same indices intersect
        assert!(!verify_witness(&g, &h, &w));
        // out-of-range indices never verify
        let oob = NonDualWitness::DisjointEdges {
            g_index: 9,
            h_index: 0,
        };
        assert!(!verify_witness(&g, &h, &oob));
    }

    #[test]
    fn new_transversal_witness_verification() {
        let (g, h) = pair();
        // Remove one edge from h: {1,3}. Then {1,3} itself is a new transversal of g.
        let mut partial = h.clone();
        partial.remove_edge(3);
        let w = NonDualWitness::NewTransversalOfG(vset![4; 1, 3]);
        assert!(verify_witness(&g, &partial, &w));
        // Against the complete dual it is not new (it *is* an edge of h).
        assert!(!verify_witness(&g, &h, &w));
        // A non-transversal never verifies.
        let bad = NonDualWitness::NewTransversalOfG(vset![4; 0]);
        assert!(!verify_witness(&g, &partial, &bad));
    }

    #[test]
    fn swap_sides_round_trip() {
        let w = NonDualWitness::NewTransversalOfG(vset![3; 1]);
        let swapped = w.clone().swap_sides();
        assert_eq!(swapped, NonDualWitness::NewTransversalOfH(vset![3; 1]));
        assert_eq!(swapped.swap_sides(), w);
        let d = NonDualWitness::DisjointEdges {
            g_index: 1,
            h_index: 2,
        };
        assert_eq!(
            d.clone().swap_sides(),
            NonDualWitness::DisjointEdges {
                g_index: 2,
                h_index: 1
            }
        );
    }

    #[test]
    fn result_accessors() {
        assert!(DualityResult::Dual.is_dual());
        assert!(DualityResult::Dual.witness().is_none());
        let w = NonDualWitness::NewTransversalOfG(vset![2; 0]);
        let r = DualityResult::NotDual(w.clone());
        assert!(!r.is_dual());
        assert_eq!(r.witness(), Some(&w));
        assert!(w.transversal().is_some());
        assert!(NonDualWitness::DisjointEdges {
            g_index: 0,
            h_index: 0
        }
        .transversal()
        .is_none());
    }

    #[test]
    fn display_forms() {
        let w = NonDualWitness::DisjointEdges {
            g_index: 1,
            h_index: 2,
        };
        assert!(w.to_string().contains("#1"));
        let t = NonDualWitness::NewTransversalOfG(vset![3; 0, 2]);
        assert!(t.to_string().contains("{0,2}"));
        let u = NonDualWitness::NewTransversalOfH(vset![3; 1]);
        assert!(u.to_string().contains("H w.r.t. G"));
    }
}
