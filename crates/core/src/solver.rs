//! Duality solvers.
//!
//! [`DualitySolver`] is the common interface shared by the decomposition-based solvers
//! in this crate and the classical baselines in `qld-fk`.  All solvers follow the same
//! front end ([`preflight`]): validate the instance, resolve degenerate cases, check the
//! logspace-checkable preconditions `G ⊆ tr(H)`, `H ⊆ tr(G)` (returning a witness if
//! they fail), and orient the instance so that the decomposed side is the smaller one.
//!
//! * [`BorosMakinoTreeSolver`] materializes the decomposition tree (Section 2) — the
//!   reference implementation with polynomial working space per node.
//! * [`QuadLogspaceSolver`] is the paper's contribution (Sections 3–4): a depth-first
//!   traversal of the *virtual* tree through the oracle chain, holding only a path
//!   descriptor and `O(log n)`-bit frames (strategy `Recompute`) or one `S` set per
//!   level (strategy `MaterializeChain`); it also reports peak metered work space.

use crate::error::DualError;
use crate::instance::DualInstance;
use crate::oracle::{
    child_count, child_count_given, classify, materialize_child, materialize_witness, ChildOracle,
    MaterializedOracle, NodeClass, RootOracle, SAlphaOracle,
};
#[cfg(feature = "std")]
use crate::par::ParallelContext;
use crate::pathnode::SpaceStrategy;
use crate::result::{DualityResult, NonDualWitness};
use crate::stats::SpaceReport;
use crate::tree::{build_tree, BuildOptions};
use qld_hypergraph::{Hypergraph, VertexSet};
use qld_logspace::SpaceMeter;
#[cfg(feature = "std")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "std")]
use std::sync::Arc;

/// One pool subtask probing a root subtree: returns the witness found (if
/// any), the subtree's peak metered bits, and whether the body actually ran
/// (a cancelled scope skips queued bodies).
#[cfg(feature = "std")]
type SubtreeProbe = Box<dyn FnOnce() -> (Option<VertexSet>, u64, bool) + Send>;

/// A decision procedure for the `DUAL` problem.
pub trait DualitySolver {
    /// A short name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Decides whether `g` and `h` are dual; on a negative answer the result carries a
    /// checkable witness.
    fn decide(&self, g: &Hypergraph, h: &Hypergraph) -> Result<DualityResult, DualError>;

    /// Convenience wrapper returning only the Boolean answer.
    fn is_dual(&self, g: &Hypergraph, h: &Hypergraph) -> Result<bool, DualError> {
        Ok(self.decide(g, h)?.is_dual())
    }
}

/// The outcome of the shared instance front end.
pub enum Preflight {
    /// The answer is already known (degenerate instance or precondition violation).
    Decided(DualityResult),
    /// The instance is ready for the decomposition; `swapped` records whether the roles
    /// of `G` and `H` were exchanged to ensure `|H| ≤ |G|`.
    Ready {
        /// The oriented instance.
        oriented: DualInstance,
        /// Whether witnesses must be swapped back.
        swapped: bool,
    },
}

/// Validates, resolves degenerate cases, checks preconditions, and orients the
/// instance.
pub fn preflight(g: &Hypergraph, h: &Hypergraph) -> Result<Preflight, DualError> {
    let inst = DualInstance::new(g.clone(), h.clone())?;
    if let Some(answer) = inst.degenerate_answer() {
        return Ok(Preflight::Decided(answer));
    }
    if let Err(witness) = inst.check_preconditions() {
        return Ok(Preflight::Decided(DualityResult::NotDual(witness)));
    }
    let (oriented, swapped) = inst.oriented();
    Ok(Preflight::Ready { oriented, swapped })
}

fn map_back(witness: NonDualWitness, swapped: bool) -> NonDualWitness {
    if swapped {
        witness.swap_sides()
    } else {
        witness
    }
}

/// Reference solver: builds the explicit decomposition tree and inspects the leaf marks
/// (Proposition 2.1(1)).
#[derive(Debug, Clone, Default)]
pub struct BorosMakinoTreeSolver {
    /// Tree construction limits.
    pub options: BuildOptions,
}

impl BorosMakinoTreeSolver {
    /// Creates the solver with default limits.
    pub fn new() -> Self {
        BorosMakinoTreeSolver {
            options: BuildOptions {
                stop_at_first_fail: true,
                ..BuildOptions::default()
            },
        }
    }
}

impl DualitySolver for BorosMakinoTreeSolver {
    fn name(&self) -> &'static str {
        "bm-tree"
    }

    fn decide(&self, g: &Hypergraph, h: &Hypergraph) -> Result<DualityResult, DualError> {
        match preflight(g, h)? {
            Preflight::Decided(answer) => Ok(answer),
            Preflight::Ready { oriented, swapped } => {
                let mut options = self.options.clone();
                options.stop_at_first_fail = true;
                let tree = build_tree(&oriented, &options)?;
                match tree.first_fail_witness() {
                    Some(t) => Ok(DualityResult::NotDual(map_back(
                        NonDualWitness::NewTransversalOfG(t.clone()),
                        swapped,
                    ))),
                    None => Ok(DualityResult::Dual),
                }
            }
        }
    }
}

/// The paper's solver: a DFS over the virtual decomposition tree through the oracle
/// chain, with metered work space.
#[derive(Debug, Clone, Default)]
pub struct QuadLogspaceSolver {
    /// The space/time trade-off used for node attribute recomputation.
    pub strategy: SpaceStrategy,
    /// When set, `MaterializeChain` instances whose work size reaches the
    /// context's threshold split their top-level subtrees into pool subtasks.
    /// Parallelism needs `std` (thread pools, channels); without the feature
    /// the solver is the plain sequential traversal.
    #[cfg(feature = "std")]
    parallel: Option<ParallelContext>,
}

impl QuadLogspaceSolver {
    /// Creates a solver with the given strategy.
    pub fn new(strategy: SpaceStrategy) -> Self {
        QuadLogspaceSolver {
            strategy,
            #[cfg(feature = "std")]
            parallel: None,
        }
    }

    /// Enables intra-query parallelism: large `MaterializeChain` instances
    /// split the root's independent subtrees into subtasks on the context's
    /// pool.  Results — answer, witness choice, and reported peak space — are
    /// identical to the sequential traversal at any worker count; see
    /// `dfs_materialized_split` in this module.  The `Recompute` strategy ignores the
    /// context and stays faithful to the paper's sequential space narrative.
    #[cfg(feature = "std")]
    pub fn with_parallel(mut self, ctx: ParallelContext) -> Self {
        self.parallel = Some(ctx);
        self
    }

    /// Decides duality and additionally reports peak metered work-tape usage.
    pub fn decide_with_space(
        &self,
        g: &Hypergraph,
        h: &Hypergraph,
    ) -> Result<(DualityResult, SpaceReport), DualError> {
        let input_bits =
            (g.num_edges() + h.num_edges()) * g.num_vertices().max(h.num_vertices()).max(1);
        match preflight(g, h)? {
            Preflight::Decided(answer) => {
                Ok((answer, SpaceReport::new(self.strategy, 0, input_bits)))
            }
            Preflight::Ready { oriented, swapped } => {
                let meter = SpaceMeter::new();
                let witness = match self.strategy {
                    SpaceStrategy::Recompute => {
                        let root = RootOracle::new(&oriented);
                        dfs_recompute(&oriented, &root, &meter)
                    }
                    SpaceStrategy::MaterializeChain => self.run_materialized(oriented, &meter)?,
                };
                let report = SpaceReport::new(self.strategy, meter.peak_bits(), input_bits);
                let result = match witness {
                    Some(t) => DualityResult::NotDual(map_back(
                        NonDualWitness::NewTransversalOfG(t),
                        swapped,
                    )),
                    None => DualityResult::Dual,
                };
                Ok((result, report))
            }
        }
    }
}

impl QuadLogspaceSolver {
    /// Runs the `MaterializeChain` traversal, splitting the root's subtrees
    /// onto the parallel context's pool when one is attached and the instance
    /// is large enough.  Answer, witness, and reported peak space are
    /// identical to the sequential traversal (see `dfs_materialized_split`).
    #[cfg(feature = "std")]
    fn run_materialized(
        &self,
        oriented: DualInstance,
        meter: &SpaceMeter,
    ) -> Result<Option<VertexSet>, DualError> {
        let work = oriented.num_vertices() * (oriented.g().num_edges() + oriented.h().num_edges());
        match &self.parallel {
            Some(ctx) if ctx.should_split(work) => {
                dfs_materialized_split(Arc::new(oriented), meter, ctx)
            }
            _ => Ok(run_materialized_seq(&oriented, meter)),
        }
    }

    /// Without `std` there is no pool to split onto: always the sequential
    /// traversal (byte-identical answers either way).
    #[cfg(not(feature = "std"))]
    fn run_materialized(
        &self,
        oriented: DualInstance,
        meter: &SpaceMeter,
    ) -> Result<Option<VertexSet>, DualError> {
        Ok(run_materialized_seq(&oriented, meter))
    }
}

/// The sequential `MaterializeChain` DFS from a fresh root oracle.
fn run_materialized_seq(oriented: &DualInstance, meter: &SpaceMeter) -> Option<VertexSet> {
    let root = MaterializedOracle::new(VertexSet::full(oriented.num_vertices()), meter);
    dfs_materialized(oriented, &root, meter)
}

impl DualitySolver for QuadLogspaceSolver {
    fn name(&self) -> &'static str {
        match self.strategy {
            SpaceStrategy::Recompute => "quadlog-recompute",
            SpaceStrategy::MaterializeChain => "quadlog-chain",
        }
    }

    fn decide(&self, g: &Hypergraph, h: &Hypergraph) -> Result<DualityResult, DualError> {
        Ok(self.decide_with_space(g, h)?.0)
    }
}

/// DFS in the recompute strategy: the current node is represented purely by the chain
/// of `ChildOracle`s on the call stack.
fn dfs_recompute(
    inst: &DualInstance,
    s: &dyn SAlphaOracle,
    meter: &SpaceMeter,
) -> Option<VertexSet> {
    let class = classify(inst, s, meter);
    match class {
        NodeClass::Done => None,
        NodeClass::Fail(rule) => Some(materialize_witness(inst, s, rule, meter)),
        NodeClass::Branch(_) => {
            let count = child_count_given(inst, s, class, meter);
            let mut index = qld_logspace::LogRegister::new(meter, count.max(1));
            while index.get() < count {
                index.increment();
                let child = ChildOracle::with_class(inst, s, class, index.get(), meter);
                if let Some(w) = dfs_recompute(inst, &child, meter) {
                    return Some(w);
                }
            }
            None
        }
    }
}

/// DFS in the materializing strategy: one metered `S` set per level of the current
/// path.
fn dfs_materialized(
    inst: &DualInstance,
    s: &MaterializedOracle,
    meter: &SpaceMeter,
) -> Option<VertexSet> {
    match classify(inst, s, meter) {
        NodeClass::Done => None,
        NodeClass::Fail(rule) => Some(materialize_witness(inst, s, rule, meter)),
        NodeClass::Branch(_) => {
            let count = child_count(inst, s, meter);
            for index in 1..=count {
                let child_set = materialize_child(inst, s, index, meter)
                    .expect("child index within child_count");
                let child = MaterializedOracle::new(child_set, meter);
                if let Some(w) = dfs_materialized(inst, &child, meter) {
                    return Some(w);
                }
            }
            None
        }
    }
}

/// DFS in the materializing strategy with the root's subtrees split into pool
/// subtasks.
///
/// The root is classified sequentially; when it branches, its child sets are
/// materialized in canonical order (on the parent meter, exactly as the
/// sequential traversal would) and each independent subtree becomes one
/// subtask.  Determinism at any worker count:
///
/// * The answer is the witness of the **lowest-indexed** failing subtree.  A
///   shared low-water mark (`min_fail`) lets later subtasks skip once an
///   earlier one has failed, but a subtask only consults it *before* starting —
///   every subtree with an index below the final minimum therefore ran to
///   completion and found nothing, exactly like the sequential DFS, so the
///   returned witness is the sequential witness bit-for-bit.
/// * The reported peak space models the sequential traversal: each subtask
///   pre-charges its private meter with the parent's resident bits and the
///   parent merges only the peaks of subtrees the sequential DFS would have
///   entered (indices up to the winning one).  Real memory transiently holds
///   one `S` set per child, but the *metered* narrative — one path at a time —
///   is preserved and worker-count independent.
/// * Cancellation is observed at steal boundaries only: queued subtasks are
///   skipped wholesale, surfacing here as an empty slot, and the traversal
///   aborts with [`DualError::Interrupted`] rather than invent a
///   nondeterministic answer.  Started subtasks run their subtree to the end.
#[cfg(feature = "std")]
fn dfs_materialized_split(
    inst: Arc<DualInstance>,
    meter: &SpaceMeter,
    ctx: &ParallelContext,
) -> Result<Option<VertexSet>, DualError> {
    // Share the arena indexes before fanning out, so subtasks never race to
    // build them (`OnceLock` would deduplicate, but the work is wasted).
    inst.g().index();
    inst.h().index();

    let root = MaterializedOracle::new(VertexSet::full(inst.num_vertices()), meter);
    let class = classify(&inst, &root, meter);
    let count = match class {
        NodeClass::Done => return Ok(None),
        NodeClass::Fail(rule) => return Ok(Some(materialize_witness(&inst, &root, rule, meter))),
        NodeClass::Branch(_) => child_count_given(&inst, &root, class, meter),
    };

    let mut child_sets = Vec::with_capacity(count as usize);
    for index in 1..=count {
        child_sets.push(materialize_child(&inst, &root, index, meter).expect("child within count"));
    }

    // `SpaceMeter` is deliberately not `Send` (it models one work tape), so
    // each subtask runs on a private meter pre-charged with the parent's
    // resident bits; the parent folds the subtree peaks back in afterwards.
    let base_bits = meter.current_bits();
    let min_fail = Arc::new(AtomicU64::new(u64::MAX));
    let tasks: Vec<SubtreeProbe> = child_sets
        .into_iter()
        .enumerate()
        .map(|(i, child_set)| {
            let inst = Arc::clone(&inst);
            let min_fail = Arc::clone(&min_fail);
            let index = i as u64 + 1;
            Box::new(move || {
                if min_fail.load(Ordering::SeqCst) < index {
                    // A strictly earlier subtree already failed; the sequential
                    // DFS would never have entered this one.
                    return (None, 0, false);
                }
                let sub_meter = SpaceMeter::new();
                sub_meter.charge(base_bits);
                let witness = {
                    let child = MaterializedOracle::new(child_set, &sub_meter);
                    dfs_materialized(&inst, &child, &sub_meter)
                };
                sub_meter.free(base_bits);
                if witness.is_some() {
                    min_fail.fetch_min(index, Ordering::SeqCst);
                }
                (witness, sub_meter.peak_bits(), true)
            }) as SubtreeProbe
        })
        .collect();
    let slots = ctx.run(tasks);
    if slots.iter().any(Option::is_none) {
        return Err(DualError::Interrupted);
    }
    let results: Vec<(Option<VertexSet>, u64, bool)> =
        slots.into_iter().map(Option::unwrap).collect();

    // The sequential DFS visits subtrees 1..=w where w is the first failure
    // (or all of them when none fails); merge exactly those peaks.
    let winner = results.iter().position(|(w, _, _)| w.is_some());
    let visited = winner.map_or(results.len(), |w| w + 1);
    let extra = results[..visited]
        .iter()
        .filter(|(_, _, ran)| *ran)
        .map(|(_, peak, _)| peak.saturating_sub(base_bits))
        .max()
        .unwrap_or(0);
    meter.charge(extra);
    meter.free(extra);

    Ok(winner.and_then(|w| {
        results
            .into_iter()
            .nth(w)
            .and_then(|(witness, _, _)| witness)
    }))
}

/// Decides duality with the default (practical) configuration of the paper's solver.
pub fn is_dual(g: &Hypergraph, h: &Hypergraph) -> Result<bool, DualError> {
    QuadLogspaceSolver::default().is_dual(g, h)
}

/// Decides duality and returns the full result (with witness) using the default solver.
pub fn decide_duality(g: &Hypergraph, h: &Hypergraph) -> Result<DualityResult, DualError> {
    QuadLogspaceSolver::default().decide(g, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::verify_witness;
    use qld_hypergraph::generators;
    use qld_hypergraph::transversal::are_dual_exact;

    fn solvers() -> Vec<Box<dyn DualitySolver>> {
        vec![
            Box::new(BorosMakinoTreeSolver::new()),
            Box::new(QuadLogspaceSolver::new(SpaceStrategy::MaterializeChain)),
        ]
    }

    #[test]
    fn solvers_agree_with_ground_truth_on_standard_corpus() {
        for li in generators::standard_corpus() {
            let expected = li.dual;
            for solver in solvers() {
                let result = solver.decide(&li.g, &li.h).unwrap();
                assert_eq!(
                    result.is_dual(),
                    expected,
                    "{} disagrees on {}",
                    solver.name(),
                    li.name
                );
                if let DualityResult::NotDual(w) = &result {
                    assert!(
                        verify_witness(&li.g, &li.h, w),
                        "{} produced invalid witness on {}: {w}",
                        solver.name(),
                        li.name
                    );
                }
            }
        }
    }

    #[test]
    fn recompute_strategy_agrees_on_small_instances() {
        let solver = QuadLogspaceSolver::new(SpaceStrategy::Recompute);
        for li in [
            generators::matching_instance(1),
            generators::matching_instance(2),
            generators::matching_instance(3),
            generators::threshold_instance(4, 2),
            generators::self_dual_instance(1),
        ] {
            let expected = are_dual_exact(&li.h, &li.g);
            assert_eq!(
                solver.is_dual(&li.g, &li.h).unwrap(),
                expected,
                "{}",
                li.name
            );
        }
        // and on a perturbed (non-dual) one, with a checkable witness
        let li = generators::matching_instance(2);
        let broken = generators::perturb(&li, generators::Perturbation::DropDualEdge, 1).unwrap();
        let result = solver.decide(&broken.g, &broken.h).unwrap();
        assert!(!result.is_dual());
        assert!(verify_witness(
            &broken.g,
            &broken.h,
            result.witness().unwrap()
        ));
    }

    #[test]
    fn degenerate_and_precondition_cases_short_circuit() {
        use qld_hypergraph::Hypergraph;
        let empty = Hypergraph::new(3);
        let true_dnf = Hypergraph::from_edges(3, [qld_hypergraph::VertexSet::empty(3)]);
        for solver in solvers() {
            assert!(solver.is_dual(&empty, &true_dnf).unwrap());
            assert!(solver.is_dual(&true_dnf, &empty).unwrap());
            assert!(!solver.is_dual(&empty, &empty).unwrap());
            // precondition violation: disjoint edges
            let a = Hypergraph::from_index_edges(4, &[&[0, 1]]);
            let b = Hypergraph::from_index_edges(4, &[&[2, 3]]);
            let r = solver.decide(&a, &b).unwrap();
            assert!(!r.is_dual());
            assert!(verify_witness(&a, &b, r.witness().unwrap()));
        }
    }

    #[test]
    fn non_simple_inputs_are_rejected() {
        let g = qld_hypergraph::Hypergraph::from_index_edges(3, &[&[0], &[0, 1]]);
        let h = qld_hypergraph::Hypergraph::from_index_edges(3, &[&[0]]);
        for solver in solvers() {
            assert!(matches!(
                solver.decide(&g, &h),
                Err(DualError::NotSimple { .. })
            ));
        }
    }

    #[test]
    fn space_report_is_produced_and_meter_released() {
        let li = generators::matching_instance(3);
        let solver = QuadLogspaceSolver::new(SpaceStrategy::MaterializeChain);
        let (result, report) = solver.decide_with_space(&li.g, &li.h).unwrap();
        assert!(result.is_dual());
        assert!(report.peak_bits > 0);
        assert!(report.input_bits > 0);
        assert!(report.ratio_to_log2_squared() > 0.0);
    }

    #[test]
    fn both_strategies_report_space_and_agree() {
        let li = generators::matching_instance(3);
        let rec = QuadLogspaceSolver::new(SpaceStrategy::Recompute);
        let mat = QuadLogspaceSolver::new(SpaceStrategy::MaterializeChain);
        let (rec_result, rec_report) = rec.decide_with_space(&li.g, &li.h).unwrap();
        let (mat_result, mat_report) = mat.decide_with_space(&li.g, &li.h).unwrap();
        assert_eq!(rec_result, mat_result);
        assert!(rec_report.peak_bits > 0);
        assert!(mat_report.peak_bits > 0);
        // The materializing chain pays at least one full |V|-bit set for the root level.
        assert!(mat_report.peak_bits >= li.g.num_vertices() as u64);
    }

    #[test]
    fn parallel_split_matches_sequential_bit_for_bit() {
        #[cfg(feature = "std")]
        use crate::par::ParallelContext;
        // Threshold 0 forces the split on every instance; the inline pool makes
        // it the 1-worker case, which must equal the sequential traversal in
        // answer, witness choice, and reported peak space.
        let sequential = QuadLogspaceSolver::new(SpaceStrategy::MaterializeChain);
        let split = QuadLogspaceSolver::new(SpaceStrategy::MaterializeChain)
            .with_parallel(ParallelContext::inline(0));
        for li in generators::standard_corpus() {
            let (seq_result, seq_report) = sequential.decide_with_space(&li.g, &li.h).unwrap();
            let (par_result, par_report) = split.decide_with_space(&li.g, &li.h).unwrap();
            assert_eq!(
                seq_result, par_result,
                "answer/witness mismatch on {}",
                li.name
            );
            assert_eq!(
                seq_report.peak_bits, par_report.peak_bits,
                "peak-space mismatch on {}",
                li.name
            );
        }
        // Perturbed (non-dual) instances: the witness must be the sequential one.
        for k in 2..=3 {
            let li = generators::matching_instance(k);
            let broken =
                generators::perturb(&li, generators::Perturbation::DropDualEdge, 1).unwrap();
            let seq = sequential.decide(&broken.g, &broken.h).unwrap();
            let par = split.decide(&broken.g, &broken.h).unwrap();
            assert_eq!(seq, par);
            assert!(verify_witness(&broken.g, &broken.h, par.witness().unwrap()));
        }
    }

    #[test]
    fn cancelled_pool_interrupts_split() {
        use crate::par::{ParallelContext, SubtaskPool, SubtaskScope};
        use std::sync::Arc;
        /// A pool whose query is already cancelled: every queued subtask is
        /// skipped at the (virtual) steal boundary.
        struct CancelledPool;
        struct SkipAll;
        impl SubtaskScope for SkipAll {
            fn spawn(&mut self, _task: Box<dyn FnOnce() + Send + 'static>) {}
            fn join(&mut self) {}
        }
        impl SubtaskPool for CancelledPool {
            fn scope(&self) -> Box<dyn SubtaskScope + '_> {
                Box::new(SkipAll)
            }
            fn is_cancelled(&self) -> bool {
                true
            }
        }
        let solver = QuadLogspaceSolver::new(SpaceStrategy::MaterializeChain)
            .with_parallel(ParallelContext::new(Arc::new(CancelledPool), 0));
        let li = generators::matching_instance(3);
        assert!(matches!(
            solver.decide(&li.g, &li.h),
            Err(DualError::Interrupted)
        ));
    }

    #[test]
    fn convenience_functions() {
        let li = generators::matching_instance(2);
        assert!(is_dual(&li.g, &li.h).unwrap());
        assert!(decide_duality(&li.g, &li.h).unwrap().is_dual());
        assert_eq!(QuadLogspaceSolver::default().name(), "quadlog-chain");
        assert_eq!(
            QuadLogspaceSolver::new(SpaceStrategy::Recompute).name(),
            "quadlog-recompute"
        );
        assert_eq!(BorosMakinoTreeSolver::new().name(), "bm-tree");
    }
}
