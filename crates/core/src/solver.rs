//! Duality solvers.
//!
//! [`DualitySolver`] is the common interface shared by the decomposition-based solvers
//! in this crate and the classical baselines in `qld-fk`.  All solvers follow the same
//! front end ([`preflight`]): validate the instance, resolve degenerate cases, check the
//! logspace-checkable preconditions `G ⊆ tr(H)`, `H ⊆ tr(G)` (returning a witness if
//! they fail), and orient the instance so that the decomposed side is the smaller one.
//!
//! * [`BorosMakinoTreeSolver`] materializes the decomposition tree (Section 2) — the
//!   reference implementation with polynomial working space per node.
//! * [`QuadLogspaceSolver`] is the paper's contribution (Sections 3–4): a depth-first
//!   traversal of the *virtual* tree through the oracle chain, holding only a path
//!   descriptor and `O(log n)`-bit frames (strategy `Recompute`) or one `S` set per
//!   level (strategy `MaterializeChain`); it also reports peak metered work space.

use crate::error::DualError;
use crate::instance::DualInstance;
use crate::oracle::{
    child_count, child_count_given, classify, materialize_child, materialize_witness, ChildOracle,
    MaterializedOracle, NodeClass, RootOracle, SAlphaOracle,
};
use crate::pathnode::SpaceStrategy;
use crate::result::{DualityResult, NonDualWitness};
use crate::stats::SpaceReport;
use crate::tree::{build_tree, BuildOptions};
use qld_hypergraph::{Hypergraph, VertexSet};
use qld_logspace::SpaceMeter;

/// A decision procedure for the `DUAL` problem.
pub trait DualitySolver {
    /// A short name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Decides whether `g` and `h` are dual; on a negative answer the result carries a
    /// checkable witness.
    fn decide(&self, g: &Hypergraph, h: &Hypergraph) -> Result<DualityResult, DualError>;

    /// Convenience wrapper returning only the Boolean answer.
    fn is_dual(&self, g: &Hypergraph, h: &Hypergraph) -> Result<bool, DualError> {
        Ok(self.decide(g, h)?.is_dual())
    }
}

/// The outcome of the shared instance front end.
pub enum Preflight {
    /// The answer is already known (degenerate instance or precondition violation).
    Decided(DualityResult),
    /// The instance is ready for the decomposition; `swapped` records whether the roles
    /// of `G` and `H` were exchanged to ensure `|H| ≤ |G|`.
    Ready {
        /// The oriented instance.
        oriented: DualInstance,
        /// Whether witnesses must be swapped back.
        swapped: bool,
    },
}

/// Validates, resolves degenerate cases, checks preconditions, and orients the
/// instance.
pub fn preflight(g: &Hypergraph, h: &Hypergraph) -> Result<Preflight, DualError> {
    let inst = DualInstance::new(g.clone(), h.clone())?;
    if let Some(answer) = inst.degenerate_answer() {
        return Ok(Preflight::Decided(answer));
    }
    if let Err(witness) = inst.check_preconditions() {
        return Ok(Preflight::Decided(DualityResult::NotDual(witness)));
    }
    let (oriented, swapped) = inst.oriented();
    Ok(Preflight::Ready { oriented, swapped })
}

fn map_back(witness: NonDualWitness, swapped: bool) -> NonDualWitness {
    if swapped {
        witness.swap_sides()
    } else {
        witness
    }
}

/// Reference solver: builds the explicit decomposition tree and inspects the leaf marks
/// (Proposition 2.1(1)).
#[derive(Debug, Clone, Default)]
pub struct BorosMakinoTreeSolver {
    /// Tree construction limits.
    pub options: BuildOptions,
}

impl BorosMakinoTreeSolver {
    /// Creates the solver with default limits.
    pub fn new() -> Self {
        BorosMakinoTreeSolver {
            options: BuildOptions {
                stop_at_first_fail: true,
                ..BuildOptions::default()
            },
        }
    }
}

impl DualitySolver for BorosMakinoTreeSolver {
    fn name(&self) -> &'static str {
        "bm-tree"
    }

    fn decide(&self, g: &Hypergraph, h: &Hypergraph) -> Result<DualityResult, DualError> {
        match preflight(g, h)? {
            Preflight::Decided(answer) => Ok(answer),
            Preflight::Ready { oriented, swapped } => {
                let mut options = self.options.clone();
                options.stop_at_first_fail = true;
                let tree = build_tree(&oriented, &options)?;
                match tree.first_fail_witness() {
                    Some(t) => Ok(DualityResult::NotDual(map_back(
                        NonDualWitness::NewTransversalOfG(t.clone()),
                        swapped,
                    ))),
                    None => Ok(DualityResult::Dual),
                }
            }
        }
    }
}

/// The paper's solver: a DFS over the virtual decomposition tree through the oracle
/// chain, with metered work space.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuadLogspaceSolver {
    /// The space/time trade-off used for node attribute recomputation.
    pub strategy: SpaceStrategy,
}

impl QuadLogspaceSolver {
    /// Creates a solver with the given strategy.
    pub fn new(strategy: SpaceStrategy) -> Self {
        QuadLogspaceSolver { strategy }
    }

    /// Decides duality and additionally reports peak metered work-tape usage.
    pub fn decide_with_space(
        &self,
        g: &Hypergraph,
        h: &Hypergraph,
    ) -> Result<(DualityResult, SpaceReport), DualError> {
        let input_bits =
            (g.num_edges() + h.num_edges()) * g.num_vertices().max(h.num_vertices()).max(1);
        match preflight(g, h)? {
            Preflight::Decided(answer) => {
                Ok((answer, SpaceReport::new(self.strategy, 0, input_bits)))
            }
            Preflight::Ready { oriented, swapped } => {
                let meter = SpaceMeter::new();
                let witness = match self.strategy {
                    SpaceStrategy::Recompute => {
                        let root = RootOracle::new(&oriented);
                        dfs_recompute(&oriented, &root, &meter)
                    }
                    SpaceStrategy::MaterializeChain => {
                        let root = MaterializedOracle::new(
                            VertexSet::full(oriented.num_vertices()),
                            &meter,
                        );
                        dfs_materialized(&oriented, &root, &meter)
                    }
                };
                let report = SpaceReport::new(self.strategy, meter.peak_bits(), input_bits);
                let result = match witness {
                    Some(t) => DualityResult::NotDual(map_back(
                        NonDualWitness::NewTransversalOfG(t),
                        swapped,
                    )),
                    None => DualityResult::Dual,
                };
                Ok((result, report))
            }
        }
    }
}

impl DualitySolver for QuadLogspaceSolver {
    fn name(&self) -> &'static str {
        match self.strategy {
            SpaceStrategy::Recompute => "quadlog-recompute",
            SpaceStrategy::MaterializeChain => "quadlog-chain",
        }
    }

    fn decide(&self, g: &Hypergraph, h: &Hypergraph) -> Result<DualityResult, DualError> {
        Ok(self.decide_with_space(g, h)?.0)
    }
}

/// DFS in the recompute strategy: the current node is represented purely by the chain
/// of `ChildOracle`s on the call stack.
fn dfs_recompute(
    inst: &DualInstance,
    s: &dyn SAlphaOracle,
    meter: &SpaceMeter,
) -> Option<VertexSet> {
    let class = classify(inst, s, meter);
    match class {
        NodeClass::Done => None,
        NodeClass::Fail(rule) => Some(materialize_witness(inst, s, rule, meter)),
        NodeClass::Branch(_) => {
            let count = child_count_given(inst, s, class, meter);
            let mut index = qld_logspace::LogRegister::new(meter, count.max(1));
            while index.get() < count {
                index.increment();
                let child = ChildOracle::with_class(inst, s, class, index.get(), meter);
                if let Some(w) = dfs_recompute(inst, &child, meter) {
                    return Some(w);
                }
            }
            None
        }
    }
}

/// DFS in the materializing strategy: one metered `S` set per level of the current
/// path.
fn dfs_materialized(
    inst: &DualInstance,
    s: &MaterializedOracle,
    meter: &SpaceMeter,
) -> Option<VertexSet> {
    match classify(inst, s, meter) {
        NodeClass::Done => None,
        NodeClass::Fail(rule) => Some(materialize_witness(inst, s, rule, meter)),
        NodeClass::Branch(_) => {
            let count = child_count(inst, s, meter);
            for index in 1..=count {
                let child_set = materialize_child(inst, s, index, meter)
                    .expect("child index within child_count");
                let child = MaterializedOracle::new(child_set, meter);
                if let Some(w) = dfs_materialized(inst, &child, meter) {
                    return Some(w);
                }
            }
            None
        }
    }
}

/// Decides duality with the default (practical) configuration of the paper's solver.
pub fn is_dual(g: &Hypergraph, h: &Hypergraph) -> Result<bool, DualError> {
    QuadLogspaceSolver::default().is_dual(g, h)
}

/// Decides duality and returns the full result (with witness) using the default solver.
pub fn decide_duality(g: &Hypergraph, h: &Hypergraph) -> Result<DualityResult, DualError> {
    QuadLogspaceSolver::default().decide(g, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::verify_witness;
    use qld_hypergraph::generators;
    use qld_hypergraph::transversal::are_dual_exact;

    fn solvers() -> Vec<Box<dyn DualitySolver>> {
        vec![
            Box::new(BorosMakinoTreeSolver::new()),
            Box::new(QuadLogspaceSolver::new(SpaceStrategy::MaterializeChain)),
        ]
    }

    #[test]
    fn solvers_agree_with_ground_truth_on_standard_corpus() {
        for li in generators::standard_corpus() {
            let expected = li.dual;
            for solver in solvers() {
                let result = solver.decide(&li.g, &li.h).unwrap();
                assert_eq!(
                    result.is_dual(),
                    expected,
                    "{} disagrees on {}",
                    solver.name(),
                    li.name
                );
                if let DualityResult::NotDual(w) = &result {
                    assert!(
                        verify_witness(&li.g, &li.h, w),
                        "{} produced invalid witness on {}: {w}",
                        solver.name(),
                        li.name
                    );
                }
            }
        }
    }

    #[test]
    fn recompute_strategy_agrees_on_small_instances() {
        let solver = QuadLogspaceSolver::new(SpaceStrategy::Recompute);
        for li in [
            generators::matching_instance(1),
            generators::matching_instance(2),
            generators::matching_instance(3),
            generators::threshold_instance(4, 2),
            generators::self_dual_instance(1),
        ] {
            let expected = are_dual_exact(&li.h, &li.g);
            assert_eq!(
                solver.is_dual(&li.g, &li.h).unwrap(),
                expected,
                "{}",
                li.name
            );
        }
        // and on a perturbed (non-dual) one, with a checkable witness
        let li = generators::matching_instance(2);
        let broken = generators::perturb(&li, generators::Perturbation::DropDualEdge, 1).unwrap();
        let result = solver.decide(&broken.g, &broken.h).unwrap();
        assert!(!result.is_dual());
        assert!(verify_witness(
            &broken.g,
            &broken.h,
            result.witness().unwrap()
        ));
    }

    #[test]
    fn degenerate_and_precondition_cases_short_circuit() {
        use qld_hypergraph::Hypergraph;
        let empty = Hypergraph::new(3);
        let true_dnf = Hypergraph::from_edges(3, [qld_hypergraph::VertexSet::empty(3)]);
        for solver in solvers() {
            assert!(solver.is_dual(&empty, &true_dnf).unwrap());
            assert!(solver.is_dual(&true_dnf, &empty).unwrap());
            assert!(!solver.is_dual(&empty, &empty).unwrap());
            // precondition violation: disjoint edges
            let a = Hypergraph::from_index_edges(4, &[&[0, 1]]);
            let b = Hypergraph::from_index_edges(4, &[&[2, 3]]);
            let r = solver.decide(&a, &b).unwrap();
            assert!(!r.is_dual());
            assert!(verify_witness(&a, &b, r.witness().unwrap()));
        }
    }

    #[test]
    fn non_simple_inputs_are_rejected() {
        let g = qld_hypergraph::Hypergraph::from_index_edges(3, &[&[0], &[0, 1]]);
        let h = qld_hypergraph::Hypergraph::from_index_edges(3, &[&[0]]);
        for solver in solvers() {
            assert!(matches!(
                solver.decide(&g, &h),
                Err(DualError::NotSimple { .. })
            ));
        }
    }

    #[test]
    fn space_report_is_produced_and_meter_released() {
        let li = generators::matching_instance(3);
        let solver = QuadLogspaceSolver::new(SpaceStrategy::MaterializeChain);
        let (result, report) = solver.decide_with_space(&li.g, &li.h).unwrap();
        assert!(result.is_dual());
        assert!(report.peak_bits > 0);
        assert!(report.input_bits > 0);
        assert!(report.ratio_to_log2_squared() > 0.0);
    }

    #[test]
    fn both_strategies_report_space_and_agree() {
        let li = generators::matching_instance(3);
        let rec = QuadLogspaceSolver::new(SpaceStrategy::Recompute);
        let mat = QuadLogspaceSolver::new(SpaceStrategy::MaterializeChain);
        let (rec_result, rec_report) = rec.decide_with_space(&li.g, &li.h).unwrap();
        let (mat_result, mat_report) = mat.decide_with_space(&li.g, &li.h).unwrap();
        assert_eq!(rec_result, mat_result);
        assert!(rec_report.peak_bits > 0);
        assert!(mat_report.peak_bits > 0);
        // The materializing chain pays at least one full |V|-bit set for the root level.
        assert!(mat_report.peak_bits >= li.g.num_vertices() as u64);
    }

    #[test]
    fn convenience_functions() {
        let li = generators::matching_instance(2);
        assert!(is_dual(&li.g, &li.h).unwrap());
        assert!(decide_duality(&li.g, &li.h).unwrap().is_dual());
        assert_eq!(QuadLogspaceSolver::default().name(), "quadlog-chain");
        assert_eq!(
            QuadLogspaceSolver::new(SpaceStrategy::Recompute).name(),
            "quadlog-recompute"
        );
        assert_eq!(BorosMakinoTreeSolver::new().name(), "bm-tree");
    }
}
