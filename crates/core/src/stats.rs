//! Space reports for the experiment harness.

use crate::pathnode::SpaceStrategy;

/// A record of how much metered work space a duality decision used, relative to the
/// `log²` of the input encoding — the quantity Theorem 4.1 bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceReport {
    /// The strategy used by the solver.
    pub strategy: SpaceStrategy,
    /// Peak metered work-tape bits.
    pub peak_bits: u64,
    /// Size of the instance encoding in bits (`n`).
    pub input_bits: usize,
}

impl SpaceReport {
    /// Creates a report.
    pub fn new(strategy: SpaceStrategy, peak_bits: u64, input_bits: usize) -> Self {
        SpaceReport {
            strategy,
            peak_bits,
            input_bits,
        }
    }

    /// `log₂(n)` of the input encoding size.
    pub fn log2_input(&self) -> f64 {
        log2(self.input_bits.max(2) as f64)
    }

    /// `log₂²(n)`, the reference curve of Theorem 4.1.
    pub fn log2_squared_input(&self) -> f64 {
        let l = self.log2_input();
        l * l
    }

    /// The constant `c` such that `peak_bits = c · log₂²(n)` — the number reported in
    /// experiment E3 (bounded iff the algorithm is in `DSPACE[log² n]`).
    pub fn ratio_to_log2_squared(&self) -> f64 {
        self.peak_bits as f64 / self.log2_squared_input()
    }
}

/// `log₂(x)` for finite positive `x`.
///
/// `f64::log2` lives in `std` (it lowers to a libm call), so the `no_std`
/// build computes it directly: split the IEEE-754 exponent off, then evaluate
/// `ln` of the mantissa `m ∈ [1, 2)` by the atanh series
/// `ln m = 2·(z + z³/3 + z⁵/5 + …)` with `z = (m−1)/(m+1) ≤ 1/3`, which is
/// accurate to ~1 ulp after 11 terms.  Space reports only ever take logs of
/// positive integer encoding sizes, so no NaN/subnormal handling is needed.
#[cfg(not(feature = "std"))]
fn log2(x: f64) -> f64 {
    const LOG2_E: f64 = core::f64::consts::LOG2_E;
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mantissa = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    let z = (mantissa - 1.0) / (mantissa + 1.0);
    let z2 = z * z;
    let mut term = z;
    let mut ln_m = 0.0;
    let mut k = 1u32;
    while k <= 21 {
        ln_m += term / f64::from(k);
        term *= z2;
        k += 2;
    }
    exp as f64 + 2.0 * ln_m * LOG2_E
}

#[cfg(feature = "std")]
#[inline]
fn log2(x: f64) -> f64 {
    x.log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let r = SpaceReport::new(SpaceStrategy::Recompute, 400, 1024);
        assert!((r.log2_input() - 10.0).abs() < 1e-9);
        assert!((r.log2_squared_input() - 100.0).abs() < 1e-9);
        assert!((r.ratio_to_log2_squared() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_inputs_do_not_divide_by_zero() {
        let r = SpaceReport::new(SpaceStrategy::MaterializeChain, 8, 1);
        assert!(r.ratio_to_log2_squared().is_finite());
        assert!(r.log2_squared_input() > 0.0);
    }
}
