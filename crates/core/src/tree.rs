//! Explicit construction of the decomposition tree `T(G, H)`.
//!
//! This is the *reference* realization of the Boros–Makino method: the whole tree is
//! materialized in memory (polynomial space per node, potentially quasi-polynomially
//! many nodes), its structural properties (Proposition 2.1) can be measured directly,
//! and the duality decision follows from the leaf marks.  The space-efficient
//! algorithms of Section 4 ([`mod@crate::pathnode`], [`crate::decompose`],
//! [`crate::solver::QuadLogspaceSolver`]) never build this tree; tests compare their
//! answers and per-node attributes against it.

use crate::error::DualError;
use crate::expand::{expand, Expansion};
use crate::instance::DualInstance;
use crate::node::{Mark, NodeAttr};
use crate::path::PathDescriptor;
use alloc::vec;
use alloc::vec::Vec;
use qld_hypergraph::VertexSet;

/// Resource limits and options for [`build_tree`].
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Maximum number of nodes to materialize before giving up.
    pub max_nodes: usize,
    /// Stop expanding as soon as a `fail` leaf is found (enough to decide `DUAL`).
    pub stop_at_first_fail: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            max_nodes: 2_000_000,
            stop_at_first_fail: false,
        }
    }
}

/// One node of the materialized decomposition tree.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// The node's attributes (label, `S_α`, mark, witness).
    pub attr: NodeAttr,
    /// Index of the parent node (`None` for the root).
    pub parent: Option<usize>,
    /// Indices of the children, in canonical order.
    pub children: Vec<usize>,
}

/// The materialized decomposition tree together with summary statistics.
#[derive(Debug, Clone)]
pub struct DecompositionTree {
    nodes: Vec<TreeNode>,
    truncated: bool,
}

impl DecompositionTree {
    /// All nodes in breadth-first order (the root is node 0).
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// The root node.
    pub fn root(&self) -> &TreeNode {
        &self.nodes[0]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (never: a built tree has at least the root).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether construction stopped early (node limit or `stop_at_first_fail`).
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// The node with the given label, if present.
    pub fn find(&self, label: &PathDescriptor) -> Option<&TreeNode> {
        self.nodes.iter().find(|n| &n.attr.label == label)
    }

    /// The leaves of the tree.
    pub fn leaves(&self) -> impl Iterator<Item = &TreeNode> {
        self.nodes.iter().filter(|n| n.attr.is_leaf())
    }

    /// Whether every leaf is marked `done` (Proposition 2.1(1): this holds iff
    /// `H = tr(G)`), meaningful only for a non-truncated tree.
    pub fn all_leaves_done(&self) -> bool {
        self.leaves().all(|n| n.attr.mark == Mark::Done)
    }

    /// The witness `t(α)` of the first `fail` leaf, if any.
    pub fn first_fail_witness(&self) -> Option<&VertexSet> {
        self.nodes
            .iter()
            .find(|n| n.attr.mark == Mark::Fail)
            .and_then(|n| n.attr.witness.as_ref())
    }

    /// Structural statistics (Proposition 2.1(2)–(3) measurements).
    pub fn stats(&self) -> TreeStats {
        let mut depth = 0;
        let mut max_branching = 0;
        let mut leaves = 0;
        let mut done = 0;
        let mut fail = 0;
        for node in &self.nodes {
            depth = depth.max(node.attr.label.len());
            max_branching = max_branching.max(node.children.len());
            if node.attr.is_leaf() {
                leaves += 1;
                match node.attr.mark {
                    Mark::Done => done += 1,
                    Mark::Fail => fail += 1,
                    Mark::Nil => {}
                }
            }
        }
        TreeStats {
            nodes: self.nodes.len(),
            leaves,
            done_leaves: done,
            fail_leaves: fail,
            depth,
            max_branching,
        }
    }

    /// An estimate of the resident size of the materialized tree in bits
    /// (`|V|` bits of `S_α` per node plus the label), used as the "explicit tree"
    /// series of the space experiment E3.
    pub fn resident_bits(&self, num_vertices: usize, max_branching: u64) -> u64 {
        self.nodes
            .iter()
            .map(|n| num_vertices as u64 + n.attr.label.bits(max_branching))
            .sum()
    }
}

/// Summary statistics of a decomposition tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Total number of nodes.
    pub nodes: usize,
    /// Number of leaves.
    pub leaves: usize,
    /// Leaves marked `done`.
    pub done_leaves: usize,
    /// Leaves marked `fail`.
    pub fail_leaves: usize,
    /// Depth (length of the longest label).
    pub depth: usize,
    /// Largest number of children of any node (`max κ(α)`).
    pub max_branching: usize,
}

/// Builds the decomposition tree of the (already oriented) instance.
///
/// The instance must be non-degenerate (see [`DualInstance::degenerate_answer`]); the
/// caller is expected to have checked the preconditions `G ⊆ tr(H)`, `H ⊆ tr(G)` —
/// without them the tree is still well defined and every `fail` witness is still a
/// valid new transversal, but Proposition 2.1's completeness guarantee no longer
/// applies.
pub fn build_tree(
    inst: &DualInstance,
    options: &BuildOptions,
) -> Result<DecompositionTree, DualError> {
    let root = NodeAttr::root(inst);
    let mut nodes = vec![TreeNode {
        attr: root,
        parent: None,
        children: Vec::new(),
    }];
    let mut queue = alloc::collections::VecDeque::from([0usize]);
    let mut truncated = false;

    'bfs: while let Some(idx) = queue.pop_front() {
        let s = nodes[idx].attr.s.clone();
        let label = nodes[idx].attr.label.clone();
        match expand(inst, &s) {
            Expansion::Done => {
                nodes[idx].attr.mark = Mark::Done;
            }
            Expansion::Fail { witness, .. } => {
                nodes[idx].attr.mark = Mark::Fail;
                nodes[idx].attr.witness = Some(witness);
                if options.stop_at_first_fail {
                    truncated = true;
                    break 'bfs;
                }
            }
            Expansion::Branch { children, .. } => {
                for (k, child_s) in children.into_iter().enumerate() {
                    if nodes.len() >= options.max_nodes {
                        return Err(DualError::TreeTooLarge {
                            limit: options.max_nodes,
                        });
                    }
                    let child_idx = nodes.len();
                    nodes.push(TreeNode {
                        attr: NodeAttr {
                            label: label.child(k as u64 + 1),
                            s: child_s,
                            mark: Mark::Nil,
                            witness: None,
                        },
                        parent: Some(idx),
                        children: Vec::new(),
                    });
                    nodes[idx].children.push(child_idx);
                    queue.push_back(child_idx);
                }
            }
        }
    }
    Ok(DecompositionTree { nodes, truncated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::max_descriptor_length;
    use qld_hypergraph::generators;
    use qld_hypergraph::Hypergraph;

    fn oriented(name_g: Hypergraph, name_h: Hypergraph) -> DualInstance {
        let inst = DualInstance::new(name_g, name_h).unwrap();
        inst.oriented().0
    }

    #[test]
    fn dual_instance_all_leaves_done() {
        let li = generators::matching_instance(3);
        let inst = oriented(li.g, li.h);
        let tree = build_tree(&inst, &BuildOptions::default()).unwrap();
        assert!(!tree.truncated());
        assert!(tree.all_leaves_done());
        assert!(tree.first_fail_witness().is_none());
        let stats = tree.stats();
        assert_eq!(stats.done_leaves, stats.leaves);
        assert!(stats.fail_leaves == 0);
        assert!(stats.nodes >= 1);
        assert!(!tree.is_empty());
    }

    #[test]
    fn non_dual_instance_has_fail_leaf_with_valid_witness() {
        let li = generators::matching_instance(3);
        let broken = generators::perturb(&li, generators::Perturbation::DropDualEdge, 2).unwrap();
        let inst = oriented(broken.g.clone(), broken.h.clone());
        let tree = build_tree(&inst, &BuildOptions::default()).unwrap();
        assert!(!tree.all_leaves_done());
        let w = tree.first_fail_witness().expect("fail witness");
        // the witness is a new transversal of the oriented G w.r.t. the oriented H
        assert!(inst.g().is_new_transversal(inst.h(), w));
    }

    #[test]
    fn depth_and_branching_respect_prop_2_1() {
        for li in [
            generators::matching_instance(2),
            generators::matching_instance(4),
            generators::threshold_instance(5, 3),
            generators::graph_cover_instance("C5", generators::cycle_graph(5)),
            generators::self_dual_instance(2),
        ] {
            let inst = oriented(li.g, li.h);
            let tree = build_tree(&inst, &BuildOptions::default()).unwrap();
            let stats = tree.stats();
            let depth_bound = max_descriptor_length(inst.h().num_edges());
            assert!(
                stats.depth <= depth_bound,
                "{}: depth {} exceeds ⌊log₂|H|⌋ = {}",
                li.name,
                stats.depth,
                depth_bound
            );
            let branch_bound = inst.num_vertices() * inst.g().num_edges() + 1;
            assert!(
                stats.max_branching <= branch_bound,
                "{}: branching {} exceeds |V|·|G| = {}",
                li.name,
                stats.max_branching,
                branch_bound
            );
        }
    }

    #[test]
    fn stop_at_first_fail_truncates() {
        let li = generators::matching_instance(4);
        let broken = generators::perturb(&li, generators::Perturbation::DropDualEdge, 0).unwrap();
        let inst = oriented(broken.g, broken.h);
        let opts = BuildOptions {
            stop_at_first_fail: true,
            ..Default::default()
        };
        let tree = build_tree(&inst, &opts).unwrap();
        assert!(tree.truncated());
        assert!(tree.first_fail_witness().is_some());
    }

    #[test]
    fn node_limit_is_enforced() {
        let li = generators::matching_instance(4);
        let inst = oriented(li.g, li.h);
        let opts = BuildOptions {
            max_nodes: 3,
            ..Default::default()
        };
        assert!(matches!(
            build_tree(&inst, &opts),
            Err(DualError::TreeTooLarge { limit: 3 })
        ));
    }

    #[test]
    fn labels_are_consistent_with_structure() {
        let li = generators::matching_instance(2);
        let inst = oriented(li.g, li.h);
        let tree = build_tree(&inst, &BuildOptions::default()).unwrap();
        for (idx, node) in tree.nodes().iter().enumerate() {
            for (k, &c) in node.children.iter().enumerate() {
                let child = &tree.nodes()[c];
                assert_eq!(child.parent, Some(idx));
                assert!(node.attr.label.is_parent_of(&child.attr.label));
                assert_eq!(*child.attr.label.indices().last().unwrap(), k as u64 + 1);
            }
        }
        // find() locates nodes by label
        let some = &tree.nodes()[tree.len() / 2];
        assert!(tree.find(&some.attr.label).is_some());
        assert!(tree.find(&PathDescriptor::from_indices([9999])).is_none());
        // resident_bits is positive and grows with node count
        assert!(tree.resident_bits(inst.num_vertices(), 16) > 0);
        assert_eq!(tree.root().attr.label, PathDescriptor::root());
    }
}
