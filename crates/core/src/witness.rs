//! Post-processing of non-duality witnesses.
//!
//! Corollary 4.1(2) shows that a *new transversal* can be produced in
//! `FDSPACE[log² n]`; the paper then remarks that turning it into a new **minimal**
//! transversal is easy in polynomial time (greedy vertex elimination) but needs linear
//! space in `|V|` to remember the eliminated vertices.  This module implements that
//! post-processing step and the associated checks.

use crate::result::NonDualWitness;
use qld_hypergraph::{Hypergraph, VertexSet};

/// Reduces a new transversal `t` of `g` (w.r.t. `h`) to a **minimal** transversal of
/// `g`.  The result is a minimal transversal of `g` that is not an edge of `h` — i.e. a
/// concrete element of `tr(g) − h`, the "missing" dual edge.
///
/// Returns `None` if `t` is not actually a new transversal of `g` w.r.t. `h`.
pub fn minimize_new_transversal(
    g: &Hypergraph,
    h: &Hypergraph,
    t: &VertexSet,
) -> Option<VertexSet> {
    if !g.is_new_transversal(h, t) {
        return None;
    }
    let minimal = g.minimize_transversal(t);
    debug_assert!(g.is_minimal_transversal(&minimal));
    // The minimal transversal is contained in t; were it an edge of h, that edge would
    // be a subset of t, contradicting t being *new*.
    debug_assert!(!h.contains_edge(&minimal));
    Some(minimal)
}

/// Extracts a missing dual edge (a minimal transversal of `g` not present in `h`, or of
/// `h` not present in `g`) from any non-duality witness, when the witness carries a
/// transversal.  [`NonDualWitness::DisjointEdges`] witnesses carry no transversal and
/// yield `None`.
pub fn missing_dual_edge(
    g: &Hypergraph,
    h: &Hypergraph,
    witness: &NonDualWitness,
) -> Option<VertexSet> {
    match witness {
        NonDualWitness::NewTransversalOfG(t) => minimize_new_transversal(g, h, t),
        NonDualWitness::NewTransversalOfH(t) => minimize_new_transversal(h, g, t),
        NonDualWitness::DisjointEdges { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_hypergraph::transversal::minimal_transversals;
    use qld_hypergraph::{generators, vset};

    #[test]
    fn minimization_produces_missing_minimal_transversal() {
        let li = generators::matching_instance(3);
        let g = li.g.clone();
        let full_dual = li.h.clone();
        let mut partial = full_dual.clone();
        let removed = partial.remove_edge(5);
        // The full universe is a new transversal of g w.r.t. the partial dual?  Not
        // necessarily (it contains other dual edges).  Use the removed edge itself,
        // padded with nothing — it is a new transversal by construction.
        let t = removed.clone();
        let minimal = minimize_new_transversal(&g, &partial, &t).expect("valid witness");
        assert!(g.is_minimal_transversal(&minimal));
        assert!(!partial.contains_edge(&minimal));
        // it must be one of the true dual edges
        assert!(minimal_transversals(&g).contains_edge(&minimal));
    }

    #[test]
    fn minimization_rejects_non_witnesses() {
        let li = generators::matching_instance(2);
        // an edge of h is NOT a new transversal (it is contained in itself)
        let t = li.h.edge(0).clone();
        assert!(minimize_new_transversal(&li.g, &li.h, &t).is_none());
        // a non-transversal is rejected too
        assert!(minimize_new_transversal(&li.g, &li.h, &vset![4; 0]).is_none());
    }

    #[test]
    fn missing_dual_edge_from_witness_variants() {
        let li = generators::matching_instance(2);
        let mut partial = li.h.clone();
        let removed = partial.remove_edge(1);
        let w = NonDualWitness::NewTransversalOfG(removed.clone());
        let m = missing_dual_edge(&li.g, &partial, &w).unwrap();
        assert_eq!(m, removed);
        // swapped orientation
        let w = NonDualWitness::NewTransversalOfH(removed.clone());
        let m = missing_dual_edge(&partial, &li.g, &w).unwrap();
        assert_eq!(m, removed);
        // disjoint-edge witnesses carry no transversal
        let w = NonDualWitness::DisjointEdges {
            g_index: 0,
            h_index: 0,
        };
        assert!(missing_dual_edge(&li.g, &partial, &w).is_none());
    }
}
