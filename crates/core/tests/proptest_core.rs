//! Property-based tests for the decomposition solvers.

use proptest::prelude::*;
use qld_core::expand::{expand, Expansion};
use qld_core::instance::DualInstance;
use qld_core::oracle::{self, MaterializedOracle};
use qld_core::pathnode::SpaceStrategy;
use qld_core::prelude::*;
use qld_hypergraph::transversal::{are_dual_exact, minimal_transversals};
use qld_hypergraph::{Hypergraph, VertexSet};
use qld_logspace::SpaceMeter;

/// Strategy: a random simple hypergraph with non-empty edges over `n` vertices.
fn arb_simple_hypergraph(n: usize, max_edges: usize) -> impl Strategy<Value = Hypergraph> {
    prop::collection::vec(prop::collection::vec(0..n, 1..=n), 1..=max_edges).prop_map(
        move |edges| {
            Hypergraph::from_edges(n, edges.into_iter().map(|e| VertexSet::from_indices(n, e)))
                .minimize()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The practical quadratic-logspace solver agrees with exact dualization on random
    /// instances where the second hypergraph is the exact dual of the first.
    #[test]
    fn solver_accepts_exact_duals(g in arb_simple_hypergraph(6, 5)) {
        let h = minimal_transversals(&g);
        let solver = QuadLogspaceSolver::default();
        prop_assert!(solver.is_dual(&g, &h).unwrap());
        prop_assert!(solver.is_dual(&h, &g).unwrap());
        let tree_solver = BorosMakinoTreeSolver::new();
        prop_assert!(tree_solver.is_dual(&g, &h).unwrap());
    }

    /// Dropping any single edge from the exact dual makes the pair non-dual, and the
    /// solver produces a verifiable witness.
    #[test]
    fn solver_rejects_perturbed_duals(g in arb_simple_hypergraph(6, 5), which in 0usize..100) {
        let h = minimal_transversals(&g);
        // need at least two dual edges so the perturbed H is still non-trivial
        prop_assume!(h.num_edges() >= 2);
        let mut broken = h.clone();
        broken.remove_edge(which % broken.num_edges());
        let solver = QuadLogspaceSolver::default();
        let result = solver.decide(&g, &broken).unwrap();
        prop_assert!(!result.is_dual());
        let w = result.witness().unwrap();
        prop_assert!(verify_witness(&g, &broken, w));
        // the explicit-tree reference agrees
        let tree_solver = BorosMakinoTreeSolver::new();
        prop_assert!(!tree_solver.is_dual(&g, &broken).unwrap());
    }

    /// On arbitrary simple pairs (dual or not), the solver's verdict equals the exact
    /// one, and negative verdicts carry valid witnesses.
    #[test]
    fn solver_matches_exact_on_arbitrary_pairs(
        g in arb_simple_hypergraph(5, 4),
        h in arb_simple_hypergraph(5, 4),
    ) {
        let expected = are_dual_exact(&h, &g);
        let solver = QuadLogspaceSolver::default();
        let result = solver.decide(&g, &h).unwrap();
        prop_assert_eq!(result.is_dual(), expected);
        if let DualityResult::NotDual(w) = &result {
            prop_assert!(verify_witness(&g, &h, w));
        }
    }

    /// The oracle chain's per-node decisions agree with the materialized `expand` on
    /// random sub-universes of random instances.
    #[test]
    fn oracle_matches_expand_on_random_nodes(
        g in arb_simple_hypergraph(6, 4),
        s_bits in 0u32..64,
    ) {
        let h = minimal_transversals(&g);
        prop_assume!(!h.is_empty() && !h.has_empty_edge());
        let inst = DualInstance::new(g, h).unwrap().oriented().0;
        let n = inst.num_vertices();
        let s = VertexSet::from_indices(n, (0..n).filter(|i| s_bits & (1 << i) != 0));
        let meter = SpaceMeter::new();
        let o = MaterializedOracle::new(s.clone(), &meter);
        let class = oracle::classify(&inst, &o, &meter);
        match (class, expand(&inst, &s)) {
            (oracle::NodeClass::Done, Expansion::Done) => {}
            (oracle::NodeClass::Fail(r1), Expansion::Fail { rule: r2, witness }) => {
                prop_assert_eq!(r1, r2);
                let w = oracle::materialize_witness(&inst, &o, r1, &meter);
                prop_assert_eq!(w, witness);
            }
            (oracle::NodeClass::Branch(c1), Expansion::Branch { case: c2, children }) => {
                prop_assert_eq!(c1, c2);
                prop_assert_eq!(oracle::child_count(&inst, &o, &meter) as usize, children.len());
                for (k, child) in children.iter().enumerate() {
                    let got = oracle::materialize_child(&inst, &o, k as u64 + 1, &meter).unwrap();
                    prop_assert_eq!(&got, child);
                }
            }
            (a, b) => prop_assert!(false, "mismatch: {a:?} vs {b:?}"),
        }
    }

    /// A certificate exists iff the instance is not dual, and found certificates verify.
    #[test]
    fn certificates_track_duality(g in arb_simple_hypergraph(5, 4), which in 0usize..100) {
        let h = minimal_transversals(&g);
        let meter = SpaceMeter::new();
        prop_assert!(find_certificate(&g, &h, &meter).unwrap().is_none());
        prop_assume!(h.num_edges() >= 2);
        let mut broken = h.clone();
        broken.remove_edge(which % broken.num_edges());
        let cert = find_certificate(&g, &broken, &meter).unwrap();
        prop_assert!(cert.is_some());
        let cert = cert.unwrap();
        let check = verify_certificate(&g, &broken, &cert, SpaceStrategy::MaterializeChain, &meter).unwrap();
        prop_assert_eq!(check, qld_core::guess_check::CertificateCheck::RefutesDuality);
    }

    /// Witness minimization always yields a missing minimal transversal.
    #[test]
    fn witness_minimization(g in arb_simple_hypergraph(6, 5), which in 0usize..100) {
        let h = minimal_transversals(&g);
        prop_assume!(h.num_edges() >= 2);
        let mut broken = h.clone();
        let removed = broken.remove_edge(which % broken.num_edges());
        let result = QuadLogspaceSolver::default().decide(&g, &broken).unwrap();
        if let DualityResult::NotDual(w) = result {
            if let Some(minimal) = qld_core::witness::missing_dual_edge(&g, &broken, &w) {
                match &w {
                    // Minimization of a new transversal of G: a dual edge missing from
                    // the (broken) H — it must be one of the true minimal transversals.
                    NonDualWitness::NewTransversalOfG(_) => {
                        prop_assert!(g.is_minimal_transversal(&minimal));
                        prop_assert!(!broken.contains_edge(&minimal));
                        prop_assert!(h.contains_edge(&minimal));
                    }
                    // Symmetric orientation: a minimal transversal of the broken H that
                    // is not an edge of G.
                    NonDualWitness::NewTransversalOfH(_) => {
                        prop_assert!(broken.is_minimal_transversal(&minimal));
                        prop_assert!(!g.contains_edge(&minimal));
                    }
                    NonDualWitness::DisjointEdges { .. } => unreachable!(),
                }
            }
            let _ = removed;
        } else {
            prop_assert!(false, "perturbed instance decided dual");
        }
    }
}
