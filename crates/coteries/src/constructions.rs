//! Classical coterie constructions.
//!
//! These are the standard families from the quorum-system literature used in the
//! experiments and examples: majority voting, a single distinguished node, the wheel
//! (hub-and-spokes), simple threshold (vote) systems, and the grid protocol.

use crate::coterie::Coterie;
use qld_hypergraph::{generators, Hypergraph, Vertex, VertexSet};

/// The majority coterie over an **odd** number of nodes: all `(n+1)/2`-element subsets.
///
/// Panics if `n` is even (the even-`n` "majority" is a threshold system and is
/// dominated; build it with [`threshold_coterie`] if that is what you want).
pub fn majority_coterie(n: usize) -> Coterie {
    assert!(
        n % 2 == 1,
        "majority coterie requires an odd number of nodes"
    );
    threshold_coterie(n, n / 2 + 1)
}

/// The threshold (voting) coterie: all `k`-element subsets of `n` nodes.  Requires
/// `2k > n` so that any two quorums intersect.
pub fn threshold_coterie(n: usize, k: usize) -> Coterie {
    assert!(
        2 * k > n,
        "threshold coterie requires 2k > n for intersection"
    );
    Coterie::new(generators::threshold_hypergraph(n, k))
        .expect("threshold family with 2k > n is a coterie")
}

/// The singleton coterie: the single quorum `{leader}` over `n` nodes.
pub fn singleton_coterie(n: usize, leader: usize) -> Coterie {
    assert!(leader < n);
    Coterie::new(Hypergraph::from_edges(
        n,
        [VertexSet::singleton(n, Vertex::from(leader))],
    ))
    .expect("a single non-empty quorum is a coterie")
}

/// The wheel coterie over `n ≥ 3` nodes: node 0 is the hub; quorums are `{hub, rim}`
/// for every rim node, plus the full rim.
pub fn wheel_coterie(n: usize) -> Coterie {
    assert!(n >= 3, "wheel coterie needs at least 3 nodes");
    let mut quorums = Hypergraph::new(n);
    for i in 1..n {
        quorums.add_edge(VertexSet::from_indices(n, [0, i]));
    }
    quorums.add_edge(VertexSet::from_indices(n, 1..n));
    Coterie::new(quorums).expect("wheel family is a coterie")
}

/// The (simple) grid coterie over `rows × cols` nodes: a quorum is the union of one
/// full row and one full column.
pub fn grid_coterie(rows: usize, cols: usize) -> Coterie {
    assert!(rows >= 1 && cols >= 1);
    let n = rows * cols;
    let mut quorums = Hypergraph::new(n);
    for r in 0..rows {
        for c in 0..cols {
            let mut q = VertexSet::empty(n);
            for cc in 0..cols {
                q.insert(Vertex::from(r * cols + cc));
            }
            for rr in 0..rows {
                q.insert(Vertex::from(rr * cols + c));
            }
            quorums.add_edge(q);
        }
    }
    Coterie::new(quorums.minimize()).expect("grid family is a coterie")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_sizes() {
        let c = majority_coterie(5);
        assert_eq!(c.num_quorums(), 10); // C(5,3)
        assert_eq!(c.num_nodes(), 5);
        let c = majority_coterie(3);
        assert_eq!(c.num_quorums(), 3);
    }

    #[test]
    #[should_panic(expected = "odd number")]
    fn even_majority_panics() {
        majority_coterie(4);
    }

    #[test]
    #[should_panic(expected = "2k > n")]
    fn non_intersecting_threshold_panics() {
        threshold_coterie(4, 2);
    }

    #[test]
    fn singleton_and_wheel() {
        let s = singleton_coterie(4, 2);
        assert_eq!(s.num_quorums(), 1);
        let w = wheel_coterie(5);
        assert_eq!(w.num_quorums(), 5); // 4 spokes + rim
        assert_eq!(w.num_nodes(), 5);
    }

    #[test]
    fn grid_shape() {
        let g = grid_coterie(2, 3);
        assert_eq!(g.num_nodes(), 6);
        // 6 row-column crosses, none absorbed for a 2×3 grid
        assert!(g.num_quorums() >= 4);
        // every quorum has |row| + |cols| - 1 = 3 + 2 - 1 = 4 nodes
        assert!(g.quorums().edges().iter().all(|q| q.len() == 4));
    }
}
