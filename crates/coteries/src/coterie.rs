//! Coteries: intersecting antichains of quorums.
//!
//! In quorum-based replication (Section 1 of the paper, after Lamport and
//! Garcia-Molina–Barbará), a *coterie* over a set of nodes is a family of quorums such
//! that any two quorums intersect (so two concurrent operations always share a node)
//! and no quorum contains another (minimality).  A coterie is exactly a simple,
//! cross-intersecting hypergraph; non-domination — the property that makes a coterie
//! availability-optimal — is self-duality `tr(C) = C` (Proposition 1.3).

use core::fmt;
use qld_hypergraph::{Hypergraph, VertexSet};

/// Why a family of vertex sets is not a coterie.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoterieError {
    /// The family contains no quorum at all.
    Empty,
    /// A quorum is the empty set.
    EmptyQuorum {
        /// Index of the offending quorum.
        index: usize,
    },
    /// Two quorums do not intersect.
    DisjointQuorums {
        /// Index of the first quorum.
        first: usize,
        /// Index of the second quorum.
        second: usize,
    },
    /// One quorum contains another.
    NonMinimalQuorum {
        /// Index of the contained quorum.
        contained: usize,
        /// Index of the containing quorum.
        container: usize,
    },
}

impl fmt::Display for CoterieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoterieError::Empty => write!(f, "a coterie must contain at least one quorum"),
            CoterieError::EmptyQuorum { index } => write!(f, "quorum #{index} is empty"),
            CoterieError::DisjointQuorums { first, second } => {
                write!(f, "quorums #{first} and #{second} do not intersect")
            }
            CoterieError::NonMinimalQuorum {
                contained,
                container,
            } => write!(f, "quorum #{contained} is contained in quorum #{container}"),
        }
    }
}

impl core::error::Error for CoterieError {}

/// A validated coterie over a universe of nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coterie {
    quorums: Hypergraph,
}

impl Coterie {
    /// Validates and wraps a family of quorums.
    pub fn new(quorums: Hypergraph) -> Result<Self, CoterieError> {
        if quorums.is_empty() {
            return Err(CoterieError::Empty);
        }
        for (i, q) in quorums.edges().iter().enumerate() {
            if q.is_empty() {
                return Err(CoterieError::EmptyQuorum { index: i });
            }
        }
        for (i, a) in quorums.edges().iter().enumerate() {
            for (j, b) in quorums.edges().iter().enumerate() {
                if i < j && a.is_disjoint(b) {
                    return Err(CoterieError::DisjointQuorums {
                        first: i,
                        second: j,
                    });
                }
                if i != j && a.is_subset(b) {
                    return Err(CoterieError::NonMinimalQuorum {
                        contained: i,
                        container: j,
                    });
                }
            }
        }
        Ok(Coterie { quorums })
    }

    /// Builds a coterie from quorums given as node-index slices.
    pub fn from_index_quorums(
        num_nodes: usize,
        quorums: &[&[usize]],
    ) -> Result<Self, CoterieError> {
        Coterie::new(Hypergraph::from_index_edges(num_nodes, quorums))
    }

    /// The underlying quorum hypergraph.
    pub fn quorums(&self) -> &Hypergraph {
        &self.quorums
    }

    /// Number of nodes in the universe.
    pub fn num_nodes(&self) -> usize {
        self.quorums.num_vertices()
    }

    /// Number of quorums.
    pub fn num_quorums(&self) -> usize {
        self.quorums.num_edges()
    }

    /// Whether the given set of live nodes still contains a full quorum (i.e. the
    /// system remains available under the failure of the other nodes).
    pub fn is_available_under(&self, live_nodes: &VertexSet) -> bool {
        self.quorums.edges().iter().any(|q| q.is_subset(live_nodes))
    }
}

impl fmt::Display for Coterie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Coterie[")?;
        for (i, q) in self.quorums.edges().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{q}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_hypergraph::vset;

    #[test]
    fn validation_accepts_majority_like_families() {
        let c = Coterie::from_index_quorums(3, &[&[0, 1], &[1, 2], &[0, 2]]).unwrap();
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.num_quorums(), 3);
        assert!(c.to_string().contains("Coterie["));
    }

    #[test]
    fn validation_rejects_ill_formed_families() {
        assert_eq!(
            Coterie::new(Hypergraph::new(3)).unwrap_err(),
            CoterieError::Empty
        );
        let empty_q = Hypergraph::from_edges(3, [VertexSet::empty(3)]);
        assert!(matches!(
            Coterie::new(empty_q).unwrap_err(),
            CoterieError::EmptyQuorum { index: 0 }
        ));
        assert!(matches!(
            Coterie::from_index_quorums(4, &[&[0, 1], &[2, 3]]).unwrap_err(),
            CoterieError::DisjointQuorums {
                first: 0,
                second: 1
            }
        ));
        assert!(matches!(
            Coterie::from_index_quorums(3, &[&[0, 1], &[0, 1, 2]]).unwrap_err(),
            CoterieError::NonMinimalQuorum { .. }
        ));
        // error messages are informative
        assert!(CoterieError::Empty.to_string().contains("at least one"));
        assert!(CoterieError::DisjointQuorums {
            first: 0,
            second: 1
        }
        .to_string()
        .contains("do not intersect"));
    }

    #[test]
    fn availability_under_failures() {
        let c = Coterie::from_index_quorums(3, &[&[0, 1], &[1, 2], &[0, 2]]).unwrap();
        assert!(c.is_available_under(&vset![3; 0, 1]));
        assert!(c.is_available_under(&vset![3; 0, 1, 2]));
        assert!(!c.is_available_under(&vset![3; 0]));
        assert!(!c.is_available_under(&vset![3;]));
    }
}
