//! Domination and non-domination of coteries (Proposition 1.3).
//!
//! A coterie `D` *dominates* a coterie `C` (`D ≠ C`) if every quorum of `C` contains a
//! quorum of `D`: `D` can only be more available than `C`.  Non-dominated coteries are
//! therefore the ones worth deploying, and by the result of Ibaraki–Kameda recalled in
//! the paper, `C` is non-dominated **iff `tr(C) = C`** — a self-duality instance of the
//! `DUAL` problem.

use crate::coterie::{Coterie, CoterieError};
use qld_core::{DualError, DualityResult, DualitySolver, NonDualWitness, QuadLogspaceSolver};
use qld_hypergraph::Hypergraph;

/// The outcome of the domination check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Domination {
    /// The coterie is non-dominated (`tr(C) = C`).
    NonDominated,
    /// The coterie is dominated; a concrete dominating coterie is attached.
    DominatedBy(Coterie),
}

impl Domination {
    /// Whether the coterie was found to be non-dominated.
    pub fn is_non_dominated(&self) -> bool {
        matches!(self, Domination::NonDominated)
    }
}

/// Checks non-domination of a coterie via self-duality, using the given solver.
///
/// When the coterie is dominated, the duality witness (a transversal of `C` containing
/// no quorum of `C`) is minimized into a new quorum `q`, and the dominating coterie
/// `{q} ∪ {Q ∈ C | q ⊄ Q}` is returned.
pub fn check_domination_with(
    coterie: &Coterie,
    solver: &dyn DualitySolver,
) -> Result<Domination, DualError> {
    let c = coterie.quorums();
    match solver.decide(c, c)? {
        DualityResult::Dual => Ok(Domination::NonDominated),
        DualityResult::NotDual(witness) => {
            let new_quorum = match witness {
                NonDualWitness::NewTransversalOfG(t) | NonDualWitness::NewTransversalOfH(t) => {
                    c.minimize_transversal(&t)
                }
                // Two disjoint quorums would contradict coterie validity.
                NonDualWitness::DisjointEdges { .. } => {
                    unreachable!("validated coterie with disjoint quorums")
                }
            };
            let mut quorums = Hypergraph::new(c.num_vertices());
            quorums.add_edge(new_quorum.clone());
            for q in c.edges() {
                if !new_quorum.is_subset(q) {
                    quorums.add_edge(q.clone());
                }
            }
            let dominating = Coterie::new(quorums)
                .expect("domination construction always yields a valid coterie");
            Ok(Domination::DominatedBy(dominating))
        }
    }
}

/// Checks non-domination with the paper's quadratic-logspace solver.
pub fn check_domination(coterie: &Coterie) -> Result<Domination, DualError> {
    check_domination_with(coterie, &QuadLogspaceSolver::default())
}

/// Whether `d` dominates `c`: `d ≠ c` and every quorum of `c` contains a quorum of `d`.
pub fn dominates(d: &Coterie, c: &Coterie) -> bool {
    if d.quorums().same_edge_set(c.quorums()) {
        return false;
    }
    c.quorums()
        .edges()
        .iter()
        .all(|q| d.quorums().edges().iter().any(|p| p.is_subset(q)))
}

/// Convenience: validates a quorum family and checks non-domination in one call.
pub fn is_non_dominated(quorums: Hypergraph) -> Result<bool, CoterieCheckError> {
    let coterie = Coterie::new(quorums).map_err(CoterieCheckError::Invalid)?;
    let result = check_domination(&coterie).map_err(CoterieCheckError::Solver)?;
    Ok(result.is_non_dominated())
}

/// Errors of [`is_non_dominated`].
#[derive(Debug)]
pub enum CoterieCheckError {
    /// The family is not a coterie.
    Invalid(CoterieError),
    /// The duality solver rejected the instance.
    Solver(DualError),
}

impl core::fmt::Display for CoterieCheckError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoterieCheckError::Invalid(e) => write!(f, "invalid coterie: {e}"),
            CoterieCheckError::Solver(e) => write!(f, "duality check failed: {e}"),
        }
    }
}

impl core::error::Error for CoterieCheckError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constructions;
    use qld_hypergraph::transversal::is_self_dual_exact;

    #[test]
    fn majority_and_wheel_coteries_are_non_dominated() {
        for c in [
            constructions::majority_coterie(3),
            constructions::majority_coterie(5),
            constructions::singleton_coterie(4, 2),
            constructions::wheel_coterie(5),
        ] {
            assert!(
                check_domination(&c).unwrap().is_non_dominated(),
                "{c} should be non-dominated"
            );
            assert!(is_self_dual_exact(c.quorums()));
        }
    }

    #[test]
    fn dominated_coteries_get_a_dominating_witness() {
        // A 4-node "majority of 3"-style coterie: quorums = all 3-subsets of 4 nodes.
        // It is dominated (e.g. by a coterie containing a 2-quorum).
        let c = constructions::threshold_coterie(4, 3);
        match check_domination(&c).unwrap() {
            Domination::DominatedBy(d) => {
                assert!(dominates(&d, &c), "{d} must dominate {c}");
                // the dominating family is itself a valid coterie (checked on
                // construction) and differs from the original
                assert!(!d.quorums().same_edge_set(c.quorums()));
            }
            Domination::NonDominated => panic!("{c} is dominated"),
        }
        assert!(!is_self_dual_exact(c.quorums()));
    }

    #[test]
    fn domination_predicate() {
        let c = constructions::threshold_coterie(4, 3);
        let d = match check_domination(&c).unwrap() {
            Domination::DominatedBy(d) => d,
            _ => unreachable!(),
        };
        assert!(dominates(&d, &c));
        assert!(!dominates(&c, &c));
        // a non-dominated coterie is not dominated by the 3-of-4 one
        let maj3 = constructions::majority_coterie(3);
        assert!(!dominates(&c, &maj3));
    }

    #[test]
    fn convenience_wrapper() {
        let good = constructions::majority_coterie(3);
        assert!(is_non_dominated(good.quorums().clone()).unwrap());
        let bad = Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3]]);
        assert!(matches!(
            is_non_dominated(bad),
            Err(CoterieCheckError::Invalid(_))
        ));
    }

    #[test]
    fn agreement_between_solvers() {
        for c in [
            constructions::majority_coterie(5),
            constructions::grid_coterie(2, 2),
            constructions::threshold_coterie(4, 3),
            constructions::wheel_coterie(4),
        ] {
            let a = check_domination_with(&c, &QuadLogspaceSolver::default()).unwrap();
            let b = check_domination_with(&c, &qld_core::BorosMakinoTreeSolver::new()).unwrap();
            assert_eq!(a.is_non_dominated(), b.is_non_dominated(), "{c}");
            assert_eq!(a.is_non_dominated(), is_self_dual_exact(c.quorums()), "{c}");
        }
    }
}
