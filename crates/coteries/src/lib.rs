//! # qld-coteries
//!
//! The distributed-systems application of the monotone duality problem (Section 1 of
//! the paper, Proposition 1.3): coteries (intersecting antichains of quorums) and the
//! non-domination test `tr(C) = C`.
//!
//! * [`Coterie`] — validated quorum families and availability queries;
//! * [`domination`] — the self-duality check, with a concrete dominating coterie
//!   produced whenever the input is dominated;
//! * [`constructions`] — majority, threshold, singleton, wheel and grid coteries.

#![cfg_attr(all(not(feature = "std"), not(test)), no_std)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

extern crate alloc;

pub mod constructions;
pub mod coterie;
pub mod domination;

pub use coterie::{Coterie, CoterieError};
pub use domination::{check_domination, check_domination_with, dominates, Domination};
