//! Exact computation of the borders `IS⁺(M, z)` and `IS⁻(M, z)`.
//!
//! The maximal frequent itemsets and the minimal infrequent itemsets form the positive
//! and negative borders of the frequent-itemset lattice.  [`borders_exact`] computes
//! both by exhaustive enumeration (exponential in the number of items, used as ground
//! truth for ≤ 20 items); the structural identity `IS⁻ = tr(IS⁺ᶜ)` of
//! Gunopulos–Khardon–Mannila–Toivonen, on which Proposition 1.1 rests, is verified in
//! the tests and re-used by [`crate::identification`].

use crate::relation::BooleanRelation;
use alloc::vec::Vec;
use qld_hypergraph::{Hypergraph, VertexSet};

/// The two borders of the frequent-itemset lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Borders {
    /// `IS⁺(M, z)`: the maximal frequent itemsets.
    pub maximal_frequent: Hypergraph,
    /// `IS⁻(M, z)`: the minimal infrequent itemsets.
    pub minimal_infrequent: Hypergraph,
}

impl Borders {
    /// Convenience: `IS⁺ᶜ`, the complements of the maximal frequent itemsets.
    pub fn maximal_frequent_complements(&self) -> Hypergraph {
        self.maximal_frequent.complement_edges()
    }
}

/// Computes both borders by exhaustive enumeration over all `2^|S|` itemsets.
///
/// Panics if the relation has more than 20 items; use the incremental
/// [`crate::dualize_advance`] machinery beyond that.
pub fn borders_exact(relation: &BooleanRelation, z: usize) -> Borders {
    let n = relation.num_items();
    assert!(n <= 20, "exhaustive border computation limited to 20 items");
    let mut maximal = Vec::new();
    let mut minimal = Vec::new();
    for set in VertexSet::all_subsets(n) {
        if relation.is_maximal_frequent(&set, z) {
            maximal.push(set);
        } else if relation.is_minimal_infrequent(&set, z) {
            minimal.push(set);
        }
    }
    Borders {
        maximal_frequent: Hypergraph::from_edges(n, maximal),
        minimal_infrequent: Hypergraph::from_edges(n, minimal),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::sample_relation as sample;
    use qld_hypergraph::transversal::minimal_transversals;
    use qld_hypergraph::vset;

    #[test]
    fn borders_of_the_sample_relation() {
        let m = sample();
        let b = borders_exact(&m, 2);
        // maximal frequent at z=2: {0,1} (3 rows), {0,2} (3 rows), {1,2} (3 rows)
        assert!(b.maximal_frequent.contains_edge(&vset![4; 0, 1]));
        assert!(b.maximal_frequent.contains_edge(&vset![4; 0, 2]));
        assert!(b.maximal_frequent.contains_edge(&vset![4; 1, 2]));
        assert_eq!(b.maximal_frequent.num_edges(), 3);
        // minimal infrequent: {3} (2 rows ≤ z) and {0,1,2} (2 rows ≤ z)
        assert!(b.minimal_infrequent.contains_edge(&vset![4; 3]));
        assert!(b.minimal_infrequent.contains_edge(&vset![4; 0, 1, 2]));
        assert_eq!(b.minimal_infrequent.num_edges(), 2);
        // both borders are antichains
        assert!(b.maximal_frequent.is_simple());
        assert!(b.minimal_infrequent.is_simple());
    }

    #[test]
    fn gunopulos_et_al_identity_holds() {
        // IS⁻ = tr(IS⁺ᶜ) on several relations and thresholds.
        for (m, zs) in [
            (sample(), vec![0, 1, 2, 3, 4]),
            (
                crate::generators::random_relation(5, 12, 0.5, 7),
                vec![1, 3, 6],
            ),
            (
                crate::generators::random_relation(6, 20, 0.7, 11),
                vec![2, 5, 10],
            ),
        ] {
            for z in zs {
                let b = borders_exact(&m, z);
                let expected = minimal_transversals(&b.maximal_frequent_complements());
                assert!(
                    b.minimal_infrequent.same_edge_set(&expected),
                    "IS⁻ ≠ tr(IS⁺ᶜ) at z={z}"
                );
            }
        }
    }

    #[test]
    fn extreme_thresholds() {
        let m = sample();
        // z = |M|: nothing is frequent (f(U) ≤ |M| ≤ z), so even ∅ is infrequent.
        let b = borders_exact(&m, m.num_rows());
        assert_eq!(b.maximal_frequent.num_edges(), 0);
        assert_eq!(b.minimal_infrequent.num_edges(), 1);
        assert!(b.minimal_infrequent.edge(0).is_empty());
        // z = 0: an itemset is frequent iff it appears in at least one row; the maximal
        // frequent sets are the maximal rows.
        let b = borders_exact(&m, 0);
        assert!(b.maximal_frequent.contains_edge(&vset![4; 0, 1, 2, 3]));
        assert_eq!(b.maximal_frequent.num_edges(), 1);
        assert_eq!(b.minimal_infrequent.num_edges(), 0);
    }
}
