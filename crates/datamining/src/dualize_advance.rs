//! Incremental computation of both borders ("dualize and advance").
//!
//! The algorithms cited in Section 1 of the paper (Gunopulos et al., Mannila–Toivonen,
//! Satoh–Uno, …) compute `IS⁺` and `IS⁻` jointly and incrementally: seed the known
//! families, then repeatedly run the identification check; every failed check yields a
//! new border element, which is added, until the check succeeds.  The number of
//! duality calls is therefore `|IS⁺| + |IS⁻| + 1`.

use crate::identification::{
    identify_with, Identification, IdentificationInstance, NewBorderElement,
};
use crate::relation::BooleanRelation;
use qld_core::{DualError, DualitySolver, QuadLogspaceSolver};
use qld_hypergraph::Hypergraph;

/// Statistics of a dualize-and-advance run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdvanceStats {
    /// Number of identification (duality) checks performed.
    pub identification_calls: usize,
    /// Number of maximal frequent itemsets discovered.
    pub maximal_found: usize,
    /// Number of minimal infrequent itemsets discovered.
    pub minimal_found: usize,
}

/// The complete borders together with run statistics.
#[derive(Debug, Clone)]
pub struct AdvanceResult {
    /// `IS⁺(M, z)`.
    pub maximal_frequent: Hypergraph,
    /// `IS⁻(M, z)`.
    pub minimal_infrequent: Hypergraph,
    /// Run statistics.
    pub stats: AdvanceStats,
}

/// Computes both borders incrementally, using the given duality solver for each
/// identification check.
pub fn dualize_and_advance_with(
    relation: &BooleanRelation,
    z: usize,
    solver: &dyn DualitySolver,
) -> Result<AdvanceResult, DualError> {
    let n = relation.num_items();
    let mut maximal = Hypergraph::new(n);
    let mut minimal = Hypergraph::new(n);
    let mut stats = AdvanceStats::default();
    loop {
        // The instance borrows the growing border families: no per-iteration
        // clone (this loop runs |IS⁺| + |IS⁻| + 1 times).
        let inst = IdentificationInstance::new(relation, z, &minimal, &maximal);
        stats.identification_calls += 1;
        match identify_with(&inst, solver)? {
            Identification::Complete => break,
            Identification::Incomplete(NewBorderElement::MaximalFrequent(s)) => {
                debug_assert!(!maximal.contains_edge(&s), "rediscovered {s}");
                stats.maximal_found += 1;
                maximal.add_edge(s);
            }
            Identification::Incomplete(NewBorderElement::MinimalInfrequent(s)) => {
                debug_assert!(!minimal.contains_edge(&s), "rediscovered {s}");
                stats.minimal_found += 1;
                minimal.add_edge(s);
            }
            Identification::Invalid(bad) => {
                unreachable!("internally maintained borders became invalid: {bad:?}")
            }
        }
    }
    Ok(AdvanceResult {
        maximal_frequent: maximal,
        minimal_infrequent: minimal,
        stats,
    })
}

/// Computes both borders incrementally with the paper's quadratic-logspace solver.
pub fn dualize_and_advance(
    relation: &BooleanRelation,
    z: usize,
) -> Result<AdvanceResult, DualError> {
    dualize_and_advance_with(relation, z, &QuadLogspaceSolver::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::borders::borders_exact;
    use crate::relation::sample_relation as sample;

    #[test]
    fn reproduces_exact_borders_on_the_sample() {
        let m = sample();
        for z in 0..=m.num_rows() {
            let result = dualize_and_advance(&m, z).unwrap();
            let exact = borders_exact(&m, z);
            assert!(
                result
                    .maximal_frequent
                    .same_edge_set(&exact.maximal_frequent),
                "IS⁺ mismatch at z={z}"
            );
            assert!(
                result
                    .minimal_infrequent
                    .same_edge_set(&exact.minimal_infrequent),
                "IS⁻ mismatch at z={z}"
            );
            // one identification call per discovered element, plus the final success
            assert_eq!(
                result.stats.identification_calls,
                result.stats.maximal_found + result.stats.minimal_found + 1
            );
        }
    }

    #[test]
    fn reproduces_exact_borders_on_random_relations() {
        for seed in 0..4 {
            let m = crate::generators::random_relation(6, 14, 0.55, seed);
            for z in [1, 3, 6] {
                let result = dualize_and_advance(&m, z).unwrap();
                let exact = borders_exact(&m, z);
                assert!(
                    result
                        .maximal_frequent
                        .same_edge_set(&exact.maximal_frequent),
                    "seed={seed} z={z}"
                );
                assert!(
                    result
                        .minimal_infrequent
                        .same_edge_set(&exact.minimal_infrequent),
                    "seed={seed} z={z}"
                );
            }
        }
    }

    #[test]
    fn agrees_across_solvers() {
        let m = crate::generators::random_relation(5, 10, 0.5, 99);
        let z = 2;
        let a = dualize_and_advance_with(&m, z, &QuadLogspaceSolver::default()).unwrap();
        let b = dualize_and_advance_with(&m, z, &qld_core::BorosMakinoTreeSolver::new()).unwrap();
        assert!(a.maximal_frequent.same_edge_set(&b.maximal_frequent));
        assert!(a.minimal_infrequent.same_edge_set(&b.minimal_infrequent));
    }
}
