//! Incremental computation of both borders ("dualize and advance").
//!
//! The algorithms cited in Section 1 of the paper (Gunopulos et al., Mannila–Toivonen,
//! Satoh–Uno, …) compute `IS⁺` and `IS⁻` jointly and incrementally: seed the known
//! families, then repeatedly run the identification check; every failed check yields a
//! new border element, which is added, until the check succeeds.  The number of
//! duality calls is therefore `|IS⁺| + |IS⁻| + 1`.

use crate::identification::{
    identify_with, Identification, IdentificationInstance, InvalidBorder, NewBorderElement,
};
use crate::relation::BooleanRelation;
use qld_core::{DualError, DualitySolver, QuadLogspaceSolver};
use qld_hypergraph::Hypergraph;

/// Statistics of a dualize-and-advance run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdvanceStats {
    /// Number of identification (duality) checks performed.
    pub identification_calls: usize,
    /// Number of maximal frequent itemsets discovered.
    pub maximal_found: usize,
    /// Number of minimal infrequent itemsets discovered.
    pub minimal_found: usize,
}

/// The complete borders together with run statistics.
#[derive(Debug, Clone)]
pub struct AdvanceResult {
    /// `IS⁺(M, z)`.
    pub maximal_frequent: Hypergraph,
    /// `IS⁻(M, z)`.
    pub minimal_infrequent: Hypergraph,
    /// Run statistics.
    pub stats: AdvanceStats,
}

/// What one identification step of an [`AdvanceLoop`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdvanceStep {
    /// A new border element was discovered and added to the loop's families.
    Found(NewBorderElement),
    /// The borders are complete; the loop is finished.
    Complete,
    /// A *seeded* family failed validation (only possible on the first step
    /// of a loop constructed with [`AdvanceLoop::with_seeds`] — the loop's
    /// own additions are always valid border elements).
    Invalid(InvalidBorder),
}

/// The dualize-and-advance loop, one identification call at a time.
///
/// [`dualize_and_advance_with`] drives this loop to completion; callers that
/// need to observe (or abort between) the individual border advancements —
/// e.g. a serving layer streaming each new border element to a client — call
/// [`AdvanceLoop::step`] themselves.  Each step is one identification check:
/// it either discovers a new border element (added to the growing families
/// before the step returns) or reports completion.
#[derive(Debug)]
pub struct AdvanceLoop<'a> {
    relation: &'a BooleanRelation,
    z: usize,
    maximal: Hypergraph,
    minimal: Hypergraph,
    stats: AdvanceStats,
    finished: bool,
    /// Set when the loop finished on an invalid seed; re-returned by every
    /// further [`AdvanceLoop::step`].
    invalid: Option<InvalidBorder>,
}

impl<'a> AdvanceLoop<'a> {
    /// A loop starting from empty border families (the common case: compute
    /// `IS⁺` and `IS⁻` from scratch).
    pub fn new(relation: &'a BooleanRelation, z: usize) -> Self {
        let n = relation.num_items();
        AdvanceLoop {
            relation,
            z,
            maximal: Hypergraph::new(n),
            minimal: Hypergraph::new(n),
            stats: AdvanceStats::default(),
            finished: false,
            invalid: None,
        }
    }

    /// A loop resuming from known partial borders.  The seeds are validated
    /// by the first [`AdvanceLoop::step`] (which returns
    /// [`AdvanceStep::Invalid`] when a seed is not actually a border
    /// element); both families must already live over the relation's item
    /// universe.
    pub fn with_seeds(
        relation: &'a BooleanRelation,
        z: usize,
        minimal_infrequent: Hypergraph,
        maximal_frequent: Hypergraph,
    ) -> Self {
        AdvanceLoop {
            relation,
            z,
            maximal: maximal_frequent,
            minimal: minimal_infrequent,
            stats: AdvanceStats::default(),
            finished: false,
            invalid: None,
        }
    }

    /// Runs one identification check with `solver`, growing the border
    /// families by the discovered element (if any).  After
    /// [`AdvanceStep::Complete`] or [`AdvanceStep::Invalid`] the loop is
    /// finished and further calls return [`AdvanceStep::Complete`] /
    /// the same verdict without re-running the solver.
    pub fn step(&mut self, solver: &dyn DualitySolver) -> Result<AdvanceStep, DualError> {
        if self.finished {
            return Ok(match &self.invalid {
                Some(bad) => AdvanceStep::Invalid(bad.clone()),
                None => AdvanceStep::Complete,
            });
        }
        // The instance borrows the growing border families: no per-iteration
        // clone (this loop runs |IS⁺| + |IS⁻| + 1 times).
        let inst = IdentificationInstance::new(self.relation, self.z, &self.minimal, &self.maximal);
        self.stats.identification_calls += 1;
        Ok(match identify_with(&inst, solver)? {
            Identification::Complete => {
                self.finished = true;
                AdvanceStep::Complete
            }
            Identification::Incomplete(element) => {
                match &element {
                    NewBorderElement::MaximalFrequent(s) => {
                        debug_assert!(!self.maximal.contains_edge(s), "rediscovered {s}");
                        self.stats.maximal_found += 1;
                        self.maximal.add_edge(s.clone());
                    }
                    NewBorderElement::MinimalInfrequent(s) => {
                        debug_assert!(!self.minimal.contains_edge(s), "rediscovered {s}");
                        self.stats.minimal_found += 1;
                        self.minimal.add_edge(s.clone());
                    }
                }
                AdvanceStep::Found(element)
            }
            Identification::Invalid(bad) => {
                self.finished = true;
                self.invalid = Some(bad.clone());
                AdvanceStep::Invalid(bad)
            }
        })
    }

    /// Whether the loop has reached completion (or an invalid seed).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The maximal frequent itemsets accumulated so far.
    pub fn maximal_frequent(&self) -> &Hypergraph {
        &self.maximal
    }

    /// The minimal infrequent itemsets accumulated so far.
    pub fn minimal_infrequent(&self) -> &Hypergraph {
        &self.minimal
    }

    /// The run statistics so far.
    pub fn stats(&self) -> AdvanceStats {
        self.stats
    }

    /// Consumes the loop into its result (partial unless
    /// [`AdvanceLoop::is_finished`]).
    pub fn into_result(self) -> AdvanceResult {
        AdvanceResult {
            maximal_frequent: self.maximal,
            minimal_infrequent: self.minimal,
            stats: self.stats,
        }
    }
}

/// Computes both borders incrementally, using the given duality solver for each
/// identification check.
pub fn dualize_and_advance_with(
    relation: &BooleanRelation,
    z: usize,
    solver: &dyn DualitySolver,
) -> Result<AdvanceResult, DualError> {
    let mut advance = AdvanceLoop::new(relation, z);
    loop {
        match advance.step(solver)? {
            AdvanceStep::Found(_) => {}
            AdvanceStep::Complete => break,
            AdvanceStep::Invalid(bad) => {
                unreachable!("internally maintained borders became invalid: {bad:?}")
            }
        }
    }
    Ok(advance.into_result())
}

/// Computes both borders incrementally with the paper's quadratic-logspace solver.
pub fn dualize_and_advance(
    relation: &BooleanRelation,
    z: usize,
) -> Result<AdvanceResult, DualError> {
    dualize_and_advance_with(relation, z, &QuadLogspaceSolver::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::borders::borders_exact;
    use crate::relation::sample_relation as sample;

    #[test]
    fn reproduces_exact_borders_on_the_sample() {
        let m = sample();
        for z in 0..=m.num_rows() {
            let result = dualize_and_advance(&m, z).unwrap();
            let exact = borders_exact(&m, z);
            assert!(
                result
                    .maximal_frequent
                    .same_edge_set(&exact.maximal_frequent),
                "IS⁺ mismatch at z={z}"
            );
            assert!(
                result
                    .minimal_infrequent
                    .same_edge_set(&exact.minimal_infrequent),
                "IS⁻ mismatch at z={z}"
            );
            // one identification call per discovered element, plus the final success
            assert_eq!(
                result.stats.identification_calls,
                result.stats.maximal_found + result.stats.minimal_found + 1
            );
        }
    }

    #[test]
    fn reproduces_exact_borders_on_random_relations() {
        for seed in 0..4 {
            let m = crate::generators::random_relation(6, 14, 0.55, seed);
            for z in [1, 3, 6] {
                let result = dualize_and_advance(&m, z).unwrap();
                let exact = borders_exact(&m, z);
                assert!(
                    result
                        .maximal_frequent
                        .same_edge_set(&exact.maximal_frequent),
                    "seed={seed} z={z}"
                );
                assert!(
                    result
                        .minimal_infrequent
                        .same_edge_set(&exact.minimal_infrequent),
                    "seed={seed} z={z}"
                );
            }
        }
    }

    #[test]
    fn stepwise_loop_matches_the_driven_run_and_resumes_from_seeds() {
        let m = sample();
        let z = 2;
        let solver = QuadLogspaceSolver::default();
        let exact = borders_exact(&m, z);

        // Drive the loop by hand: every step but the last finds an element,
        // and the accumulated families equal the exact borders.
        let mut advance = AdvanceLoop::new(&m, z);
        let mut found = 0usize;
        loop {
            match advance.step(&solver).unwrap() {
                AdvanceStep::Found(_) => found += 1,
                AdvanceStep::Complete => break,
                AdvanceStep::Invalid(bad) => panic!("unexpected invalid: {bad:?}"),
            }
        }
        assert!(advance.is_finished());
        assert_eq!(
            found,
            exact.maximal_frequent.num_edges() + exact.minimal_infrequent.num_edges()
        );
        assert_eq!(advance.stats().identification_calls, found + 1);
        assert!(advance
            .maximal_frequent()
            .same_edge_set(&exact.maximal_frequent));
        assert!(advance
            .minimal_infrequent()
            .same_edge_set(&exact.minimal_infrequent));
        // A finished loop stays finished without re-running the solver.
        assert_eq!(advance.step(&solver).unwrap(), AdvanceStep::Complete);

        // Resuming from the complete borders finishes in one step.
        let mut seeded = AdvanceLoop::with_seeds(
            &m,
            z,
            exact.minimal_infrequent.clone(),
            exact.maximal_frequent.clone(),
        );
        assert_eq!(seeded.step(&solver).unwrap(), AdvanceStep::Complete);
        assert_eq!(seeded.stats().identification_calls, 1);

        // An invalid seed is reported (and finishes the loop) instead of
        // being silently adopted: {0} is frequent but not maximal in the
        // sample at z=2.
        let bad = Hypergraph::from_edges(4, [qld_hypergraph::vset![4; 0]]);
        let mut invalid = AdvanceLoop::with_seeds(&m, z, Hypergraph::new(4), bad);
        assert!(matches!(
            invalid.step(&solver).unwrap(),
            AdvanceStep::Invalid(InvalidBorder::NotMaximalFrequent(_))
        ));
        assert!(invalid.is_finished());
        // The verdict is sticky: a finished-on-invalid loop keeps reporting
        // Invalid (never Complete) without re-running the solver.
        assert!(matches!(
            invalid.step(&solver).unwrap(),
            AdvanceStep::Invalid(InvalidBorder::NotMaximalFrequent(_))
        ));
    }

    #[test]
    fn agrees_across_solvers() {
        let m = crate::generators::random_relation(5, 10, 0.5, 99);
        let z = 2;
        let a = dualize_and_advance_with(&m, z, &QuadLogspaceSolver::default()).unwrap();
        let b = dualize_and_advance_with(&m, z, &qld_core::BorosMakinoTreeSolver::new()).unwrap();
        assert!(a.maximal_frequent.same_edge_set(&b.maximal_frequent));
        assert!(a.minimal_infrequent.same_edge_set(&b.minimal_infrequent));
    }
}
