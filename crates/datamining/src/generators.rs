//! Synthetic Boolean relations for tests, examples, and experiments.
//!
//! The paper has no accompanying data sets, so the data-mining experiments run on
//! synthetic relations: uniformly random relations of a given density, and
//! "market-basket"-like relations where rows are noisy copies of a few planted
//! patterns — the situation in which maximal frequent itemsets are interesting.

use crate::relation::BooleanRelation;
use alloc::vec::Vec;
use qld_hypergraph::{Vertex, VertexSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A uniformly random relation: each of `rows × items` cells is 1 with probability
/// `density`.
pub fn random_relation(items: usize, rows: usize, density: f64, seed: u64) -> BooleanRelation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = BooleanRelation::new(items);
    for _ in 0..rows {
        let mut row = VertexSet::empty(items);
        for i in 0..items {
            if rng.gen_bool(density.clamp(0.0, 1.0)) {
                row.insert(Vertex::from(i));
            }
        }
        m.add_row(row);
    }
    m
}

/// A planted-pattern relation: `patterns` random itemsets of size `pattern_size` are
/// chosen; each row is a randomly chosen pattern with items dropped with probability
/// `noise` and a few random extra items added.
pub fn planted_pattern_relation(
    items: usize,
    rows: usize,
    patterns: usize,
    pattern_size: usize,
    noise: f64,
    seed: u64,
) -> BooleanRelation {
    let mut rng = StdRng::seed_from_u64(seed);
    let pattern_size = pattern_size.min(items).max(1);
    let patterns: Vec<VertexSet> = (0..patterns.max(1))
        .map(|_| {
            let mut p = VertexSet::empty(items);
            while p.len() < pattern_size {
                p.insert(Vertex::from(rng.gen_range(0..items)));
            }
            p
        })
        .collect();
    let mut m = BooleanRelation::new(items);
    for _ in 0..rows {
        let base = &patterns[rng.gen_range(0..patterns.len())];
        let mut row = VertexSet::empty(items);
        for v in base.iter() {
            if !rng.gen_bool(noise.clamp(0.0, 1.0)) {
                row.insert(v);
            }
        }
        // sprinkle a little extra noise
        for i in 0..items {
            if rng.gen_bool(noise.clamp(0.0, 1.0) / 2.0) {
                row.insert(Vertex::from(i));
            }
        }
        m.add_row(row);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_relation_shape_and_determinism() {
        let a = random_relation(8, 20, 0.4, 5);
        let b = random_relation(8, 20, 0.4, 5);
        assert_eq!(a, b);
        assert_eq!(a.num_items(), 8);
        assert_eq!(a.num_rows(), 20);
        let c = random_relation(8, 20, 0.4, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn density_extremes() {
        let empty = random_relation(6, 10, 0.0, 1);
        assert!(empty.rows().iter().all(|r| r.is_empty()));
        let full = random_relation(6, 10, 1.0, 1);
        assert!(full.rows().iter().all(|r| r.len() == 6));
    }

    #[test]
    fn planted_patterns_make_their_items_frequent() {
        let m = planted_pattern_relation(10, 60, 2, 4, 0.05, 42);
        assert_eq!(m.num_rows(), 60);
        // with low noise, at least one item has high support
        let best = (0..10usize)
            .map(|i| m.frequency(&VertexSet::singleton(10, Vertex::from(i))))
            .max()
            .unwrap();
        assert!(best >= 20, "best singleton support {best}");
    }
}
