//! The MaxFreq-MinInfreq-Identification problem (Proposition 1.1).
//!
//! Given a relation `M`, a threshold `z`, a family `G ⊆ IS⁻(M, z)` of known minimal
//! infrequent itemsets and a family `H ⊆ IS⁺(M, z)` of known maximal frequent itemsets,
//! decide whether the borders are complete — i.e. whether `H = IS⁺` and `G = IS⁻`.  By
//! the result of Gunopulos et al. recalled in the paper, this holds **iff `G = tr(Hᶜ)`**,
//! so the decision is a single `DUAL` instance; and when it fails, the duality witness
//! converts into a *new* border element (a maximal frequent itemset missing from `H` or
//! a minimal infrequent itemset missing from `G`).

use crate::relation::BooleanRelation;
use alloc::borrow::Cow;
use qld_core::{DualError, DualityResult, DualitySolver, NonDualWitness, QuadLogspaceSolver};
use qld_hypergraph::{Hypergraph, VertexSet};

/// Why an input family is not a valid partial border.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidBorder {
    /// A claimed maximal frequent itemset is not maximal frequent.
    NotMaximalFrequent(VertexSet),
    /// A claimed minimal infrequent itemset is not minimal infrequent.
    NotMinimalInfrequent(VertexSet),
}

/// A newly discovered border element, returned when identification fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NewBorderElement {
    /// A maximal frequent itemset that is not in the given `H`.
    MaximalFrequent(VertexSet),
    /// A minimal infrequent itemset that is not in the given `G`.
    MinimalInfrequent(VertexSet),
}

/// The outcome of the identification check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Identification {
    /// The borders are complete: `H = IS⁺(M, z)` and `G = IS⁻(M, z)`.
    Complete,
    /// The borders are incomplete; a concrete new border element is attached.
    Incomplete(NewBorderElement),
    /// One of the inputs is not even a subset of the corresponding border.
    Invalid(InvalidBorder),
}

/// An instance of the identification problem.
///
/// The border families are **borrowed**, not owned: identification is the
/// inner-loop step of `dualize_and_advance`, which re-asks the question after
/// every discovered border element, and cloning the (growing) families once
/// per call used to dominate that loop's constant factor.
#[derive(Debug, Clone, Copy)]
pub struct IdentificationInstance<'a> {
    /// The Boolean-valued relation `M`.
    pub relation: &'a BooleanRelation,
    /// The frequency threshold `z`.
    pub threshold: usize,
    /// The known minimal infrequent itemsets `G ⊆ IS⁻(M, z)`.
    pub minimal_infrequent: &'a Hypergraph,
    /// The known maximal frequent itemsets `H ⊆ IS⁺(M, z)`.
    pub maximal_frequent: &'a Hypergraph,
}

impl<'a> IdentificationInstance<'a> {
    /// Builds an instance (no validation is performed here; see [`identify`]).
    pub fn new(
        relation: &'a BooleanRelation,
        threshold: usize,
        minimal_infrequent: &'a Hypergraph,
        maximal_frequent: &'a Hypergraph,
    ) -> Self {
        IdentificationInstance {
            relation,
            threshold,
            minimal_infrequent,
            maximal_frequent,
        }
    }

    /// The `DUAL` instance `(Hᶜ, G)` of Proposition 1.1 (is `G = tr(Hᶜ)`?).
    ///
    /// `Hᶜ` is necessarily a fresh hypergraph (the complements are computed),
    /// but `G` is only copied when it has to be regrown to the relation's item
    /// universe — in the common case (families already over the full
    /// universe, as `dualize_and_advance` maintains them) it is borrowed
    /// as-is.
    pub fn dual_instance(&self) -> (Hypergraph, Cow<'a, Hypergraph>) {
        let mut h_c = self.maximal_frequent.complement_edges();
        // Ensure the complements live over the full item universe even when H is empty.
        if h_c.num_vertices() < self.relation.num_items() {
            h_c = Hypergraph::from_edges(self.relation.num_items(), h_c.edges().iter().cloned());
        }
        let g = if self.minimal_infrequent.num_vertices() < self.relation.num_items() {
            Cow::Owned(Hypergraph::from_edges(
                self.relation.num_items(),
                self.minimal_infrequent.edges().iter().cloned(),
            ))
        } else {
            Cow::Borrowed(self.minimal_infrequent)
        };
        (h_c, g)
    }
}

/// Decides the identification problem with the given duality solver.
pub fn identify_with(
    instance: &IdentificationInstance<'_>,
    solver: &dyn DualitySolver,
) -> Result<Identification, DualError> {
    let m = instance.relation;
    let z = instance.threshold;
    // Validation: G ⊆ IS⁻ and H ⊆ IS⁺.
    for e in instance.maximal_frequent.edges() {
        if !m.is_maximal_frequent(e, z) {
            return Ok(Identification::Invalid(InvalidBorder::NotMaximalFrequent(
                e.clone(),
            )));
        }
    }
    for e in instance.minimal_infrequent.edges() {
        if !m.is_minimal_infrequent(e, z) {
            return Ok(Identification::Invalid(
                InvalidBorder::NotMinimalInfrequent(e.clone()),
            ));
        }
    }

    // Degenerate corner: the empty itemset is infrequent (z ≥ |M|).  Then IS⁺ = ∅ and
    // IS⁻ = {∅}; handle directly because {∅} is not a "simple hypergraph with
    // non-empty edges" in the sense the decomposition expects.
    if !m.is_frequent(&VertexSet::empty(m.num_items()), z) {
        let g_complete = instance.minimal_infrequent.num_edges() == 1
            && instance.minimal_infrequent.edge(0).is_empty();
        let h_complete = instance.maximal_frequent.is_empty();
        return Ok(if g_complete && h_complete {
            Identification::Complete
        } else {
            Identification::Incomplete(NewBorderElement::MinimalInfrequent(VertexSet::empty(
                m.num_items(),
            )))
        });
    }

    let (h_c, g) = instance.dual_instance();
    match solver.decide(&h_c, g.as_ref())? {
        DualityResult::Dual => Ok(Identification::Complete),
        DualityResult::NotDual(witness) => {
            let seed = seed_from_witness(m, z, instance, &witness);
            Ok(Identification::Incomplete(classify_seed(m, z, seed)))
        }
    }
}

/// Decides the identification problem with the paper's quadratic-logspace solver.
pub fn identify(instance: &IdentificationInstance<'_>) -> Result<Identification, DualError> {
    identify_with(instance, &QuadLogspaceSolver::default())
}

/// Extracts from the duality witness a *seed* itemset `Z` that is not contained in any
/// known maximal frequent itemset and contains no known minimal infrequent itemset.
fn seed_from_witness(
    m: &BooleanRelation,
    z: usize,
    instance: &IdentificationInstance<'_>,
    witness: &NonDualWitness,
) -> VertexSet {
    let n = m.num_items();
    match witness {
        // T is a transversal of Hᶜ (so T ⊄ Y for every Y ∈ H) containing no G-member.
        NonDualWitness::NewTransversalOfG(t) => {
            let mut t = t.clone();
            t.grow(n);
            t
        }
        // T is a transversal of G containing no Hᶜ-member; its complement W satisfies
        // W ⊄ Y for every Y ∈ H and contains no G-member.
        NonDualWitness::NewTransversalOfH(t) => {
            let mut t = t.clone();
            t.grow(n);
            t.complement(n)
        }
        // A disjoint pair Hᶜ-edge / G-edge would mean some known minimal infrequent
        // itemset is contained in some known maximal frequent itemset — impossible once
        // the inputs are validated; fall back to growing the empty itemset (which is
        // frequent here) into a maximal frequent itemset.
        NonDualWitness::DisjointEdges { .. } => {
            debug_assert!(false, "disjoint-edge witness with validated borders");
            m.grow_to_maximal_frequent(&VertexSet::empty(n), z);
            let _ = instance;
            VertexSet::empty(n)
        }
    }
}

/// Turns a seed itemset into a new border element: grow it if frequent, shrink it if
/// infrequent.
fn classify_seed(m: &BooleanRelation, z: usize, seed: VertexSet) -> NewBorderElement {
    if m.is_frequent(&seed, z) {
        NewBorderElement::MaximalFrequent(m.grow_to_maximal_frequent(&seed, z))
    } else {
        NewBorderElement::MinimalInfrequent(m.shrink_to_minimal_infrequent(&seed, z))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::borders::borders_exact;
    use crate::relation::sample_relation as sample;
    use qld_hypergraph::{vset, Hypergraph};

    #[test]
    fn complete_borders_are_recognized() {
        let m = sample();
        let z = 2;
        let b = borders_exact(&m, z);
        let inst = IdentificationInstance::new(&m, z, &b.minimal_infrequent, &b.maximal_frequent);
        assert_eq!(identify(&inst).unwrap(), Identification::Complete);
    }

    #[test]
    fn missing_maximal_frequent_itemset_is_discovered() {
        let m = sample();
        let z = 2;
        let b = borders_exact(&m, z);
        let mut partial_h = b.maximal_frequent.clone();
        let removed = partial_h.remove_edge(1);
        let inst = IdentificationInstance::new(&m, z, &b.minimal_infrequent, &partial_h);
        match identify(&inst).unwrap() {
            Identification::Incomplete(NewBorderElement::MaximalFrequent(s)) => {
                assert!(m.is_maximal_frequent(&s, z));
                assert!(!partial_h.contains_edge(&s));
                // with only one element missing, it must be exactly the removed one
                assert_eq!(s, removed);
            }
            other => panic!("expected a new maximal frequent itemset, got {other:?}"),
        }
    }

    #[test]
    fn missing_minimal_infrequent_itemset_is_discovered() {
        let m = sample();
        let z = 2;
        let b = borders_exact(&m, z);
        let mut partial_g = b.minimal_infrequent.clone();
        let removed = partial_g.remove_edge(0);
        let inst = IdentificationInstance::new(&m, z, &partial_g, &b.maximal_frequent);
        match identify(&inst).unwrap() {
            Identification::Incomplete(NewBorderElement::MinimalInfrequent(s)) => {
                assert!(m.is_minimal_infrequent(&s, z));
                assert!(!partial_g.contains_edge(&s));
                assert_eq!(s, removed);
            }
            other => panic!("expected a new minimal infrequent itemset, got {other:?}"),
        }
    }

    #[test]
    fn invalid_inputs_are_flagged() {
        let m = sample();
        let z = 2;
        let b = borders_exact(&m, z);
        // {0} is frequent but not maximal
        let bad_h = Hypergraph::from_edges(4, [vset![4; 0]]);
        let inst = IdentificationInstance::new(&m, z, &b.minimal_infrequent, &bad_h);
        assert!(matches!(
            identify(&inst).unwrap(),
            Identification::Invalid(InvalidBorder::NotMaximalFrequent(_))
        ));
        // {0,3} is infrequent but not minimal
        let bad_g = Hypergraph::from_edges(4, [vset![4; 0, 3]]);
        let inst = IdentificationInstance::new(&m, z, &bad_g, &b.maximal_frequent);
        assert!(matches!(
            identify(&inst).unwrap(),
            Identification::Invalid(InvalidBorder::NotMinimalInfrequent(_))
        ));
    }

    #[test]
    fn empty_borders_yield_a_first_element() {
        let m = sample();
        let z = 2;
        let empty = Hypergraph::new(4);
        let inst = IdentificationInstance::new(&m, z, &empty, &empty);
        match identify(&inst).unwrap() {
            Identification::Incomplete(elem) => match elem {
                NewBorderElement::MaximalFrequent(s) => assert!(m.is_maximal_frequent(&s, z)),
                NewBorderElement::MinimalInfrequent(s) => {
                    assert!(m.is_minimal_infrequent(&s, z))
                }
            },
            other => panic!("expected incomplete, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_threshold_where_nothing_is_frequent() {
        let m = sample();
        let z = m.num_rows(); // even ∅ is infrequent
        let empty = Hypergraph::new(4);
        let inst = IdentificationInstance::new(&m, z, &empty, &empty);
        match identify(&inst).unwrap() {
            Identification::Incomplete(NewBorderElement::MinimalInfrequent(s)) => {
                assert!(s.is_empty())
            }
            other => panic!("unexpected {other:?}"),
        }
        // and with the correct borders it is complete
        let g = Hypergraph::from_edges(4, [VertexSet::empty(4)]);
        let inst = IdentificationInstance::new(&m, z, &g, &empty);
        assert_eq!(identify(&inst).unwrap(), Identification::Complete);
    }
}
