//! # qld-datamining
//!
//! The data-mining application of the monotone duality problem (Section 1 of the paper,
//! Proposition 1.1): maximal frequent itemsets, minimal infrequent itemsets, and the
//! MaxFreq-MinInfreq-Identification problem.
//!
//! * [`BooleanRelation`] — Boolean-valued relations, frequency `f(U)`, and the
//!   frequent/maximal/minimal predicates with the paper's strict threshold semantics
//!   (`U` frequent iff `f(U) > z`);
//! * [`borders`] — exhaustive ground-truth computation of `IS⁺` and `IS⁻`;
//! * [`mod@apriori`] — the classical level-wise miner (baseline);
//! * [`identification`] — the reduction of MaxFreq-MinInfreq-Identification to `DUAL`
//!   (`G = tr(Hᶜ)`), with recovery of a new border element from the duality witness;
//! * [`dualize_advance`] — incremental computation of both borders driven by repeated
//!   identification checks;
//! * [`generators`] — synthetic relations used by tests and experiments.

#![cfg_attr(all(not(feature = "std"), not(test)), no_std)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

extern crate alloc;

pub mod apriori;
pub mod borders;
pub mod dualize_advance;
pub mod generators;
pub mod identification;
pub mod relation;

pub use apriori::{apriori, AprioriResult};
pub use borders::{borders_exact, Borders};
pub use dualize_advance::{
    dualize_and_advance, dualize_and_advance_with, AdvanceLoop, AdvanceResult, AdvanceStep,
};
pub use identification::{
    identify, identify_with, Identification, IdentificationInstance, NewBorderElement,
};
pub use relation::BooleanRelation;
