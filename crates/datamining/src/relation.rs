//! Boolean-valued relations over a set of items.
//!
//! Section 1 of the paper phrases the data-mining application over "a Boolean-valued
//! data relation `M` over a set `S` of attributes called items" together with a
//! threshold `z` (`0 < z ≤ |M|`).  Each tuple `t` contributes the itemset
//! `items(t) = {A ∈ S | t[A] = 1}`; the frequency `f(U)` of an itemset `U` is the
//! number of tuples whose itemset contains `U`, and `U` is *frequent* if `f(U) > z`.

use alloc::vec::Vec;
use core::fmt;
use qld_hypergraph::{Vertex, VertexSet};

/// A Boolean-valued relation: a multiset of rows, each identified with its itemset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BooleanRelation {
    num_items: usize,
    rows: Vec<VertexSet>,
}

impl BooleanRelation {
    /// Creates an empty relation over `num_items` items.
    pub fn new(num_items: usize) -> Self {
        BooleanRelation {
            num_items,
            rows: Vec::new(),
        }
    }

    /// Creates a relation from explicit rows (each row = set of items valued 1).
    pub fn from_rows<I: IntoIterator<Item = VertexSet>>(num_items: usize, rows: I) -> Self {
        let mut r = BooleanRelation::new(num_items);
        for row in rows {
            r.add_row(row);
        }
        r
    }

    /// Creates a relation from rows given as item-index slices.
    pub fn from_index_rows(num_items: usize, rows: &[&[usize]]) -> Self {
        BooleanRelation::from_rows(
            num_items,
            rows.iter()
                .map(|r| VertexSet::from_indices(num_items, r.iter().copied())),
        )
    }

    /// Adds a row.
    pub fn add_row(&mut self, mut row: VertexSet) {
        row.grow(self.num_items);
        self.rows.push(row);
    }

    /// Number of items (attributes) `|S|`.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of tuples `|M|`.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The rows (as itemsets `items(t)`).
    pub fn rows(&self) -> &[VertexSet] {
        &self.rows
    }

    /// The frequency `f(U)`: the number of tuples `t` with `U ⊆ items(t)`.
    pub fn frequency(&self, itemset: &VertexSet) -> usize {
        self.rows.iter().filter(|r| itemset.is_subset(r)).count()
    }

    /// Whether `U` is frequent for threshold `z`, i.e. `f(U) > z` (strict, as in the
    /// paper).
    pub fn is_frequent(&self, itemset: &VertexSet, z: usize) -> bool {
        self.frequency(itemset) > z
    }

    /// Grows a frequent itemset to a **maximal** frequent itemset containing it, adding
    /// items in increasing order.  Panics (in debug builds) if the seed is infrequent.
    pub fn grow_to_maximal_frequent(&self, seed: &VertexSet, z: usize) -> VertexSet {
        debug_assert!(self.is_frequent(seed, z), "seed itemset is not frequent");
        let mut current = seed.clone();
        current.grow(self.num_items);
        for i in 0..self.num_items {
            let v = Vertex::from(i);
            if current.contains(v) {
                continue;
            }
            // Try the item in place and undo if the grown set falls below threshold.
            current.insert(v);
            if !self.is_frequent(&current, z) {
                current.remove(v);
            }
        }
        current
    }

    /// Shrinks an infrequent itemset to a **minimal** infrequent itemset contained in
    /// it, removing items in increasing order.  Panics (in debug builds) if the seed is
    /// frequent.
    pub fn shrink_to_minimal_infrequent(&self, seed: &VertexSet, z: usize) -> VertexSet {
        debug_assert!(!self.is_frequent(seed, z), "seed itemset is frequent");
        let mut current = seed.clone();
        current.grow(self.num_items);
        for v in seed.iter() {
            current.remove(v);
            if self.is_frequent(&current, z) {
                current.insert(v);
            }
        }
        current
    }

    /// Whether `U` is a *maximal* frequent itemset (`U ∈ IS⁺(M, z)`).
    pub fn is_maximal_frequent(&self, itemset: &VertexSet, z: usize) -> bool {
        if !self.is_frequent(itemset, z) {
            return false;
        }
        (0..self.num_items).all(|i| {
            let v = Vertex::from(i);
            itemset.contains(v) || !self.is_frequent(&itemset.with(v), z)
        })
    }

    /// Whether `U` is a *minimal* infrequent itemset (`U ∈ IS⁻(M, z)`).
    pub fn is_minimal_infrequent(&self, itemset: &VertexSet, z: usize) -> bool {
        if self.is_frequent(itemset, z) {
            return false;
        }
        itemset
            .iter()
            .all(|v| self.is_frequent(&itemset.without(v), z))
    }
}

impl fmt::Display for BooleanRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# items={} rows={}", self.num_items, self.rows.len())?;
        for row in &self.rows {
            for i in 0..self.num_items {
                write!(f, "{}", u8::from(row.contains(Vertex::from(i))))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The running example used across this crate's tests: 5 rows over 4 items.
#[cfg(test)]
pub(crate) fn sample_relation() -> BooleanRelation {
    BooleanRelation::from_index_rows(
        4,
        &[&[0, 1, 2], &[0, 1], &[0, 2, 3], &[1, 2], &[0, 1, 2, 3]],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_hypergraph::vset;

    fn sample() -> BooleanRelation {
        sample_relation()
    }

    #[test]
    fn frequencies() {
        let m = sample();
        assert_eq!(m.num_items(), 4);
        assert_eq!(m.num_rows(), 5);
        assert_eq!(m.frequency(&vset![4;]), 5);
        assert_eq!(m.frequency(&vset![4; 0]), 4);
        assert_eq!(m.frequency(&vset![4; 0, 1]), 3);
        assert_eq!(m.frequency(&vset![4; 3]), 2);
        assert_eq!(m.frequency(&vset![4; 0, 1, 2, 3]), 1);
        // threshold semantics are strict
        assert!(m.is_frequent(&vset![4; 0, 1], 2));
        assert!(!m.is_frequent(&vset![4; 0, 1], 3));
    }

    #[test]
    fn maximal_and_minimal_predicates() {
        let m = sample();
        let z = 2;
        // {0,1} has frequency 3 > 2 and cannot be extended while staying > 2.
        assert!(m.is_maximal_frequent(&vset![4; 0, 1], z));
        assert!(!m.is_maximal_frequent(&vset![4; 0], z)); // extensible to {0,1} or {0,2}
        assert!(!m.is_maximal_frequent(&vset![4; 3], z)); // infrequent
                                                          // {3} has frequency 2 ≤ 2 and the empty set is frequent.
        assert!(m.is_minimal_infrequent(&vset![4; 3], z));
        assert!(!m.is_minimal_infrequent(&vset![4; 0, 3], z)); // {3} already infrequent
        assert!(!m.is_minimal_infrequent(&vset![4; 0], z)); // frequent
    }

    #[test]
    fn grow_and_shrink() {
        let m = sample();
        let z = 2;
        let grown = m.grow_to_maximal_frequent(&vset![4; 1], z);
        assert!(m.is_maximal_frequent(&grown, z));
        assert!(vset![4; 1].is_subset(&grown));
        let shrunk = m.shrink_to_minimal_infrequent(&vset![4; 0, 2, 3], z);
        assert!(m.is_minimal_infrequent(&shrunk, z));
        assert!(shrunk.is_subset(&vset![4; 0, 2, 3]));
    }

    #[test]
    fn rows_grow_universe() {
        let mut m = BooleanRelation::new(2);
        m.add_row(vset![2; 0]);
        assert_eq!(m.rows()[0].capacity(), 2);
        let text = m.to_string();
        assert!(text.contains("items=2 rows=1"));
        assert!(text.contains("10"));
    }
}
