//! The engine's result cache: bounded LRU with optional TTL expiry.
//!
//! Keys are the canonical request encodings of [`crate::request::Request::cache_key`],
//! so syntactically different but semantically identical requests share one
//! entry: permuted or absorbed (non-minimal) edges for `check`/`enumerate`,
//! permuted edges and reordered relation rows for `mine`/`keys`.
//! The cache stores finished outcomes, not parsed inputs: repeated requests
//! skip the solver entirely.
//!
//! Eviction is **least-recently-used**: every hit refreshes an entry's
//! recency, and inserting a new key into a full cache removes the entry that
//! has gone longest without being touched (a generation-clock design — a
//! monotone tick per touch, with a `BTreeMap` recency index from tick to key,
//! so both the hit path and the eviction path are `O(log n)`).  An optional
//! TTL additionally expires entries a fixed duration after they were stored;
//! expired entries answer as misses and are removed on access.  All four
//! outcomes — hit, miss, eviction, expiration — are counted and exposed via
//! [`CacheStats`] (also available on the wire through the `stats` request,
//! see `docs/WIRE.md`).

use crate::lock_ignoring_poison;
use crate::ops::ExecInfo;
use crate::response::{EngineError, Outcome};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A finished result as stored in the cache.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// The outcome (or rendered error) of the first execution.
    pub outcome: Result<Outcome, EngineError>,
    /// Telemetry of the first execution (solver name, peak bits, call count).
    pub info: ExecInfo,
}

/// Counters of a [`QueryCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of lookups answered from the cache.
    pub hits: u64,
    /// Number of lookups that missed (including expired entries).
    pub misses: u64,
    /// Number of entries currently stored.
    pub entries: u64,
    /// Number of live entries evicted to make room for new keys (LRU).
    pub evictions: u64,
    /// Number of entries removed because they outlived the TTL.
    pub expirations: u64,
    /// The maximum number of entries the cache will hold.
    pub capacity: u64,
}

/// Default bound on stored entries (see [`QueryCache::with_capacity`]).
pub const DEFAULT_CACHE_CAPACITY: usize = 65_536;

/// One stored entry: the result plus its recency tick and insertion time.
/// The result is `Arc`-shared with every hit (and with snapshot exports), so
/// replaying a hot streamed key never deep-copies the stored chunk vectors.
#[derive(Debug)]
struct Entry {
    result: Arc<CachedResult>,
    /// Generation-clock value of the last touch; index into `recency`.
    tick: u64,
    /// When the entry was stored (TTL is measured from here; hits do not
    /// refresh it).
    stored_at: Instant,
}

/// The mutexed interior: the key map plus the recency index.  Keys are
/// `Arc<str>` shared between the two containers: canonical keys are complete
/// request encodings (potentially kilobytes), so neither the second index nor
/// the hit-path recency bump should copy them.
#[derive(Debug, Default)]
struct Inner {
    map: HashMap<Arc<str>, Entry>,
    /// Recency index: tick → key, ascending ticks are least recently used.
    recency: BTreeMap<u64, Arc<str>>,
    /// The generation clock; strictly increases on every touch.
    tick: u64,
}

/// A shared, thread-safe LRU map from canonical request keys to finished
/// results.
///
/// The cache is bounded: storing a new key into a full cache evicts the
/// least-recently-used entry (every [`QueryCache::get`] hit counts as a use).
/// With a TTL configured, entries older than the TTL answer as misses and are
/// dropped.  This keeps memory bounded on long-running daemon sessions while
/// letting hot keys survive arbitrary amounts of mostly-unique traffic.
#[derive(Debug)]
pub struct QueryCache {
    inner: Mutex<Inner>,
    capacity: usize,
    ttl: Option<Duration>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    expirations: AtomicU64,
}

impl Default for QueryCache {
    fn default() -> Self {
        QueryCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl QueryCache {
    /// An empty cache with the default entry bound and no TTL.
    pub fn new() -> Self {
        QueryCache::default()
    }

    /// An empty cache holding at most `capacity` entries, no TTL.
    pub fn with_capacity(capacity: usize) -> Self {
        QueryCache::with_limits(capacity, None)
    }

    /// An empty cache holding at most `capacity` entries whose entries expire
    /// `ttl` after insertion (when `ttl` is `Some`).
    pub fn with_limits(capacity: usize, ttl: Option<Duration>) -> Self {
        QueryCache {
            inner: Mutex::new(Inner::default()),
            capacity,
            ttl,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expirations: AtomicU64::new(0),
        }
    }

    /// Whether `entry` has outlived the configured TTL.
    fn expired(&self, entry: &Entry) -> bool {
        self.ttl.is_some_and(|ttl| entry.stored_at.elapsed() >= ttl)
    }

    /// Looks up a canonical key, counting the hit or miss.  A hit refreshes
    /// the entry's recency; an expired entry is removed and counts as a miss.
    /// The returned handle shares the stored result (no deep copy per hit).
    pub fn get(&self, key: &str) -> Option<Arc<CachedResult>> {
        let mut inner = lock_ignoring_poison(&self.inner);
        let Some(entry) = inner.map.get(key) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        if self.expired(entry) {
            let old_tick = entry.tick;
            inner.map.remove(key);
            inner.recency.remove(&old_tick);
            self.expirations.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        // Touch: move the entry to the most-recent end of the recency index
        // (an Arc clone of the stored key, not a copy of its bytes).
        inner.tick += 1;
        let tick = inner.tick;
        let (shared_key, entry) = inner.map.get_key_value(key).expect("entry checked above");
        let shared_key = Arc::clone(shared_key);
        let old_tick = entry.tick;
        let result = Arc::clone(&entry.result);
        inner.map.get_mut(key).expect("entry checked above").tick = tick;
        inner.recency.remove(&old_tick);
        inner.recency.insert(tick, shared_key);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(result)
    }

    /// Stores a finished result under its canonical key, evicting the
    /// least-recently-used entry if the cache is full.  Re-inserting an
    /// existing key refreshes both its value and its recency.
    pub fn insert(&self, key: String, result: CachedResult) {
        self.insert_stored_at(key, Arc::new(result), Instant::now());
    }

    /// [`QueryCache::insert`] with an explicit storage instant, so snapshot
    /// restoration can backdate entries and keep their TTL clocks running.
    fn insert_stored_at(&self, key: String, result: Arc<CachedResult>, stored_at: Instant) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = lock_ignoring_poison(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((shared_key, existing)) = inner.map.get_key_value(key.as_str()) {
            let shared_key = Arc::clone(shared_key);
            let old_tick = existing.tick;
            let existing = inner
                .map
                .get_mut(key.as_str())
                .expect("entry checked above");
            existing.result = result;
            existing.tick = tick;
            existing.stored_at = stored_at;
            inner.recency.remove(&old_tick);
            inner.recency.insert(tick, shared_key);
            return;
        }
        if inner.map.len() >= self.capacity {
            // Evict the least-recently-used entry (the smallest tick).  If it
            // happens to be past its TTL this is an expiration, not a "real"
            // eviction of live data.
            if let Some((&lru_tick, _)) = inner.recency.iter().next() {
                let lru_key = inner
                    .recency
                    .remove(&lru_tick)
                    .expect("recency entry just observed");
                let victim = inner.map.remove(&lru_key);
                match victim {
                    Some(v) if self.expired(&v) => self.expirations.fetch_add(1, Ordering::Relaxed),
                    _ => self.evictions.fetch_add(1, Ordering::Relaxed),
                };
            }
        }
        let key: Arc<str> = key.into();
        inner.recency.insert(tick, Arc::clone(&key));
        inner.map.insert(
            key,
            Entry {
                result,
                tick,
                stored_at,
            },
        );
    }

    /// Current counters.  With a TTL configured, entries that have outlived it
    /// are swept first (counted as expirations), so `entries` reports live
    /// entries only — an idle daemon must not over-report its cache size just
    /// because nothing has touched the dead keys yet.
    pub fn stats(&self) -> CacheStats {
        let entries = {
            let mut inner = lock_ignoring_poison(&self.inner);
            if self.ttl.is_some() {
                let expired: Vec<Arc<str>> = inner
                    .map
                    .iter()
                    .filter(|(_, entry)| self.expired(entry))
                    .map(|(key, _)| Arc::clone(key))
                    .collect();
                for key in expired {
                    if let Some(entry) = inner.map.remove(key.as_ref()) {
                        inner.recency.remove(&entry.tick);
                        self.expirations.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            inner.map.len() as u64
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            evictions: self.evictions.load(Ordering::Relaxed),
            expirations: self.expirations.load(Ordering::Relaxed),
            capacity: self.capacity as u64,
        }
    }

    /// The configured TTL, if any.
    pub fn ttl(&self) -> Option<Duration> {
        self.ttl
    }

    /// All live entries in least-recently-used → most-recently-used order,
    /// with their ages (time since storage).  Feeding these back through
    /// [`QueryCache::import_entry`] in order reproduces both the contents and
    /// the recency order of the cache — the basis of the snapshot format in
    /// [`crate::snapshot`].
    pub fn export_entries(&self) -> Vec<SnapshotEntry> {
        let inner = lock_ignoring_poison(&self.inner);
        inner
            .recency
            .values()
            .filter_map(|key| {
                let entry = inner.map.get(key.as_ref())?;
                if self.expired(entry) {
                    return None;
                }
                Some(SnapshotEntry {
                    key: key.to_string(),
                    age: entry.stored_at.elapsed(),
                    result: Arc::clone(&entry.result),
                })
            })
            .collect()
    }

    /// Inserts a restored entry as if it had been stored `age` ago, so a
    /// configured TTL keeps counting down across the snapshot round trip.
    /// Entries already past the TTL (or whose age predates what [`Instant`]
    /// can represent) are dropped; returns whether the entry was admitted.
    pub fn import_entry(&self, entry: SnapshotEntry) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let stored_at = match self.ttl {
            // Without a TTL the age never matters again — don't let a large
            // age (long downtime) underflow the monotonic clock and lose the
            // entry.
            None => Instant::now(),
            Some(ttl) => {
                if entry.age >= ttl {
                    return false;
                }
                match Instant::now().checked_sub(entry.age) {
                    Some(stored_at) => stored_at,
                    None => return false,
                }
            }
        };
        self.insert_stored_at(entry.key, entry.result, stored_at);
        true
    }
}

/// One exported cache entry: the canonical key, the result, and how long ago
/// it was stored (see [`QueryCache::export_entries`]).
#[derive(Debug, Clone)]
pub struct SnapshotEntry {
    /// The canonical request key.
    pub key: String,
    /// Time since the entry was stored (TTL clocks resume from here).
    pub age: Duration,
    /// The stored result (shared with the live cache entry on export).
    pub result: Arc<CachedResult>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::Outcome;

    fn entry() -> CachedResult {
        CachedResult {
            outcome: Ok(Outcome::Duality {
                dual: true,
                witness: None,
            }),
            info: ExecInfo::default(),
        }
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = QueryCache::new();
        assert!(cache.get("k").is_none());
        cache.insert("k".into(), entry());
        assert!(cache.get("k").is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!((stats.evictions, stats.expirations), (0, 0));
    }

    #[test]
    fn full_cache_evicts_least_recently_used() {
        let cache = QueryCache::with_capacity(2);
        cache.insert("a".into(), entry());
        cache.insert("b".into(), entry());
        // Touch `a`, making `b` the LRU entry, then overflow.
        assert!(cache.get("a").is_some());
        cache.insert("c".into(), entry());
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get("a").is_some(), "recently used entry must survive");
        assert!(cache.get("c").is_some(), "new entry must be admitted");
        assert!(cache.get("b").is_none(), "LRU entry must have been evicted");
    }

    #[test]
    fn reinsert_refreshes_recency_without_growing() {
        let cache = QueryCache::with_capacity(2);
        cache.insert("a".into(), entry());
        cache.insert("b".into(), entry());
        cache.insert("a".into(), entry()); // refresh, not a new key
        assert_eq!(cache.stats().entries, 2);
        cache.insert("c".into(), entry()); // evicts `b`, the LRU
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn capacity_one_keeps_only_the_newest_key() {
        let cache = QueryCache::with_capacity(1);
        cache.insert("a".into(), entry());
        cache.insert("b".into(), entry());
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get("b").is_some());
        assert!(cache.get("a").is_none());
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let cache = QueryCache::with_capacity(0);
        cache.insert("a".into(), entry());
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.get("a").is_none());
    }

    #[test]
    fn ttl_expires_entries() {
        let cache = QueryCache::with_limits(8, Some(Duration::from_millis(20)));
        cache.insert("k".into(), entry());
        assert!(cache.get("k").is_some(), "fresh entry answers");
        std::thread::sleep(Duration::from_millis(30));
        assert!(cache.get("k").is_none(), "expired entry is a miss");
        let stats = cache.stats();
        assert_eq!(stats.expirations, 1);
        assert_eq!(stats.entries, 0);
        // Hits do not refresh the TTL: reinsert, touch, wait, gone.
        cache.insert("k".into(), entry());
        assert!(cache.get("k").is_some());
        std::thread::sleep(Duration::from_millis(30));
        assert!(cache.get("k").is_none());
    }

    #[test]
    fn stats_sweeps_expired_entries_instead_of_counting_them() {
        let cache = QueryCache::with_limits(8, Some(Duration::from_millis(20)));
        cache.insert("a".into(), entry());
        cache.insert("b".into(), entry());
        assert_eq!(cache.stats().entries, 2, "fresh entries count");
        std::thread::sleep(Duration::from_millis(30));
        // Nothing has touched the dead keys, yet `entries` must not report
        // them as live; the sweep books them as expirations.
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.expirations, 2);
        assert_eq!(stats.misses, 0, "sweeping is not a lookup");
        // The swept keys really are gone (this get is the first miss).
        assert!(cache.get("a").is_none());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().expirations, 2, "no double counting");
    }

    #[test]
    fn export_import_round_trips_contents_and_recency() {
        let cache = QueryCache::with_capacity(3);
        cache.insert("a".into(), entry());
        cache.insert("b".into(), entry());
        cache.insert("c".into(), entry());
        assert!(cache.get("a").is_some()); // recency order now: b, c, a
        let exported = cache.export_entries();
        assert_eq!(
            exported.iter().map(|e| e.key.as_str()).collect::<Vec<_>>(),
            vec!["b", "c", "a"],
            "export is LRU → MRU"
        );

        let restored = QueryCache::with_capacity(3);
        for e in exported {
            assert!(restored.import_entry(e));
        }
        assert_eq!(restored.stats().entries, 3);
        // Importing in order reproduced the recency: inserting a fourth key
        // must evict `b`, the LRU of the original cache.
        restored.insert("d".into(), entry());
        assert!(restored.get("b").is_none());
        assert!(restored.get("a").is_some());
        assert!(restored.get("c").is_some());
        assert!(restored.get("d").is_some());
    }

    #[test]
    fn import_respects_ttl_ages() {
        let ttl = Duration::from_millis(50);
        let fresh = SnapshotEntry {
            key: "fresh".into(),
            age: Duration::from_millis(0),
            result: Arc::new(entry()),
        };
        let stale = SnapshotEntry {
            key: "stale".into(),
            age: Duration::from_millis(60),
            result: Arc::new(entry()),
        };
        let cache = QueryCache::with_limits(8, Some(ttl));
        assert!(cache.import_entry(fresh.clone()));
        assert!(
            !cache.import_entry(stale),
            "entries past the TTL are dropped"
        );
        assert_eq!(cache.stats().entries, 1);
        // An un-TTL'd cache admits any age.
        let no_ttl = QueryCache::with_capacity(8);
        assert!(no_ttl.import_entry(SnapshotEntry {
            key: "old".into(),
            age: Duration::from_millis(60),
            result: Arc::new(entry()),
        }));
        // The restored age keeps counting: an entry imported at half its TTL
        // expires half a TTL later.
        let half = SnapshotEntry {
            key: "half".into(),
            age: Duration::from_millis(30),
            result: Arc::new(entry()),
        };
        assert!(cache.import_entry(half));
        assert!(cache.get("half").is_some());
        std::thread::sleep(Duration::from_millis(30));
        assert!(cache.get("half").is_none(), "TTL survived the round trip");
        assert!(cache.get("fresh").is_some(), "importing preserves each age");
    }

    #[test]
    fn zero_capacity_rejects_imports() {
        let cache = QueryCache::with_capacity(0);
        assert!(!cache.import_entry(SnapshotEntry {
            key: "k".into(),
            age: Duration::ZERO,
            result: Arc::new(entry()),
        }));
        assert_eq!(cache.stats().entries, 0);
    }
}
