//! The engine's result cache.
//!
//! Keys are the canonical request encodings of [`crate::request::Request::cache_key`],
//! so syntactically different but semantically identical requests share one
//! entry: permuted or absorbed (non-minimal) edges for `check`/`enumerate`,
//! permuted edges and reordered relation rows for `mine`/`keys`.
//! The cache stores finished outcomes, not parsed inputs: repeated requests
//! skip the solver entirely.

use crate::ops::ExecInfo;
use crate::response::Outcome;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A finished result as stored in the cache.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// The outcome (or rendered error) of the first execution.
    pub outcome: Result<Outcome, String>,
    /// Telemetry of the first execution (solver name, peak bits, call count).
    pub info: ExecInfo,
}

/// Hit/miss counters of a [`QueryCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of lookups answered from the cache.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
    /// Number of entries currently stored.
    pub entries: u64,
}

/// Default bound on stored entries (see [`QueryCache::with_capacity`]).
pub const DEFAULT_CACHE_CAPACITY: usize = 65_536;

/// A shared, thread-safe map from canonical request keys to finished results.
///
/// The cache is bounded: once `capacity` distinct keys are stored, further
/// *new* keys are not admitted (existing entries keep being served and can be
/// refreshed).  This caps memory on long-running `serve` sessions with
/// mostly-unique traffic; proper LRU eviction is future work (see
/// `ROADMAP.md`).
#[derive(Debug)]
pub struct QueryCache {
    map: Mutex<HashMap<String, CachedResult>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for QueryCache {
    fn default() -> Self {
        QueryCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl QueryCache {
    /// An empty cache with the default entry bound.
    pub fn new() -> Self {
        QueryCache::default()
    }

    /// An empty cache admitting at most `capacity` distinct keys.
    pub fn with_capacity(capacity: usize) -> Self {
        QueryCache {
            map: Mutex::new(HashMap::new()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a canonical key, counting the hit or miss.
    pub fn get(&self, key: &str) -> Option<CachedResult> {
        let found = lock_ignoring_poison(&self.map).get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a finished result under its canonical key.  New keys are
    /// dropped once the cache holds `capacity` entries.
    pub fn insert(&self, key: String, result: CachedResult) {
        let mut map = lock_ignoring_poison(&self.map);
        if map.len() >= self.capacity && !map.contains_key(&key) {
            return;
        }
        map.insert(key, result);
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: lock_ignoring_poison(&self.map).len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::Outcome;

    #[test]
    fn hit_miss_accounting() {
        let cache = QueryCache::new();
        assert!(cache.get("k").is_none());
        cache.insert(
            "k".into(),
            CachedResult {
                outcome: Ok(Outcome::Duality {
                    dual: true,
                    witness: None,
                }),
                info: ExecInfo::default(),
            },
        );
        assert!(cache.get("k").is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn capacity_bounds_distinct_keys() {
        let cache = QueryCache::with_capacity(2);
        let entry = || CachedResult {
            outcome: Ok(Outcome::Duality {
                dual: true,
                witness: None,
            }),
            info: ExecInfo::default(),
        };
        cache.insert("a".into(), entry());
        cache.insert("b".into(), entry());
        cache.insert("c".into(), entry()); // dropped: cache full
        assert_eq!(cache.stats().entries, 2);
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_none());
        // existing keys can still be refreshed at capacity
        cache.insert("a".into(), entry());
        assert_eq!(cache.stats().entries, 2);
    }
}
