//! The concurrent batch engine: a sharded worker pool over the solvers.
//!
//! Requests enter through a **bounded** queue (submission blocks when all
//! workers are busy and the queue is full — backpressure, not unbounded
//! buffering), are executed on `workers` OS threads, and come back as
//! [`Response`]s carrying per-request stats.  Results are deterministic: the
//! engine only parallelizes *across* requests, every request is answered
//! exactly as a direct single-threaded solver call would answer it, and both
//! [`Engine::run_batch`] and [`Engine::serve`] emit responses in request
//! order.

use crate::cache::{CacheStats, CachedResult, QueryCache};
use crate::ops;
use crate::policy::{SizeThresholdPolicy, SolverPolicy};
use crate::request::Request;
use crate::response::{RequestStats, Response};
use crate::wire;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

/// Engine construction parameters.
#[derive(Clone)]
pub struct EngineConfig {
    /// Number of worker threads (shards).
    pub workers: usize,
    /// Capacity of the bounded submission queue; submission blocks beyond it.
    pub queue_capacity: usize,
    /// Whether to cache results keyed by canonical request encodings.
    pub cache: bool,
    /// Solver routing policy applied to every duality call.
    pub policy: Arc<dyn SolverPolicy>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: thread::available_parallelism()
                .map_or(4, usize::from)
                .min(8),
            queue_capacity: 256,
            cache: true,
            policy: Arc::new(SizeThresholdPolicy::default()),
        }
    }
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("cache", &self.cache)
            .field("policy", &self.policy.name())
            .finish()
    }
}

/// Summary of one [`Engine::serve`] session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Requests answered (including per-request errors).
    pub requests: u64,
    /// Requests that produced an error response.
    pub errors: u64,
}

/// The concurrent batch query engine.
pub struct Engine {
    config: EngineConfig,
    cache: Arc<QueryCache>,
}

/// A unit of work: either a parsed request or a parse error to report.
type Job = (u64, Result<Request, String>);

impl Engine {
    /// Builds an engine from a configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            cache: Arc::new(QueryCache::new()),
        }
    }

    /// An engine with default configuration.
    pub fn with_defaults() -> Self {
        Engine::new(EngineConfig::default())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Counters of the shared result cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Executes a batch of requests on the worker pool; `responses[i]` answers
    /// `requests[i]`.
    pub fn run_batch(&self, requests: Vec<Request>) -> Vec<Response> {
        let total = requests.len();
        let mut out: Vec<Option<Response>> = Vec::new();
        out.resize_with(total, || None);
        self.pump(
            requests.into_iter().map(Ok),
            || false,
            |response: Response| {
                let slot = response.id as usize;
                out[slot] = Some(response);
                true
            },
        );
        out.into_iter()
            .map(|slot| slot.expect("worker pool answered every request"))
            .collect()
    }

    /// Convenience wrapper for a single request.
    pub fn run_one(&self, request: Request) -> Response {
        self.run_batch(vec![request])
            .pop()
            .expect("one response for one request")
    }

    /// Streams wire-format request lines from `input` and writes JSON-lines
    /// responses to `output` **in request order** (a reorder buffer holds
    /// responses that finish early).  Responses are written and flushed as
    /// soon as they are in-order ready — a client that sends one request and
    /// waits for its answer gets it without closing the input.  Blank lines
    /// and `#` comments are skipped.
    ///
    /// Errors reading the input or writing the output abort the session (no
    /// further lines are read) and are returned; responses already written
    /// stay valid.
    pub fn serve<R: BufRead + Send, W: Write>(
        &self,
        input: R,
        output: &mut W,
    ) -> std::io::Result<ServeSummary> {
        let mut summary = ServeSummary::default();
        let mut write_error: Option<std::io::Error> = None;
        let read_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
        // Bound on completed-but-unemitted responses: one slow head-of-line
        // request must not let the reorder buffer grow with the stream.  The
        // feeder pauses once this many responses are held.
        let reorder_capacity = self.config.queue_capacity.max(1) * 4;
        let held = Arc::new(AtomicUsize::new(0));
        {
            let mut next_to_emit: u64 = 0;
            let mut pending: BTreeMap<u64, Response> = BTreeMap::new();
            let read_error = &read_error;
            let jobs = input
                .lines()
                .map_while(move |line| match line {
                    Ok(line) => Some(line),
                    Err(e) => {
                        *lock_ignoring_poison(read_error) = Some(e);
                        None
                    }
                })
                .filter(|line| {
                    let t = line.trim();
                    !t.is_empty() && !t.starts_with('#')
                })
                .map(|line| wire::parse_request(&line));
            let held_feeder = Arc::clone(&held);
            let throttle = move || held_feeder.load(Ordering::Relaxed) >= reorder_capacity;
            self.pump(jobs, throttle, |response: Response| {
                summary.requests += 1;
                if !response.is_ok() {
                    summary.errors += 1;
                }
                pending.insert(response.id, response);
                let mut wrote = false;
                while let Some(ready) = pending.remove(&next_to_emit) {
                    if let Err(e) = writeln!(output, "{}", ready.to_json_line()) {
                        write_error = Some(e);
                        return false;
                    }
                    wrote = true;
                    next_to_emit += 1;
                }
                held.store(pending.len(), Ordering::Relaxed);
                if wrote {
                    if let Err(e) = output.flush() {
                        write_error = Some(e);
                        return false;
                    }
                }
                true
            });
        }
        if let Some(e) = write_error {
            return Err(e);
        }
        if let Some(e) = read_error.into_inner().unwrap_or_else(|p| p.into_inner()) {
            return Err(e);
        }
        output.flush()?;
        Ok(summary)
    }

    /// The shared pool driver: a feeder thread pushes `jobs` through the
    /// bounded queue to the workers while the calling thread hands every
    /// response to `collect` as it completes (callers reorder if they need
    /// to).  The feeder pauses while `throttle()` is true (used by `serve` to
    /// bound its reorder buffer).  `collect` returning `false` aborts the
    /// session: the feeder stops reading jobs, in-flight work is drained and
    /// discarded.
    fn pump<I, T, F>(&self, jobs: I, throttle: T, mut collect: F)
    where
        I: Iterator<Item = Result<Request, String>> + Send,
        T: Fn() -> bool + Send,
        F: FnMut(Response) -> bool,
    {
        let workers = self.config.workers.max(1);
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(self.config.queue_capacity.max(1));
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (response_tx, response_rx) = mpsc::channel::<Response>();
        let config = &self.config;
        let cache = &self.cache;
        let abort = AtomicBool::new(false);
        thread::scope(|scope| {
            for worker_index in 0..workers {
                let job_rx = Arc::clone(&job_rx);
                let response_tx = response_tx.clone();
                scope.spawn(move || loop {
                    // Hold the receiver lock only for the dequeue itself.  A
                    // poisoned lock (another worker panicked mid-dequeue) is
                    // recovered: losing one worker must not kill the session.
                    let job = { lock_ignoring_poison(&job_rx).recv() };
                    let Ok((id, parsed)) = job else { break };
                    let response = match parsed {
                        Ok(request) => process_one(id, &request, worker_index, config, cache),
                        Err(message) => Response {
                            id,
                            outcome: Err(message),
                            stats: RequestStats {
                                worker: worker_index,
                                solver: "-".to_string(),
                                ..RequestStats::default()
                            },
                        },
                    };
                    if response_tx.send(response).is_err() {
                        break;
                    }
                });
            }
            drop(response_tx);
            // Feeder thread: jobs enter the bounded queue with backpressure
            // (send blocks while all workers are busy and the queue is full),
            // pausing while the caller's reorder buffer is at capacity.
            let abort = &abort;
            scope.spawn(move || {
                for (id, job) in jobs.enumerate() {
                    while throttle() && !abort.load(Ordering::Relaxed) {
                        thread::sleep(std::time::Duration::from_millis(1));
                    }
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    if job_tx.send((id as u64, job)).is_err() {
                        break;
                    }
                }
            });
            // Collector (this thread): drain responses as they complete, so
            // callers can stream them out without waiting for input EOF.
            let mut aborted = false;
            for response in response_rx {
                if aborted {
                    continue; // drain in-flight work, discard
                }
                if !collect(response) {
                    aborted = true;
                    abort.store(true, Ordering::Relaxed);
                }
            }
        });
    }
}

/// Locks a mutex, recovering the guard if a previous holder panicked (the
/// engine's shared state — queue receiver, error slots — stays consistent
/// across a worker panic, and one poisoned request must not take down the
/// session).
fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Executes one request on a worker: cache lookup, solver dispatch, stats.
fn process_one(
    id: u64,
    request: &Request,
    worker: usize,
    config: &EngineConfig,
    cache: &QueryCache,
) -> Response {
    let started = Instant::now();
    let key = config.cache.then(|| request.cache_key());
    if let Some(key) = &key {
        if let Some(hit) = cache.get(key) {
            return Response {
                id,
                outcome: hit.outcome,
                stats: RequestStats {
                    micros: started.elapsed().as_micros(),
                    peak_bits: hit.info.peak_bits,
                    solver: hit.info.solver,
                    duality_calls: hit.info.duality_calls,
                    cache_hit: true,
                    worker,
                },
            };
        }
    }
    let (outcome, info) = ops::execute(request, config.policy.as_ref());
    if let Some(key) = key {
        cache.insert(
            key,
            CachedResult {
                outcome: outcome.clone(),
                info: info.clone(),
            },
        );
    }
    Response {
        id,
        outcome,
        stats: RequestStats {
            micros: started.elapsed().as_micros(),
            peak_bits: info.peak_bits,
            solver: info.solver,
            duality_calls: info.duality_calls,
            cache_hit: false,
            worker,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::Outcome;
    use qld_hypergraph::generators;
    use std::io::{BufReader, Read};
    use std::time::Duration;

    fn engine(workers: usize, cache: bool) -> Engine {
        Engine::new(EngineConfig {
            workers,
            queue_capacity: 4,
            cache,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn batch_preserves_request_order() {
        let eng = engine(3, true);
        let requests: Vec<Request> = (1..=4)
            .map(|k| {
                let li = generators::matching_instance(k);
                Request::DecideDuality { g: li.g, h: li.h }
            })
            .collect();
        let responses = eng.run_batch(requests);
        assert_eq!(responses.len(), 4);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert_eq!(
                r.outcome,
                Ok(Outcome::Duality {
                    dual: true,
                    witness: None
                })
            );
        }
    }

    #[test]
    fn identical_requests_hit_the_cache() {
        let eng = engine(2, true);
        let li = generators::matching_instance(2);
        let req = Request::DecideDuality { g: li.g, h: li.h };
        let responses = eng.run_batch(vec![req.clone(), req.clone(), req]);
        assert!(responses.iter().all(|r| r.is_ok()));
        let stats = eng.cache_stats();
        assert_eq!(stats.entries, 1);
        assert!(
            stats.hits >= 1,
            "expected at least one cache hit: {stats:?}"
        );
        // Cached responses are flagged and agree with the computed one.
        let computed: Vec<_> = responses.iter().filter(|r| !r.stats.cache_hit).collect();
        let hits: Vec<_> = responses.iter().filter(|r| r.stats.cache_hit).collect();
        assert!(!computed.is_empty());
        for h in hits {
            assert_eq!(h.outcome, computed[0].outcome);
        }
    }

    #[test]
    fn serve_emits_ordered_json_lines() {
        let eng = engine(4, true);
        let input = "\
# a comment, then a blank line

check 0,1;2,3 0,2;0,3;1,2;1,3
check 0,1;2,3 0,2;0,3;1,2
enumerate n=4:0,1;2,3 limit=2
bogus line
keys 1,2;1,3
";
        let mut out = Vec::new();
        let summary = eng.serve(input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.requests, 5);
        assert_eq!(summary.errors, 1);
        let lines: Vec<String> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        assert_eq!(lines.len(), 5);
        for (i, line) in lines.iter().enumerate() {
            assert!(
                line.starts_with(&format!("{{\"id\":{i},")),
                "line {i}: {line}"
            );
        }
        assert!(lines[0].contains("\"dual\":true"));
        assert!(lines[1].contains("\"dual\":false"));
        assert!(lines[2].contains("\"complete\":false") && lines[2].contains("\"count\":2"));
        assert!(lines[3].contains("\"ok\":false"));
        assert!(lines[4].contains("\"kind\":\"keys\""));
    }

    /// A reader that yields one request line, then holds the input open until
    /// it sees the response flag (set by [`FlagWriter`]) before reporting EOF.
    /// If `serve` only answered at EOF this would never observe the flag.
    struct GatedReader {
        sent_line: bool,
        responded: Arc<AtomicBool>,
        saw_response_before_eof: Arc<AtomicBool>,
    }

    impl Read for GatedReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.sent_line {
                self.sent_line = true;
                let line = b"check 0,1;2,3 0,2;0,3;1,2;1,3\n";
                buf[..line.len()].copy_from_slice(line);
                return Ok(line.len());
            }
            for _ in 0..1000 {
                if self.responded.load(Ordering::Relaxed) {
                    self.saw_response_before_eof.store(true, Ordering::Relaxed);
                    break;
                }
                thread::sleep(Duration::from_millis(5));
            }
            Ok(0)
        }
    }

    /// Sets a flag as soon as one full JSON line has been written.
    struct FlagWriter {
        responded: Arc<AtomicBool>,
        data: Vec<u8>,
    }

    impl Write for FlagWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.data.extend_from_slice(buf);
            if self.data.contains(&b'\n') {
                self.responded.store(true, Ordering::Relaxed);
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn serve_streams_responses_before_input_eof() {
        let responded = Arc::new(AtomicBool::new(false));
        let saw = Arc::new(AtomicBool::new(false));
        let reader = BufReader::new(GatedReader {
            sent_line: false,
            responded: Arc::clone(&responded),
            saw_response_before_eof: Arc::clone(&saw),
        });
        let mut writer = FlagWriter {
            responded: Arc::clone(&responded),
            data: Vec::new(),
        };
        let summary = engine(2, true).serve(reader, &mut writer).unwrap();
        assert_eq!(summary.requests, 1);
        assert!(
            saw.load(Ordering::Relaxed),
            "response was not written until the input closed"
        );
        assert!(String::from_utf8(writer.data)
            .unwrap()
            .contains("\"dual\":true"));
    }

    /// A writer that fails every write.
    struct BrokenWriter;

    impl Write for BrokenWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "broken pipe",
            ))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn serve_aborts_on_write_error() {
        let input: String = "check 0,1;2,3 0,2;0,3;1,2;1,3\n".repeat(64);
        let err = engine(2, false)
            .serve(input.as_bytes(), &mut BrokenWriter)
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
    }

    /// A reader that yields one good line and then an I/O error.
    struct FailingReader {
        sent_line: bool,
    }

    impl Read for FailingReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.sent_line {
                self.sent_line = true;
                let line = b"check 0,1;2,3 0,2;0,3;1,2;1,3\n";
                buf[..line.len()].copy_from_slice(line);
                return Ok(line.len());
            }
            Err(std::io::Error::other("disk on fire"))
        }
    }

    #[test]
    fn serve_propagates_read_errors() {
        let reader = BufReader::new(FailingReader { sent_line: false });
        let mut out = Vec::new();
        let err = engine(1, false).serve(reader, &mut out).unwrap_err();
        assert_eq!(err.to_string(), "disk on fire");
        // the request read before the failure was still answered
        assert!(String::from_utf8(out).unwrap().contains("\"dual\":true"));
    }

    #[test]
    fn queue_smaller_than_batch_still_completes() {
        let eng = Engine::new(EngineConfig {
            workers: 2,
            queue_capacity: 1,
            cache: false,
            ..EngineConfig::default()
        });
        let li = generators::matching_instance(2);
        let requests: Vec<Request> = (0..32)
            .map(|_| Request::DecideDuality {
                g: li.g.clone(),
                h: li.h.clone(),
            })
            .collect();
        let responses = eng.run_batch(requests);
        assert_eq!(responses.len(), 32);
        assert!(responses.iter().all(|r| r.is_ok()));
        // Cache disabled: no entries, and every response computed fresh.
        assert_eq!(eng.cache_stats().entries, 0);
        assert!(responses.iter().all(|r| !r.stats.cache_hit));
    }
}
