//! The concurrent query engine: a **persistent** sharded worker pool over the
//! solvers.
//!
//! The pool is spawned once, when the [`Engine`] is constructed, and every
//! session — a [`Engine::run_batch`] call, a [`Engine::serve`] loop, or any
//! number of concurrent socket connections (see [`crate::transport`]) —
//! multiplexes its requests onto the same workers through one shared
//! **bounded** job queue (submission blocks when all workers are busy and the
//! queue is full: backpressure, not unbounded buffering).  Each job carries a
//! reply channel back to the session that submitted it, so sessions never see
//! each other's responses.
//!
//! Results are deterministic: the engine only parallelizes *across* requests,
//! and every request is answered exactly as a direct single-threaded solver
//! call would answer it.  Response *ordering* is a per-session choice
//! ([`OrderMode`]): `input` order reorders responses into request order
//! through a bounded buffer, `arrival` order streams each response the moment
//! it completes so one slow request never head-of-line-blocks the rest.

use crate::cache::{CacheStats, CachedResult, QueryCache};
use crate::fairness::UserBuckets;
use crate::flight::{FlightSink, FlightTable, Follower, LeadOutcome};
use crate::lock_ignoring_poison;
use crate::ops;
use crate::policy::{
    exec_route, ExecRoute, FixedPolicy, SizeThresholdPolicy, SolverKind, SolverPolicy,
};
use crate::request::Request;
use crate::response::{EngineError, Outcome, RequestStats, Response};
use crate::stream::{
    CancelToken, ChunkFrame, ChunkPayload, ResultSink, SinkDirective, StopReason, StreamEvent,
    StreamItem, StreamProgress,
};
use crate::subtask::{EnginePool, SubtaskQueue};
use crate::wire::{self, OrderMode};
use qld_core::ParallelContext;
use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Engine construction parameters.
#[derive(Clone)]
pub struct EngineConfig {
    /// Number of worker threads (shards) in the persistent pool.
    pub workers: usize,
    /// Capacity of the bounded submission queue, shared by all sessions;
    /// submission blocks beyond it.
    pub queue_capacity: usize,
    /// Whether to cache results keyed by canonical request encodings.
    pub cache: bool,
    /// Maximum number of entries the LRU result cache holds.
    pub cache_capacity: usize,
    /// Optional time-to-live for cache entries (measured from insertion).
    pub cache_ttl: Option<Duration>,
    /// Solver routing policy applied to every duality call (unless a request
    /// carries a `solver=` override).
    pub policy: Arc<dyn SolverPolicy>,
    /// Optional cache snapshot path (`qld serve --cache-file`).  When set and
    /// the file exists, [`Engine::new`] restores the cache from it (a corrupt
    /// or version-mismatched snapshot restores nothing — the engine starts
    /// cold); [`Engine::save_cache_snapshot`] writes it back.
    pub cache_file: Option<PathBuf>,
    /// Intra-query parallelism threshold (`qld serve --parallel-threshold`),
    /// in work units `|V| · (|G| + |H|)`.  A duality call at least this large
    /// splits into work-stealing subtasks on the shared pool; smaller calls
    /// stay sequential (the split has real coordination cost).  `0` splits
    /// everything, `usize::MAX` effectively disables splitting.
    pub parallel_threshold: usize,
    /// In-process ("local") execution threshold (`qld serve
    /// --local-threshold`), in the same work units.  A one-shot `check`
    /// request strictly below it is answered synchronously on the submitting
    /// session's thread through the embedded solver — no pool round-trip, no
    /// cache lookup (and no cache-key render), no cancellation window.  `0`
    /// (the default) disables local execution: every request takes the pool
    /// path exactly as before.  See [`crate::ExecRoute`].
    pub local_threshold: usize,
    /// Single-flight request coalescing (`qld serve --no-coalesce` clears
    /// it): identical queries arriving while the first is still executing
    /// attach to that execution as followers instead of running the solver
    /// again (see `engine/src/flight.rs`).  Requires the cache (the flight key
    /// *is* the canonical cache key); with `cache: false` every request
    /// executes individually regardless of this flag.
    pub coalesce: bool,
}

/// Default [`EngineConfig::parallel_threshold`]: roughly a 64-vertex instance
/// with 512 total edges.  Below that, one solver call is cheaper than the
/// scatter/join round-trip through the subtask queue.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 32_768;

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: thread::available_parallelism()
                .map_or(4, usize::from)
                .min(8),
            queue_capacity: 256,
            cache: true,
            cache_capacity: crate::cache::DEFAULT_CACHE_CAPACITY,
            cache_ttl: None,
            policy: Arc::new(SizeThresholdPolicy::default()),
            cache_file: None,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            local_threshold: 0,
            coalesce: true,
        }
    }
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("cache", &self.cache)
            .field("cache_capacity", &self.cache_capacity)
            .field("cache_ttl", &self.cache_ttl)
            .field("policy", &self.policy.name())
            .field("cache_file", &self.cache_file)
            .field("parallel_threshold", &self.parallel_threshold)
            .field("local_threshold", &self.local_threshold)
            .field("coalesce", &self.coalesce)
            .finish()
    }
}

/// Options of one serve session (one stdin/stdout loop or one socket
/// connection).
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Default response ordering; individual requests may override it with
    /// the `order=` wire keyword.
    pub order: OrderMode,
    /// Per-session in-flight quota (`qld serve --max-inflight`): a request
    /// arriving while this many of the session's requests are still
    /// unanswered is rejected at admission with a `quota` error instead of
    /// being queued.  `None` means no limit (the shared bounded job queue
    /// still backpressures).
    pub max_inflight: Option<usize>,
    /// Per-request item quota (`qld serve --max-items`): any single request
    /// of the session stops after yielding this many result items
    /// (transversals, border advancements), answering with its partial
    /// result marked `halted:"max-items"`, `complete:false`.  `None` means
    /// no limit.
    pub max_items: Option<u64>,
    /// Per-user token-bucket admission (`qld serve --user-rate`/
    /// `--user-burst`), shared across every session of the server so one
    /// user's flood of connections cannot starve another user.  Consulted
    /// only for requests carrying the `auth=` wire keyword; anonymous
    /// requests are never throttled.  `None` disables user fairness.
    pub user_quota: Option<Arc<UserBuckets>>,
    /// Hard cap, in bytes, on a readiness-loop session's buffered unsent
    /// output before the connection is treated as dead (cancelled and
    /// dropped).  A consumer that refuses to read an entire cap's worth of
    /// responses is indistinguishable from one that is gone.  `None` uses
    /// the 8 MiB default; ignored by the thread-per-session fallback, whose
    /// blocking writes self-limit.
    pub write_cap: Option<usize>,
}

/// Summary of one serve session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Requests answered (including per-request errors).
    pub requests: u64,
    /// Requests that produced an error response.
    pub errors: u64,
}

/// Options of one [`Engine::run_streaming`] call.
#[derive(Debug, Clone, Default)]
pub struct StreamRunOptions {
    /// Correlation token echoed on every frame.
    pub client_id: Option<String>,
    /// Force a concrete solver for the request's duality calls.
    pub solver: Option<SolverKind>,
    /// Stop the job after this many yielded items (`halted:"max-items"`).
    pub max_items: Option<u64>,
}

/// A live streaming job: an iterator of its frames plus the cancellation
/// switch (see [`Engine::run_streaming`]).
#[derive(Debug)]
pub struct StreamHandle {
    cancel: CancelToken,
    events: Receiver<StreamEvent>,
}

impl StreamHandle {
    /// The job's cancellation token (cloneable; hand it to a Ctrl-C handler).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Blocks for the next frame; `None` once the terminal response has been
    /// consumed.
    pub fn next_event(&self) -> Option<StreamEvent> {
        self.events.recv().ok()
    }

    /// Blocks for the next frame with a timeout (`None` on timeout or end of
    /// stream — distinguish via a subsequent [`StreamHandle::next_event`]).
    pub fn next_event_timeout(&self, timeout: Duration) -> Option<StreamEvent> {
        self.events.recv_timeout(timeout).ok()
    }
}

impl Iterator for &StreamHandle {
    type Item = StreamEvent;
    fn next(&mut self) -> Option<StreamEvent> {
        self.next_event()
    }
}

/// What a worker should do for one job.
pub(crate) enum Payload {
    /// Execute a typed query, optionally forcing a concrete solver.
    Query {
        request: Request,
        solver: Option<SolverKind>,
    },
    /// Snapshot the engine counters (the `stats` wire request).
    Stats,
    /// Report a parse failure for this sequence slot.
    Malformed(String),
}

/// One unit of work travelling through the shared pool.  Fields are
/// `pub(crate)` for the single-flight layer ([`crate::flight`]), which turns
/// a job into a flight follower without re-deriving its identity.
pub(crate) struct PoolJob {
    /// Sequence number within the submitting session.
    pub(crate) seq: u64,
    /// Client correlation token to echo back.
    pub(crate) client_id: Option<String>,
    pub(crate) payload: Payload,
    /// Whether the client asked for chunk-by-chunk streaming (`stream=`).
    pub(crate) stream: bool,
    /// Cooperative cancellation flag, observed at yield boundaries (and
    /// before the job starts — a job whose session vanished while it sat in
    /// the queue is dropped, not executed).
    pub(crate) cancel: CancelToken,
    /// The submitting session's per-request item quota (`--max-items`).
    pub(crate) max_items: Option<u64>,
    /// Where the executing worker sends chunk frames and the terminal
    /// response.
    pub(crate) reply: ReplySender,
    /// The canonical flight/cache key, pre-rendered by the submission site
    /// when coalescing applies (`None` for control payloads or when
    /// coalescing is off — the worker then renders the cache key itself).
    pub(crate) key: Option<String>,
}

/// Where a job's frames go: the submitting session's event channel, plus an
/// optional notifier for sessions multiplexed on a readiness loop (the loop
/// cannot block on the channel, so each delivery pokes its waker instead;
/// threaded sessions just block on the channel and pass `None`).
#[derive(Clone)]
pub(crate) struct ReplySender {
    tx: Sender<StreamEvent>,
    notify: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl ReplySender {
    /// A reply channel for a session that blocks on `recv` (no notifier).
    pub(crate) fn plain(tx: Sender<StreamEvent>) -> ReplySender {
        ReplySender { tx, notify: None }
    }

    /// A reply channel that invokes `notify` after every delivered event.
    pub(crate) fn notifying(tx: Sender<StreamEvent>, notify: Arc<dyn Fn() + Send + Sync>) -> Self {
        ReplySender {
            tx,
            notify: Some(notify),
        }
    }

    /// Delivers one event; `Err` means the session hung up its receiver.
    pub(crate) fn send(&self, event: StreamEvent) -> Result<(), ()> {
        match self.tx.send(event) {
            Ok(()) => {
                if let Some(notify) = &self.notify {
                    notify();
                }
                Ok(())
            }
            Err(_) => Err(()),
        }
    }
}

/// Live load counters shared by sessions and workers, reported by the
/// `stats` wire request (`inflight`/`sessions` fields) — the load signal a
/// fleet router's least-loaded shard policy reads.
#[derive(Debug, Default)]
pub(crate) struct EngineCounters {
    /// Jobs admitted to the pool (queued or running) and not yet answered.
    inflight: AtomicU64,
    /// Serve sessions currently inside [`Engine::serve_with`] or multiplexed
    /// on a readiness loop.
    sessions: AtomicU64,
    /// Transport connections currently open (accept/close boundary).
    connections: AtomicU64,
    /// Requests rejected by the per-user token bucket since startup.
    throttled: AtomicU64,
}

impl EngineCounters {
    /// Settles one pool-admitted job on the in-flight gauge.  Workers call
    /// it after sending a terminal response; the flight layer calls it when
    /// delivering a worker-level follower's terminal instead.
    pub(crate) fn job_finished(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Decrements the session gauge when a serve session ends, however it ends.
struct SessionGuard<'a>(&'a EngineCounters);

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        self.0.sessions.fetch_sub(1, Ordering::Relaxed);
    }
}

/// RAII increment of the `connections` stats gauge: transports take one per
/// accepted connection and drop it at close, so `stats` reports live
/// connection counts however the session is served.
pub(crate) struct ConnectionGuard {
    counters: Arc<EngineCounters>,
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.counters.connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Read-only state shared with every worker thread.
struct WorkerCtx {
    policy: Arc<dyn SolverPolicy>,
    cache: Arc<QueryCache>,
    cache_enabled: bool,
    workers: usize,
    /// When the engine was constructed (`stats` uptime reporting).
    started: Instant,
    /// Whether a cache snapshot was restored at construction.
    cache_restored: bool,
    /// Live load counters (`stats` reporting; shared with the engine).
    counters: Arc<EngineCounters>,
    /// The engine-wide subtask queue (intra-query work stealing).
    subtasks: Arc<SubtaskQueue>,
    /// Work-unit floor above which a duality call splits into subtasks.
    parallel_threshold: usize,
    /// The single-flight registry (shared with the submission sites).
    flights: Arc<FlightTable>,
    /// Whether workers coalesce duplicate cache misses into flights.
    coalesce: bool,
}

/// The concurrent query engine.  Dropping it shuts the worker pool down
/// (outstanding jobs finish first).
pub struct Engine {
    config: EngineConfig,
    cache: Arc<QueryCache>,
    /// Entries restored from the configured cache snapshot at construction.
    cache_restored: u64,
    /// Why the configured snapshot failed to restore, if it did.
    cache_restore_error: Option<String>,
    /// `Some` for the engine's lifetime; taken in `Drop` to hang up the queue.
    job_tx: Option<SyncSender<PoolJob>>,
    handles: Vec<JoinHandle<()>>,
    /// Live load counters (shared with the worker pool for `stats`).
    counters: Arc<EngineCounters>,
    /// The subtask queue shared with the pool: submission sites poke it so
    /// parked workers wake for fresh jobs, not just for subtasks.
    subtasks: Arc<SubtaskQueue>,
    /// The single-flight registry: submission sites attach duplicates to
    /// in-flight executions before they ever occupy a pool slot.
    flights: Arc<FlightTable>,
}

impl Engine {
    /// Builds an engine from a configuration, spawning its worker pool.
    ///
    /// With [`EngineConfig::cache_file`] set to an existing snapshot, the
    /// cache is restored from it before the first request runs; a corrupt,
    /// truncated, or version-mismatched snapshot restores nothing (see
    /// [`Engine::cache_restored`]) and the engine starts cold.
    pub fn new(config: EngineConfig) -> Self {
        let cache = Arc::new(QueryCache::with_limits(
            config.cache_capacity,
            config.cache_ttl,
        ));
        let mut cache_restored = 0;
        let mut cache_restore_error = None;
        if config.cache {
            if let Some(path) = &config.cache_file {
                match std::fs::File::open(path) {
                    Ok(file) => {
                        match crate::snapshot::read_snapshot(&cache, BufReader::new(file)) {
                            Ok(stats) => cache_restored = stats.restored,
                            Err(e) => {
                                cache_restore_error = Some(format!("{}: {e}", path.display()))
                            }
                        }
                    }
                    // No snapshot yet is the normal first boot, not an error.
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => cache_restore_error = Some(format!("{}: {e}", path.display())),
                }
            }
        }
        let workers = config.workers.max(1);
        let (job_tx, job_rx) = mpsc::sync_channel::<PoolJob>(config.queue_capacity.max(1));
        let job_rx = Arc::new(Mutex::new(job_rx));
        let counters = Arc::new(EngineCounters::default());
        let subtasks = Arc::new(SubtaskQueue::new());
        let flights = Arc::new(FlightTable::new(Arc::clone(&counters)));
        let ctx = Arc::new(WorkerCtx {
            policy: Arc::clone(&config.policy),
            cache: Arc::clone(&cache),
            cache_enabled: config.cache,
            workers,
            started: Instant::now(),
            cache_restored: cache_restored > 0,
            counters: Arc::clone(&counters),
            subtasks: Arc::clone(&subtasks),
            parallel_threshold: config.parallel_threshold,
            flights: Arc::clone(&flights),
            coalesce: config.coalesce,
        });
        let handles = (0..workers)
            .map(|worker_index| {
                let job_rx = Arc::clone(&job_rx);
                let ctx = Arc::clone(&ctx);
                thread::spawn(move || worker_loop(&ctx, &job_rx, worker_index))
            })
            .collect();
        Engine {
            config,
            cache,
            cache_restored,
            cache_restore_error,
            job_tx: Some(job_tx),
            handles,
            counters,
            subtasks,
            flights,
        }
    }

    /// An engine with default configuration.
    pub fn with_defaults() -> Self {
        Engine::new(EngineConfig::default())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Counters of the shared result cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Intra-query subtask counters since startup: `(spawned, stolen)`.
    /// `spawned` counts every subtask pushed to the shared queue; `stolen`
    /// counts the ones executed by a worker other than the one that spawned
    /// them (the rest ran inline on the owning worker at its join point).
    pub fn subtask_stats(&self) -> (u64, u64) {
        (self.subtasks.spawned(), self.subtasks.stolen())
    }

    /// Single-flight counters since startup: `(flights_led, coalesced)`.
    /// `flights_led` counts executions that registered a flight (every
    /// coalescible cache miss); `coalesced` counts the duplicate requests
    /// that attached to one instead of executing — solver runs avoided.
    pub fn coalesce_stats(&self) -> (u64, u64) {
        (self.flights.led(), self.flights.coalesced())
    }

    /// Whether submission sites should render flight keys and attempt joins.
    fn coalesce_enabled(&self) -> bool {
        self.config.cache && self.config.coalesce
    }

    /// How many entries [`Engine::new`] restored from the configured cache
    /// snapshot (0 when none was configured, found, or readable).
    pub fn cache_restored(&self) -> u64 {
        self.cache_restored
    }

    /// Why the configured cache snapshot failed to restore, if it did — a
    /// corrupt, truncated, version-mismatched, or unreadable file (a missing
    /// file is a normal first boot, not a failure).  The engine starts cold
    /// in that case; callers surface this so a configured warm start never
    /// fails silently.
    pub fn cache_restore_error(&self) -> Option<&str> {
        self.cache_restore_error.as_deref()
    }

    /// Writes the cache to a snapshot file at `path` (see [`crate::snapshot`]
    /// for the format), returning the number of entries written.  The file is
    /// staged under a process-unique `.tmp.<pid>` suffix and renamed into
    /// place, so a crash mid-write never leaves a truncated snapshot where
    /// the next start would look for one, concurrent savers (two daemons
    /// misconfigured onto one path) cannot interleave writes into each
    /// other's staging file — each rename installs a complete snapshot,
    /// last writer wins — and a failed write cleans its staging file up.
    pub fn save_cache_snapshot(&self, path: impl AsRef<Path>) -> std::io::Result<u64> {
        let path = path.as_ref();
        let mut staging = path.as_os_str().to_os_string();
        staging.push(format!(".tmp.{}", std::process::id()));
        let staging = PathBuf::from(staging);
        let result = (|| {
            let mut file = std::io::BufWriter::new(std::fs::File::create(&staging)?);
            let written = crate::snapshot::write_snapshot(&self.cache, &mut file)?;
            file.into_inner().map_err(|e| e.into_error())?.sync_all()?;
            std::fs::rename(&staging, path)?;
            Ok(written)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&staging);
        }
        result
    }

    /// Writes the cache snapshot to [`EngineConfig::cache_file`], if one is
    /// configured; returns the number of entries written (`None` when no
    /// snapshot path is configured or caching is disabled).
    pub fn save_configured_cache_snapshot(&self) -> std::io::Result<Option<u64>> {
        match &self.config.cache_file {
            Some(path) if self.config.cache => self.save_cache_snapshot(path).map(Some),
            _ => Ok(None),
        }
    }

    /// The shared job queue's sender (alive for the engine's lifetime).
    fn sender(&self) -> &SyncSender<PoolJob> {
        self.job_tx.as_ref().expect("pool alive until drop")
    }

    /// Marks one transport connection open for `stats` reporting; the
    /// returned guard closes it.
    pub(crate) fn track_connection(&self) -> ConnectionGuard {
        self.counters.connections.fetch_add(1, Ordering::Relaxed);
        ConnectionGuard {
            counters: Arc::clone(&self.counters),
        }
    }

    /// Builds the non-blocking session state machine a readiness loop drives
    /// (see [`SessionMux`]); `reply` is the session's job-reply channel,
    /// already wired to the loop's waker.
    pub(crate) fn session_mux(&self, options: &ServeOptions, reply: ReplySender) -> SessionMux {
        self.counters.sessions.fetch_add(1, Ordering::Relaxed);
        SessionMux {
            job_tx: self.sender().clone(),
            subtasks: Arc::clone(&self.subtasks),
            counters: Arc::clone(&self.counters),
            flights: Arc::clone(&self.flights),
            coalesce: self.coalesce_enabled(),
            reply,
            default_order: options.order,
            max_inflight: options.max_inflight,
            max_items: options.max_items,
            user_quota: options.user_quota.clone(),
            local_threshold: self.config.local_threshold,
            policy: Arc::clone(&self.config.policy),
            reorder_capacity: self.config.queue_capacity.max(1) * 4,
            seq: 0,
            ordered: 0,
            emission: HashMap::new(),
            inflight: HashMap::new(),
            next_ordered: 0,
            pending: BTreeMap::new(),
            requests: 0,
            errors: 0,
            pool_closed: false,
        }
    }

    /// Executes a batch of requests on the worker pool; `responses[i]` answers
    /// `requests[i]`.  Submission shares the bounded queue with any concurrent
    /// sessions.
    pub fn run_batch(&self, requests: Vec<Request>) -> Vec<Response> {
        let total = requests.len();
        let (reply_tx, reply_rx) = mpsc::channel::<StreamEvent>();
        for (seq, request) in requests.into_iter().enumerate() {
            // Sub-threshold one-shot queries run inline (see [`ExecRoute`]):
            // answered on this thread through the embedded solver, no pool
            // round-trip, no cache participation.
            if exec_route(&request, false, self.config.local_threshold) == ExecRoute::Local {
                let response = local_response(
                    seq as u64,
                    None,
                    &request,
                    None,
                    self.config.policy.as_ref(),
                );
                let _ = reply_tx.send(StreamEvent::Done(response));
                continue;
            }
            let payload = Payload::Query {
                request,
                solver: None,
            };
            let cancel = CancelToken::new();
            // Single-flight: a request identical to one already executing
            // (or queued) attaches to it as a follower instead of taking a
            // pool slot — the flight delivers its terminal response.
            let key = flight_key(&payload, self.coalesce_enabled());
            if let Some(key) = &key {
                let follower = Follower::new(
                    seq as u64,
                    None,
                    false,
                    cancel.clone(),
                    None,
                    ReplySender::plain(reply_tx.clone()),
                    false,
                );
                if self.flights.try_join(key, follower) {
                    continue;
                }
            }
            let job = PoolJob {
                seq: seq as u64,
                client_id: None,
                payload,
                stream: false,
                cancel,
                max_items: None,
                reply: ReplySender::plain(reply_tx.clone()),
                key,
            };
            self.counters.inflight.fetch_add(1, Ordering::Relaxed);
            self.sender().send(job).expect("worker pool alive");
            self.subtasks.notify_workers();
        }
        drop(reply_tx);
        let mut out: Vec<Option<Response>> = Vec::new();
        out.resize_with(total, || None);
        for event in reply_rx {
            // One-shot jobs emit no chunk frames; only terminal responses
            // arrive here.
            if let StreamEvent::Done(response) = event {
                let slot = response.id as usize;
                out[slot] = Some(response);
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("worker pool answered every request"))
            .collect()
    }

    /// Convenience wrapper for a single request.
    pub fn run_one(&self, request: Request) -> Response {
        self.run_batch(vec![request])
            .pop()
            .expect("one response for one request")
    }

    /// Submits one request in **streaming** mode: the returned handle yields
    /// [`StreamEvent::Chunk`] frames as the job produces items and ends with
    /// the [`StreamEvent::Done`] terminal response.  The handle's
    /// [`CancelToken`] stops the job cooperatively at its next yield
    /// boundary (the terminal response then carries the partial result,
    /// `halted:"cancelled"`); dropping the handle mid-stream cancels the
    /// same way, the first time the job tries to yield.
    pub fn run_streaming(&self, request: Request, options: StreamRunOptions) -> StreamHandle {
        let (reply_tx, reply_rx) = mpsc::channel::<StreamEvent>();
        let cancel = CancelToken::new();
        let payload = Payload::Query {
            request,
            solver: options.solver,
        };
        // Single-flight: a duplicate of an in-flight execution subscribes to
        // its fan-out — already-produced chunks replay first, then live
        // ones, all under this handle's own cancel/quota.
        let key = flight_key(&payload, self.coalesce_enabled());
        if let Some(key) = &key {
            let follower = Follower::new(
                0,
                options.client_id.clone(),
                true,
                cancel.clone(),
                options.max_items,
                ReplySender::plain(reply_tx.clone()),
                false,
            );
            if self.flights.try_join(key, follower) {
                return StreamHandle {
                    cancel,
                    events: reply_rx,
                };
            }
        }
        let job = PoolJob {
            seq: 0,
            client_id: options.client_id,
            payload,
            stream: true,
            cancel: cancel.clone(),
            max_items: options.max_items,
            reply: ReplySender::plain(reply_tx),
            key,
        };
        self.counters.inflight.fetch_add(1, Ordering::Relaxed);
        self.sender().send(job).expect("worker pool alive");
        self.subtasks.notify_workers();
        StreamHandle {
            cancel,
            events: reply_rx,
        }
    }

    /// Streams wire-format request lines from `input` to JSON-lines responses
    /// on `output` in **input order** — shorthand for [`Engine::serve_with`]
    /// and [`ServeOptions::default`].
    pub fn serve<R: BufRead + Send, W: Write>(
        &self,
        input: R,
        output: &mut W,
    ) -> std::io::Result<ServeSummary> {
        self.serve_with(input, output, &ServeOptions::default())
    }

    /// Streams wire-format request lines from `input` and writes JSON-lines
    /// responses to `output`.  Blank lines and `#` comments are skipped.
    ///
    /// With `order: input` (the default) responses are written in request
    /// order — a bounded reorder buffer holds responses that finish early,
    /// and the reader pauses when that buffer fills, so one slow head-of-line
    /// request cannot make the buffer grow with the stream.  With
    /// `order: arrival` every response is written the moment it completes,
    /// possibly out of order; the `id` (and echoed `id=` correlation token)
    /// tell the client which request it answers.  Individual requests can
    /// override the session default with the `order=` wire keyword: an
    /// `order=arrival` request in an `input`-ordered session is excluded from
    /// the ordered stream and emitted on completion, and an `order=input`
    /// request in an `arrival` session joins the ordered stream.
    ///
    /// Responses are written and flushed as soon as they are ready — a client
    /// that sends one request and waits for its answer gets it without
    /// closing the input.  Errors reading the input or writing the output
    /// abort the session (no further lines are read) and are returned;
    /// responses already written stay valid.
    pub fn serve_with<R: BufRead + Send, W: Write>(
        &self,
        input: R,
        output: &mut W,
        options: &ServeOptions,
    ) -> std::io::Result<ServeSummary> {
        self.counters.sessions.fetch_add(1, Ordering::Relaxed);
        let _session = SessionGuard(&self.counters);
        let mut summary = ServeSummary::default();
        let mut write_error: Option<std::io::Error> = None;
        let read_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
        // Session-local emission plan, filled by the feeder before each job is
        // submitted: which responses join the ordered stream (and at which
        // position) and which are emitted on arrival.
        let emission: Mutex<HashMap<u64, Emission>> = Mutex::new(HashMap::new());
        // The session's in-flight jobs: sequence number → cancellation token,
        // registered at submission, removed when the terminal response is
        // collected.  This is what a `cancel id=N` request resolves against,
        // what `--max-inflight` admission counts, and what the abort path
        // cancels wholesale so a disconnected session's queued jobs are
        // dropped instead of running to completion for nobody.
        let inflight: Mutex<HashMap<u64, CancelToken>> = Mutex::new(HashMap::new());
        // Bound on completed-but-unemitted ordered responses: one slow
        // head-of-line request must not let the reorder buffer grow with the
        // stream.  The feeder pauses once this many responses are held.
        let reorder_capacity = self.config.queue_capacity.max(1) * 4;
        let held = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let (reply_tx, reply_rx) = mpsc::channel::<StreamEvent>();
        thread::scope(|scope| {
            // Feeder thread: parses lines into jobs and pushes them into the
            // shared bounded queue (send blocks while all workers are busy and
            // the queue is full), pausing while the reorder buffer is at
            // capacity.  Control commands (`cancel`) and quota rejections are
            // answered by the feeder itself, through the same reply channel,
            // so their responses still follow the session's emission plan.
            {
                let emission = &emission;
                let inflight = &inflight;
                let read_error = &read_error;
                let held = &held;
                let abort = &abort;
                let job_tx = self.sender().clone();
                let subtasks = Arc::clone(&self.subtasks);
                let counters = &self.counters;
                let flights = Arc::clone(&self.flights);
                let coalesce = self.coalesce_enabled();
                let local_threshold = self.config.local_threshold;
                let policy = Arc::clone(&self.config.policy);
                let default_order = options.order;
                let max_inflight = options.max_inflight;
                let max_items = options.max_items;
                let user_quota = options.user_quota.clone();
                scope.spawn(move || {
                    let mut seq: u64 = 0;
                    let mut ordered: u64 = 0;
                    let control_stats = || RequestStats {
                        solver: "-".to_string(),
                        ..RequestStats::default()
                    };
                    for line in input.lines() {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let line = match line {
                            Ok(line) => line,
                            Err(e) => {
                                *lock_ignoring_poison(read_error) = Some(e);
                                break;
                            }
                        };
                        let trimmed = line.trim();
                        if trimmed.is_empty() || trimmed.starts_with('#') {
                            continue;
                        }
                        let (client_id, order, stream, auth, action) =
                            match wire::parse_line(trimmed) {
                                Ok(parsed) => {
                                    let action = match parsed.command {
                                        wire::Command::Query(request) => {
                                            FeedAction::Submit(Payload::Query {
                                                request,
                                                solver: parsed.solver,
                                            })
                                        }
                                        wire::Command::Stats => FeedAction::Submit(Payload::Stats),
                                        wire::Command::Cancel { target } => {
                                            FeedAction::Cancel(target)
                                        }
                                    };
                                    (
                                        parsed.id,
                                        parsed.order.unwrap_or(default_order),
                                        parsed.stream,
                                        parsed.auth,
                                        action,
                                    )
                                }
                                Err(message) => (
                                    wire::salvage_client_id(trimmed),
                                    default_order,
                                    false,
                                    None,
                                    FeedAction::Submit(Payload::Malformed(message)),
                                ),
                            };
                        // Cancel requests are pure control: they are resolved
                        // and answered immediately — always on arrival, ahead
                        // of the reorder-buffer backpressure below, because a
                        // cancel may be the very thing that unblocks a stuck
                        // head-of-line request.  Immediate emission keeps a
                        // flood of cancels bounded (each is written straight
                        // out, never buffered).
                        if let FeedAction::Cancel(target) = action {
                            let cancelled = match lock_ignoring_poison(inflight).get(&target) {
                                Some(token) => {
                                    token.cancel();
                                    true
                                }
                                None => false,
                            };
                            lock_ignoring_poison(emission).insert(seq, Emission::Immediate);
                            let response = Response {
                                id: seq,
                                client_id,
                                outcome: Ok(Outcome::Cancel { target, cancelled }),
                                halted: None,
                                chunks: stream.then_some(0),
                                stats: control_stats(),
                            };
                            let _ = reply_tx.send(StreamEvent::Done(response));
                            seq += 1;
                            continue;
                        }
                        // Streamed requests always emit on arrival: holding an
                        // unbounded number of chunks for in-order emission
                        // would defeat both the latency and the memory point
                        // of streaming (documented in WIRE.md).
                        let plan = match order {
                            OrderMode::Input if !stream => {
                                let position = ordered;
                                ordered += 1;
                                Emission::Ordered(position)
                            }
                            _ => Emission::Immediate,
                        };
                        lock_ignoring_poison(emission).insert(seq, plan);
                        // Backpressure before anything that can occupy the
                        // reorder buffer — including quota rejections, which
                        // would otherwise grow `pending` without bound behind
                        // one slow head-of-line request.
                        while held.load(Ordering::Relaxed) >= reorder_capacity
                            && !abort.load(Ordering::Relaxed)
                        {
                            thread::sleep(Duration::from_millis(1));
                        }
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let FeedAction::Submit(payload) = action else {
                            unreachable!("cancel handled above")
                        };
                        // Per-user fairness gates solver work at admission:
                        // an authenticated query whose user is out of tokens
                        // is answered with a `quota` error before it can
                        // occupy a worker.  Control traffic (`stats`) and
                        // malformed lines are never throttled.
                        if let (Some(quota), Some(user), Payload::Query { .. }) =
                            (user_quota.as_deref(), auth.as_deref(), &payload)
                        {
                            if !quota.admit(user) {
                                counters.throttled.fetch_add(1, Ordering::Relaxed);
                                let response = Response {
                                    id: seq,
                                    client_id,
                                    outcome: Err(EngineError::quota(format!(
                                        "user `{user}` exceeded the admission rate \
                                         ({} req/s, burst {})",
                                        quota.rate_per_sec(),
                                        quota.burst()
                                    ))),
                                    halted: None,
                                    chunks: stream.then_some(0),
                                    stats: control_stats(),
                                };
                                let _ = reply_tx.send(StreamEvent::Done(response));
                                seq += 1;
                                continue;
                            }
                        }
                        if let Some(limit) = max_inflight {
                            if lock_ignoring_poison(inflight).len() >= limit {
                                let response = Response {
                                    id: seq,
                                    client_id,
                                    outcome: Err(EngineError::quota(format!(
                                        "session in-flight quota exceeded \
                                         ({limit} request(s) already running)"
                                    ))),
                                    halted: None,
                                    chunks: stream.then_some(0),
                                    stats: control_stats(),
                                };
                                let _ = reply_tx.send(StreamEvent::Done(response));
                                seq += 1;
                                continue;
                            }
                        }
                        // Sub-threshold one-shot queries run inline on the
                        // feeder thread (see [`ExecRoute`]), answered through
                        // the same reply channel as quota rejections so the
                        // session's emission plan still applies.
                        if let Payload::Query { request, solver } = &payload {
                            if exec_route(request, stream, local_threshold) == ExecRoute::Local {
                                let response = local_response(
                                    seq,
                                    client_id,
                                    request,
                                    *solver,
                                    policy.as_ref(),
                                );
                                let _ = reply_tx.send(StreamEvent::Done(response));
                                seq += 1;
                                continue;
                            }
                        }
                        let cancel = CancelToken::new();
                        // Single-flight: attach to an identical in-flight
                        // query instead of submitting a duplicate job.  The
                        // follower still registers as in flight for the
                        // session (cancellable, counted by `--max-inflight`);
                        // its terminal arrives via the same reply channel.
                        let key = flight_key(&payload, coalesce);
                        if let Some(key) = &key {
                            let follower = Follower::new(
                                seq,
                                client_id.clone(),
                                stream,
                                cancel.clone(),
                                max_items,
                                ReplySender::plain(reply_tx.clone()),
                                false,
                            );
                            if flights.try_join(key, follower) {
                                lock_ignoring_poison(inflight).insert(seq, cancel);
                                seq += 1;
                                continue;
                            }
                        }
                        lock_ignoring_poison(inflight).insert(seq, cancel.clone());
                        let job = PoolJob {
                            seq,
                            client_id,
                            payload,
                            stream,
                            cancel,
                            max_items,
                            reply: ReplySender::plain(reply_tx.clone()),
                            key,
                        };
                        counters.inflight.fetch_add(1, Ordering::Relaxed);
                        if job_tx.send(job).is_err() {
                            counters.inflight.fetch_sub(1, Ordering::Relaxed);
                            break;
                        }
                        subtasks.notify_workers();
                        seq += 1;
                    }
                    // Dropping the feeder's `reply_tx` (moved in) lets the
                    // collector loop end once all in-flight jobs answered.
                    drop(reply_tx);
                });
            }
            // Collector (this thread): drain chunk frames and terminal
            // responses as they complete; chunks are written immediately,
            // terminal responses follow the session's ordering plan.
            let mut next_ordered: u64 = 0;
            let mut pending: BTreeMap<u64, Response> = BTreeMap::new();
            let mut aborted = false;
            for event in reply_rx {
                if aborted {
                    continue; // drain in-flight work, discard
                }
                let response = match event {
                    StreamEvent::Chunk(frame) => {
                        let failed = writeln!(output, "{}", frame.to_json_line())
                            .and_then(|()| output.flush())
                            .err();
                        if let Some(e) = failed {
                            write_error = Some(e);
                            aborted = true;
                            abort.store(true, Ordering::Relaxed);
                            cancel_all(&inflight);
                        }
                        continue;
                    }
                    StreamEvent::Done(response) => response,
                };
                lock_ignoring_poison(&inflight).remove(&response.id);
                summary.requests += 1;
                if !response.is_ok() {
                    summary.errors += 1;
                }
                let plan = lock_ignoring_poison(&emission)
                    .remove(&response.id)
                    .unwrap_or(Emission::Immediate);
                let mut ready: Vec<Response> = Vec::new();
                match plan {
                    Emission::Immediate => ready.push(response),
                    Emission::Ordered(position) => {
                        pending.insert(position, response);
                        while let Some(next) = pending.remove(&next_ordered) {
                            ready.push(next);
                            next_ordered += 1;
                        }
                        held.store(pending.len(), Ordering::Relaxed);
                    }
                }
                if ready.is_empty() {
                    continue;
                }
                let mut failed = None;
                for r in &ready {
                    if let Err(e) = writeln!(output, "{}", r.to_json_line()) {
                        failed = Some(e);
                        break;
                    }
                }
                if failed.is_none() {
                    if let Err(e) = output.flush() {
                        failed = Some(e);
                    }
                }
                if let Some(e) = failed {
                    write_error = Some(e);
                    aborted = true;
                    abort.store(true, Ordering::Relaxed);
                    // The session is gone: stop its queued jobs (workers
                    // drop a cancelled job at its first yield boundary)
                    // instead of computing results nobody will read.
                    cancel_all(&inflight);
                }
            }
        });
        if let Some(e) = write_error {
            return Err(e);
        }
        if let Some(e) = read_error.into_inner().unwrap_or_else(|p| p.into_inner()) {
            return Err(e);
        }
        output.flush()?;
        Ok(summary)
    }
}

/// The canonical flight key of a query payload — the request's cache key
/// plus the `solver=` override suffix, exactly as the worker's cache path
/// renders it.  `None` for control payloads, or when coalescing is off for
/// the engine (key rendering is not free; skip it when it buys nothing).
fn flight_key(payload: &Payload, coalesce: bool) -> Option<String> {
    if !coalesce {
        return None;
    }
    let Payload::Query { request, solver } = payload else {
        return None;
    };
    let mut key = request.cache_key();
    if let Some(kind) = solver {
        key.push_str(" solver=");
        key.push_str(kind.name());
    }
    Some(key)
}

/// Cancels every in-flight job of an aborted session.
fn cancel_all(inflight: &Mutex<HashMap<u64, CancelToken>>) {
    for token in lock_ignoring_poison(inflight).values() {
        token.cancel();
    }
}

/// What [`SessionMux::feed_line`] did with one wire line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MuxFeed {
    /// The line was consumed: answered immediately, submitted to the pool,
    /// or skipped (blank/comment).
    Progress,
    /// The line was **not** consumed: the session's reorder buffer or the
    /// shared job queue is full.  Retry the same line once responses drain.
    Stalled,
    /// The worker pool hung up (the engine is shutting down); the session
    /// cannot make progress and should be closed.
    PoolClosed,
}

/// The non-blocking equivalent of one [`Engine::serve_with`] session: the
/// feeder and collector halves of the threaded loop folded into a state
/// machine a readiness loop can drive from one thread.
///
/// The semantics mirror `serve_with` exactly — per-session sequence numbers,
/// the cancel/quota control paths, the `order=input` reorder buffer with its
/// bounded capacity, immediate emission for streams — so every wire test
/// passes unchanged over either transport.  The differences are mechanical:
/// lines arrive via [`SessionMux::feed_line`] instead of a blocking reader,
/// worker events via [`SessionMux::on_event`] instead of a blocking `recv`,
/// and rendered response bytes accumulate in a caller-owned buffer instead
/// of going straight to a socket.
pub(crate) struct SessionMux {
    job_tx: SyncSender<PoolJob>,
    /// Pokes parked workers after each accepted job.
    subtasks: Arc<SubtaskQueue>,
    counters: Arc<EngineCounters>,
    /// The engine's single-flight registry (duplicate queries attach to
    /// in-flight executions instead of becoming pool jobs).
    flights: Arc<FlightTable>,
    /// Whether this session renders flight keys and attempts joins.
    coalesce: bool,
    /// Template reply channel cloned into every job (already wired to the
    /// readiness loop's waker).
    reply: ReplySender,
    default_order: OrderMode,
    max_inflight: Option<usize>,
    max_items: Option<u64>,
    user_quota: Option<Arc<UserBuckets>>,
    /// [`EngineConfig::local_threshold`]: sub-threshold one-shot queries are
    /// answered inline by `feed_line` instead of becoming pool jobs.
    local_threshold: usize,
    /// The engine's routing policy, for those inline answers.
    policy: Arc<dyn SolverPolicy>,
    reorder_capacity: usize,
    seq: u64,
    ordered: u64,
    emission: HashMap<u64, Emission>,
    inflight: HashMap<u64, CancelToken>,
    next_ordered: u64,
    pending: BTreeMap<u64, Response>,
    requests: u64,
    errors: u64,
    pool_closed: bool,
}

impl Drop for SessionMux {
    fn drop(&mut self) {
        self.counters.sessions.fetch_sub(1, Ordering::Relaxed);
    }
}

impl SessionMux {
    /// Feeds one wire line (already split, not yet trimmed).  Rendered
    /// responses — control answers, quota rejections — are appended to `out`.
    /// [`MuxFeed::Stalled`] means the line was not consumed and must be
    /// re-fed after [`SessionMux::on_event`] has drained some state.
    pub(crate) fn feed_line(&mut self, line: &str, out: &mut Vec<u8>) -> MuxFeed {
        if self.pool_closed {
            return MuxFeed::PoolClosed;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return MuxFeed::Progress;
        }
        let control_stats = || RequestStats {
            solver: "-".to_string(),
            ..RequestStats::default()
        };
        let (client_id, order, stream, auth, action) = match wire::parse_line(trimmed) {
            Ok(parsed) => {
                let action = match parsed.command {
                    wire::Command::Query(request) => FeedAction::Submit(Payload::Query {
                        request,
                        solver: parsed.solver,
                    }),
                    wire::Command::Stats => FeedAction::Submit(Payload::Stats),
                    wire::Command::Cancel { target } => FeedAction::Cancel(target),
                };
                (
                    parsed.id,
                    parsed.order.unwrap_or(self.default_order),
                    parsed.stream,
                    parsed.auth,
                    action,
                )
            }
            Err(message) => (
                wire::salvage_client_id(trimmed),
                self.default_order,
                false,
                None,
                FeedAction::Submit(Payload::Malformed(message)),
            ),
        };
        // Cancels resolve ahead of the reorder backpressure, exactly as in
        // the threaded feeder: a cancel may be what unblocks a stuck
        // head-of-line request.
        if let FeedAction::Cancel(target) = action {
            let cancelled = match self.inflight.get(&target) {
                Some(token) => {
                    token.cancel();
                    true
                }
                None => false,
            };
            let seq = self.next_seq();
            self.emission.insert(seq, Emission::Immediate);
            self.finish(
                Response {
                    id: seq,
                    client_id,
                    outcome: Ok(Outcome::Cancel { target, cancelled }),
                    halted: None,
                    chunks: stream.then_some(0),
                    stats: control_stats(),
                },
                out,
            );
            return MuxFeed::Progress;
        }
        // The threaded feeder sleeps here while the reorder buffer is at
        // capacity; the non-blocking equivalent is to leave the line
        // unconsumed and let the loop retry after responses drain.
        if self.pending.len() >= self.reorder_capacity {
            return MuxFeed::Stalled;
        }
        let FeedAction::Submit(payload) = action else {
            unreachable!("cancel handled above")
        };
        let plan = match order {
            OrderMode::Input if !stream => {
                let position = self.ordered;
                Emission::Ordered(position)
            }
            _ => Emission::Immediate,
        };
        let throttled = match (&self.user_quota, auth.as_deref(), &payload) {
            (Some(quota), Some(user), Payload::Query { .. }) if !quota.admit(user) => {
                Some(format!(
                    "user `{user}` exceeded the admission rate ({} req/s, burst {})",
                    quota.rate_per_sec(),
                    quota.burst()
                ))
            }
            _ => None,
        };
        if let Some(message) = throttled {
            self.counters.throttled.fetch_add(1, Ordering::Relaxed);
            let seq = self.next_seq();
            self.commit_plan(seq, plan);
            self.finish(
                Response {
                    id: seq,
                    client_id,
                    outcome: Err(EngineError::quota(message)),
                    halted: None,
                    chunks: stream.then_some(0),
                    stats: control_stats(),
                },
                out,
            );
            return MuxFeed::Progress;
        }
        if let Some(limit) = self.max_inflight {
            if self.inflight.len() >= limit {
                let seq = self.next_seq();
                self.commit_plan(seq, plan);
                self.finish(
                    Response {
                        id: seq,
                        client_id,
                        outcome: Err(EngineError::quota(format!(
                            "session in-flight quota exceeded \
                             ({limit} request(s) already running)"
                        ))),
                        halted: None,
                        chunks: stream.then_some(0),
                        stats: control_stats(),
                    },
                    out,
                );
                return MuxFeed::Progress;
            }
        }
        // Sub-threshold one-shot queries are answered inline (see
        // [`ExecRoute`]) — no pool job, no in-flight registration; the
        // response follows the session's emission plan like any other.
        if let Payload::Query { request, solver } = &payload {
            if exec_route(request, stream, self.local_threshold) == ExecRoute::Local {
                let response =
                    local_response(self.seq, client_id, request, *solver, self.policy.as_ref());
                let seq = self.next_seq();
                self.commit_plan(seq, plan);
                self.finish(response, out);
                return MuxFeed::Progress;
            }
        }
        let cancel = CancelToken::new();
        // Single-flight, mirroring the threaded feeder: a duplicate of an
        // in-flight query attaches as a follower — no pool job, no queue
        // capacity consumed (so it cannot stall), terminal via `on_event`.
        let key = flight_key(&payload, self.coalesce);
        if let Some(k) = &key {
            let follower = Follower::new(
                self.seq,
                client_id.clone(),
                stream,
                cancel.clone(),
                self.max_items,
                self.reply.clone(),
                false,
            );
            if self.flights.try_join(k, follower) {
                let seq = self.next_seq();
                self.commit_plan(seq, plan);
                self.inflight.insert(seq, cancel);
                return MuxFeed::Progress;
            }
        }
        let job = PoolJob {
            seq: self.seq,
            client_id,
            payload,
            stream,
            cancel: cancel.clone(),
            max_items: self.max_items,
            reply: self.reply.clone(),
            key,
        };
        match self.job_tx.try_send(job) {
            Ok(()) => {
                self.subtasks.notify_workers();
                self.counters.inflight.fetch_add(1, Ordering::Relaxed);
                let seq = self.next_seq();
                self.commit_plan(seq, plan);
                self.inflight.insert(seq, cancel);
                MuxFeed::Progress
            }
            // Queue full is the readiness-loop form of the feeder blocking on
            // `send`: nothing was committed, so the same line retries intact.
            Err(mpsc::TrySendError::Full(_)) => MuxFeed::Stalled,
            Err(mpsc::TrySendError::Disconnected(_)) => {
                self.pool_closed = true;
                MuxFeed::PoolClosed
            }
        }
    }

    /// Applies one worker event, appending any rendered output to `out` —
    /// the collector half of the threaded loop.
    pub(crate) fn on_event(&mut self, event: StreamEvent, out: &mut Vec<u8>) {
        match event {
            StreamEvent::Chunk(frame) => {
                out.extend_from_slice(frame.to_json_line().as_bytes());
                out.push(b'\n');
            }
            StreamEvent::Done(response) => {
                self.inflight.remove(&response.id);
                self.finish(response, out);
            }
        }
    }

    /// Cancels every in-flight job (the session's consumer is gone).
    pub(crate) fn abort(&mut self) {
        for token in self.inflight.values() {
            token.cancel();
        }
    }

    /// Whether every submitted request has been answered and emitted.
    pub(crate) fn is_idle(&self) -> bool {
        self.inflight.is_empty() && self.pending.is_empty()
    }

    /// (requests answered, error responses) so far — the session's
    /// contribution to a [`crate::transport::TransportSummary`].
    pub(crate) fn tallies(&self) -> (u64, u64) {
        (self.requests, self.errors)
    }

    /// Consumes the next session sequence number.
    fn next_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// Registers `seq`'s emission plan, consuming an ordered position if the
    /// plan is ordered.
    fn commit_plan(&mut self, seq: u64, plan: Emission) {
        if let Emission::Ordered(_) = plan {
            self.ordered += 1;
        }
        self.emission.insert(seq, plan);
    }

    /// Routes one terminal response through the session's emission plan,
    /// rendering everything that becomes emittable.
    fn finish(&mut self, response: Response, out: &mut Vec<u8>) {
        self.requests += 1;
        if !response.is_ok() {
            self.errors += 1;
        }
        let plan = self
            .emission
            .remove(&response.id)
            .unwrap_or(Emission::Immediate);
        match plan {
            Emission::Immediate => render_response(&response, out),
            Emission::Ordered(position) => {
                self.pending.insert(position, response);
                while let Some(next) = self.pending.remove(&self.next_ordered) {
                    render_response(&next, out);
                    self.next_ordered += 1;
                }
            }
        }
    }
}

/// Appends one response as a JSON line to a session output buffer.
fn render_response(response: &Response, out: &mut Vec<u8>) {
    out.extend_from_slice(response.to_json_line().as_bytes());
    out.push(b'\n');
}

/// What the feeder does with one parsed line.
enum FeedAction {
    /// Submit a job to the worker pool.
    Submit(Payload),
    /// Resolve a `cancel id=N` against the session's in-flight registry.
    Cancel(u64),
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Hang up the job queue; workers exit once it drains.
        self.job_tx.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// How one response should leave a serve session.
#[derive(Debug, Clone, Copy)]
enum Emission {
    /// Write the moment the response arrives (out-of-order streaming).
    Immediate,
    /// Write at this position of the in-order stream.
    Ordered(u64),
}

/// How long one worker holds the job-queue receiver per poll.  This bounds
/// how stale an idle worker's view of the *subtask* queue can get: a split
/// pushed while every idle worker is inside a poll is picked up within one
/// timeout (pushes also notify the subtask condvar, so parked non-holders
/// wake immediately — the timeout is the backstop for the lock holder).
const JOB_POLL: Duration = Duration::from_millis(2);

/// The persistent worker body, until the engine hangs up the queue: steal
/// and run intra-query subtasks, then poll the job queue, then execute one
/// job, around again.
///
/// Subtasks are drained *first*: they subdivide queries the pool already
/// accepted, so finishing them beats starting new work — and an idle sibling
/// picking them up is the entire point of splitting.  Only one worker at a
/// time polls the shared job receiver (`try_lock`); the others park on the
/// subtask condvar so neither jobs nor subtasks are ever left waiting on a
/// busy loop.
/// Answers a local-routed query inline on the calling (session) thread.
///
/// This is the in-process fast path of [`ExecRoute::Local`]: the same
/// execution pipeline as a pool worker ([`ops::execute`] through the
/// configured policy), minus everything scheduling-related — no job queue
/// round-trip, no cache lookup or insert (so the canonical cache key, a hex
/// render of every edge word, is never built), no cancellation window.  The
/// response payload is identical to what a pool worker would produce for the
/// same request; `worker` reports shard 0, like a single-worker pool.
///
/// Panics are contained exactly as on a worker: a misbehaving request
/// answers with an `internal` error instead of unwinding into the session.
fn local_response(
    seq: u64,
    client_id: Option<String>,
    request: &Request,
    solver_override: Option<SolverKind>,
    policy: &dyn SolverPolicy,
) -> Response {
    let started = Instant::now();
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        let fixed;
        let policy: &dyn SolverPolicy = match solver_override {
            Some(kind) => {
                fixed = FixedPolicy(kind);
                &fixed
            }
            None => policy,
        };
        ops::execute(request, policy)
    }));
    match attempt {
        Ok((outcome, info)) => Response {
            id: seq,
            client_id,
            outcome: outcome.map_err(EngineError::execute),
            halted: None,
            chunks: None,
            stats: RequestStats {
                micros: started.elapsed().as_micros(),
                peak_bits: info.peak_bits,
                solver: info.solver,
                duality_calls: info.duality_calls,
                cache_hit: false,
                worker: 0,
            },
        },
        Err(panic) => {
            let detail = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_string());
            Response {
                id: seq,
                client_id,
                outcome: Err(EngineError::internal(format!(
                    "local execution panicked answering the request: {detail}"
                ))),
                halted: None,
                chunks: None,
                stats: RequestStats {
                    micros: started.elapsed().as_micros(),
                    solver: "-".to_string(),
                    ..RequestStats::default()
                },
            }
        }
    }
}

fn worker_loop(ctx: &WorkerCtx, jobs: &Mutex<Receiver<PoolJob>>, worker_index: usize) {
    loop {
        ctx.subtasks.drain_steal();
        // A poisoned lock (another worker panicked mid-dequeue) is
        // recovered: losing one worker must not kill the pool.
        let polled = match jobs.try_lock() {
            Ok(receiver) => receiver.recv_timeout(JOB_POLL),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                poisoned.into_inner().recv_timeout(JOB_POLL)
            }
            Err(std::sync::TryLockError::WouldBlock) => {
                // Another worker is polling for jobs; park until a subtask
                // or a job submission pokes the condvar.
                ctx.subtasks.wait_for_work(JOB_POLL);
                continue;
            }
        };
        match polled {
            Ok(job) => {
                // `None` means the job attached to an identical in-flight
                // execution as a follower: the flight delivers its terminal
                // and settles the in-flight gauge.
                if let Some(response) = answer(ctx, worker_index, &job) {
                    // A receiver that hung up (aborted session) just
                    // discards the answer.
                    let _ = job.reply.send(StreamEvent::Done(response));
                    ctx.counters.job_finished();
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Executes one job on a worker, turning panics into `internal` errors so a
/// misbehaving request cannot take a pool thread down with it.  `None`
/// means the job joined an in-flight duplicate as a follower — the flight
/// owns its delivery, and the worker must not answer (or decrement) it.
fn answer(ctx: &WorkerCtx, worker_index: usize, job: &PoolJob) -> Option<Response> {
    let base_stats = || RequestStats {
        worker: worker_index,
        solver: "-".to_string(),
        ..RequestStats::default()
    };
    match &job.payload {
        Payload::Malformed(message) => Some(Response {
            id: job.seq,
            client_id: job.client_id.clone(),
            outcome: Err(EngineError::parse(message.clone())),
            halted: None,
            chunks: job.stream.then_some(0),
            stats: base_stats(),
        }),
        Payload::Stats => Some(Response {
            id: job.seq,
            client_id: job.client_id.clone(),
            outcome: Ok(Outcome::Stats {
                cache: ctx.cache.stats(),
                workers: ctx.workers,
                protocol: wire::PROTOCOL_VERSION,
                uptime_ms: ctx.started.elapsed().as_millis() as u64,
                cache_restored: ctx.cache_restored,
                // The probe is itself an in-flight job: subtract it so an
                // otherwise idle engine reports 0.
                inflight: ctx
                    .counters
                    .inflight
                    .load(Ordering::Relaxed)
                    .saturating_sub(1),
                sessions: ctx.counters.sessions.load(Ordering::Relaxed),
                connections: ctx.counters.connections.load(Ordering::Relaxed),
                throttled: ctx.counters.throttled.load(Ordering::Relaxed),
                subtasks: ctx.subtasks.spawned(),
                subtasks_stolen: ctx.subtasks.stolen(),
                flights: ctx.flights.led(),
                coalesced: ctx.flights.coalesced(),
            }),
            halted: None,
            // Item-less kinds still honour the streamed framing contract:
            // zero chunks, then this response as the `done` frame.
            chunks: job.stream.then_some(0),
            stats: base_stats(),
        }),
        Payload::Query { request, solver } => {
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                process_one(job, request, *solver, worker_index, ctx)
            }));
            attempt.unwrap_or_else(|panic| {
                let detail = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                Some(Response {
                    id: job.seq,
                    client_id: job.client_id.clone(),
                    outcome: Err(EngineError::internal(format!(
                        "worker panicked answering the request: {detail}"
                    ))),
                    halted: None,
                    // The chunk count is unknown after a panic; mark the
                    // terminal frame of a streamed request anyway so the
                    // client knows the stream ended.
                    chunks: job.stream.then_some(0),
                    stats: base_stats(),
                })
            })
        }
    }
}

/// The sink a worker threads through [`ops::execute_streaming`]: forwards
/// items/progress as chunk frames when the job streams, counts items against
/// the session's quota, and reports cancellation (explicit, or implied by a
/// vanished frame consumer) at every yield boundary.
struct WorkerSink<'a> {
    job: &'a PoolJob,
    kind: &'static str,
    /// Chunk frames actually delivered (items + progress).
    emitted: u64,
    /// Result items yielded (delivered or not — the quota is about work).
    items: u64,
    /// The reply channel hung up mid-stream: treat as cancellation.
    receiver_gone: bool,
}

impl<'a> WorkerSink<'a> {
    fn new(job: &'a PoolJob, kind: &'static str) -> Self {
        WorkerSink {
            job,
            kind,
            emitted: 0,
            items: 0,
            receiver_gone: false,
        }
    }

    fn directive(&self) -> SinkDirective {
        if self.job.cancel.is_cancelled() || self.receiver_gone {
            SinkDirective::Stop(StopReason::Cancelled)
        } else if self.job.max_items.is_some_and(|quota| self.items >= quota) {
            SinkDirective::Stop(StopReason::ItemQuota)
        } else {
            SinkDirective::Continue
        }
    }

    fn send(&mut self, payload: ChunkPayload) {
        if !self.job.stream || self.receiver_gone {
            return;
        }
        let frame = ChunkFrame {
            id: self.job.seq,
            client_id: self.job.client_id.clone(),
            seq: self.emitted,
            kind: self.kind,
            payload,
        };
        if self.job.reply.send(StreamEvent::Chunk(frame)).is_ok() {
            self.emitted += 1;
        } else {
            self.receiver_gone = true;
        }
    }
}

impl ResultSink for WorkerSink<'_> {
    fn item(&mut self, item: StreamItem) -> SinkDirective {
        self.items += 1;
        self.send(ChunkPayload::Item(item));
        self.directive()
    }

    fn progress(&mut self, progress: StreamProgress) {
        self.send(ChunkPayload::Progress(progress));
    }

    fn check(&self) -> SinkDirective {
        self.directive()
    }
}

/// Executes one typed query on a worker: cache lookup (with chunk replay for
/// streamed hits), single-flight gate, solver dispatch through a
/// [`WorkerSink`] (solo) or [`FlightSink`] (flight leader), stats.  `None`
/// means the job joined an active flight as a follower — the flight owns its
/// delivery and the worker moves on to the next job.
fn process_one(
    job: &PoolJob,
    request: &Request,
    solver_override: Option<SolverKind>,
    worker: usize,
    ctx: &WorkerCtx,
) -> Option<Response> {
    let started = Instant::now();
    // A `solver=` override changes which solver's telemetry the caller sees,
    // so overridden requests get their own cache entries.  Submission sites
    // pre-render the key when coalescing applies; rendered or not, it is the
    // same canonical string.
    let key = job.key.clone().or_else(|| {
        ctx.cache_enabled.then(|| {
            let mut key = request.cache_key();
            if let Some(kind) = solver_override {
                key.push_str(" solver=");
                key.push_str(kind.name());
            }
            key
        })
    });
    if let Some(key) = &key {
        if let Some(hit) = ctx.cache.get(key) {
            // A streamed request served from the cache still streams: the
            // cached items are replayed as chunk frames (in the terminal
            // result's canonical order), subject to the same cancellation
            // and quota checks as a fresh run.
            let mut sink = WorkerSink::new(job, request.kind());
            let (outcome, halted) = replay_cached(&hit.outcome, &mut sink);
            return Some(Response {
                id: job.seq,
                client_id: job.client_id.clone(),
                outcome,
                halted,
                chunks: job.stream.then_some(sink.emitted),
                stats: RequestStats {
                    micros: started.elapsed().as_micros(),
                    peak_bits: hit.info.peak_bits,
                    solver: hit.info.solver.clone(),
                    duality_calls: hit.info.duality_calls,
                    cache_hit: true,
                    worker,
                },
            });
        }
    }
    // Post-miss single-flight gate: duplicates that raced past the
    // submission-site join (or were submitted before the leader was) attach
    // here instead of executing.
    let lease = match (&key, ctx.coalesce) {
        (Some(key), true) => {
            match ctx
                .flights
                .lead_or_join(key, request.kind(), || Follower::from_job(job))
            {
                LeadOutcome::Lead(lease) => Some(lease),
                LeadOutcome::Joined => return None,
            }
        }
        _ => None,
    };
    let fixed;
    let policy: &dyn SolverPolicy = match solver_override {
        Some(kind) => {
            fixed = FixedPolicy(kind);
            &fixed
        }
        None => ctx.policy.as_ref(),
    };
    // Large duality calls may split into work-stealing subtasks on the
    // shared pool; the job's cancel token doubles as the split's
    // cancellation signal, so queued subtasks of a cancelled query are
    // skipped at the steal boundary.
    let parallel = ParallelContext::new(
        Arc::new(EnginePool::new(
            Arc::clone(&ctx.subtasks),
            job.cancel.clone(),
        )),
        ctx.parallel_threshold,
    );
    let mut solo_sink = WorkerSink::new(job, request.kind());
    let mut flight_sink = lease
        .as_ref()
        .map(|lease| FlightSink::new(job, request.kind(), lease));
    let sink: &mut dyn ResultSink = match flight_sink.as_mut() {
        Some(sink) => sink,
        None => &mut solo_sink,
    };
    let execution = ops::execute_streaming_with(request, policy, Some(&parallel), sink);
    let halted = execution.halt;
    let info = execution.info;
    let outcome = execution.outcome.map_err(|message| match halted {
        // A job stopped before it produced anything has no partial result to
        // answer with; the error code says why.
        Some(StopReason::Cancelled) => EngineError::cancelled(message),
        _ => EngineError::execute(message),
    });
    // Only results that ran to their natural end are cacheable: a halted
    // job's partial outcome depends on when the stop landed, which is not a
    // property of the request.  A flight whose original leader detached but
    // that ran to completion for its followers is a natural end.
    if halted.is_none() {
        if let Some(key) = key {
            ctx.cache.insert(
                key,
                CachedResult {
                    outcome: outcome.clone(),
                    info: info.clone(),
                },
            );
        }
    }
    let stats = RequestStats {
        micros: started.elapsed().as_micros(),
        peak_bits: info.peak_bits,
        solver: info.solver,
        duality_calls: info.duality_calls,
        cache_hit: false,
        worker,
    };
    let (outcome, halted, emitted) = match (lease, flight_sink) {
        (Some(lease), Some(sink)) => {
            // Settle the followers with the execution's results, then answer
            // as the leader saw it (its own partial if it was promoted away).
            let view = sink.leader_view(&outcome, halted);
            lease.finish(&outcome, halted, &stats);
            view
        }
        _ => (outcome, halted, solo_sink.emitted),
    };
    Some(Response {
        id: job.seq,
        client_id: job.client_id.clone(),
        outcome,
        halted,
        chunks: job.stream.then_some(emitted),
        stats,
    })
}

/// Replays a cached outcome through a [`WorkerSink`] (a no-op for one-shot
/// jobs and item-less outcomes), truncating the outcome if the sink stops
/// the replay mid-way — a cancelled or quota-limited client sees the same
/// prefix semantics whether the result was computed or replayed.
///
/// The outcome is borrowed from the `Arc`-shared cache entry: a replay
/// clones only the prefix the client actually receives, never the stored
/// vectors wholesale.
fn replay_cached(
    outcome: &Result<Outcome, EngineError>,
    sink: &mut WorkerSink<'_>,
) -> (Result<Outcome, EngineError>, Option<StopReason>) {
    // The historical fast hit path: nothing to forward, nothing to count —
    // hand the cached outcome straight back (one clone, into the response).
    if !sink.job.stream && sink.job.max_items.is_none() && !sink.job.cancel.is_cancelled() {
        return (outcome.clone(), None);
    }
    match outcome {
        Ok(Outcome::Transversals {
            transversals,
            complete,
        }) => {
            let (replayed, halted) =
                replay_items(transversals, sink, |t| StreamItem::Transversal(t.clone()));
            let outcome = Ok(Outcome::Transversals {
                transversals: transversals[..replayed].to_vec(),
                complete: *complete && halted.is_none(),
            });
            (outcome, halted)
        }
        Ok(Outcome::FullBorders {
            maximal_frequent,
            minimal_infrequent,
            identification_calls,
            complete,
        }) => {
            let (replayed_max, mut halted) =
                replay_items(maximal_frequent, sink, |s| StreamItem::BorderElement {
                    maximal: true,
                    itemset: s.clone(),
                });
            let replayed_min = if halted.is_none() {
                let (replayed, stop) =
                    replay_items(minimal_infrequent, sink, |s| StreamItem::BorderElement {
                        maximal: false,
                        itemset: s.clone(),
                    });
                halted = stop;
                replayed
            } else {
                0
            };
            let outcome = Ok(Outcome::FullBorders {
                maximal_frequent: maximal_frequent[..replayed_max].to_vec(),
                minimal_infrequent: minimal_infrequent[..replayed_min].to_vec(),
                identification_calls: *identification_calls,
                complete: *complete && halted.is_none(),
            });
            (outcome, halted)
        }
        other => (other.clone(), None),
    }
}

/// Replays one item list through the sink, returning how many items made it
/// and whether (and why) the sink stopped the replay.
fn replay_items<T>(
    items: &[T],
    sink: &mut WorkerSink<'_>,
    to_item: impl Fn(&T) -> StreamItem,
) -> (usize, Option<StopReason>) {
    for (index, entry) in items.iter().enumerate() {
        if let SinkDirective::Stop(reason) = sink.check() {
            return (index, Some(reason));
        }
        if let SinkDirective::Stop(reason) = sink.item(to_item(entry)) {
            return (index + 1, Some(reason));
        }
    }
    (items.len(), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::Outcome;
    use qld_hypergraph::generators;
    use std::io::{BufReader, Read};

    fn engine(workers: usize, cache: bool) -> Engine {
        Engine::new(EngineConfig {
            workers,
            queue_capacity: 4,
            cache,
            ..EngineConfig::default()
        })
    }

    /// An engine whose local (in-process) route takes every sub-threshold
    /// `check`, with the given threshold.
    fn engine_local(threshold: usize) -> Engine {
        Engine::new(EngineConfig {
            workers: 2,
            queue_capacity: 4,
            local_threshold: threshold,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn local_route_answers_identically_to_pool() {
        let pool = engine(2, true);
        let local = engine_local(usize::MAX);
        for k in 1..=4 {
            let li = generators::matching_instance(k);
            let request = Request::DecideDuality {
                g: li.g.clone(),
                h: li.h.clone(),
            };
            let a = pool.run_one(request.clone());
            let b = local.run_one(request);
            // The payload is byte-identical; only scheduling telemetry
            // (micros, worker shard) may differ.
            assert_eq!(a.outcome, b.outcome, "matching k={k}");
            assert_eq!(a.halted, b.halted);
            assert_eq!(a.chunks, b.chunks);
            assert_eq!(a.stats.solver, b.stats.solver);
            assert_eq!(a.stats.duality_calls, b.stats.duality_calls);
            assert_eq!(a.stats.peak_bits, b.stats.peak_bits);
        }
    }

    #[test]
    fn local_route_bypasses_the_cache() {
        let eng = engine_local(usize::MAX);
        let li = generators::matching_instance(2);
        let request = Request::DecideDuality { g: li.g, h: li.h };
        let first = eng.run_one(request.clone());
        let second = eng.run_one(request);
        // Local answers never consult or populate the cache.
        assert!(!first.stats.cache_hit);
        assert!(!second.stats.cache_hit);
        let stats = eng.cache_stats();
        assert_eq!(stats.entries, 0, "local answers are not cached");
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn local_route_respects_the_threshold() {
        // Threshold 1: every real instance is at least 1 work unit, so all
        // requests take the pool path and the cache fills as usual.
        let eng = engine_local(1);
        let li = generators::matching_instance(2);
        let request = Request::DecideDuality { g: li.g, h: li.h };
        let _ = eng.run_one(request.clone());
        let second = eng.run_one(request);
        assert!(
            second.stats.cache_hit,
            "above-threshold requests still pool"
        );
    }

    #[test]
    fn local_route_skips_streaming_and_mining_kinds() {
        // Streamed requests and non-`check` kinds never route local, even
        // with the threshold wide open.
        let li = generators::matching_instance(2);
        assert_eq!(
            exec_route(
                &Request::DecideDuality {
                    g: li.g.clone(),
                    h: li.h.clone()
                },
                true, // streamed
                usize::MAX,
            ),
            ExecRoute::Pool
        );
        assert_eq!(
            exec_route(
                &Request::EnumerateTransversals {
                    g: li.g.clone(),
                    limit: Some(1)
                },
                false,
                usize::MAX,
            ),
            ExecRoute::Pool
        );
        // And the disabled default keeps even tiny checks on the pool.
        assert_eq!(
            exec_route(&Request::DecideDuality { g: li.g, h: li.h }, false, 0,),
            ExecRoute::Pool
        );
    }

    #[test]
    fn serve_session_uses_local_route_inline() {
        let eng = engine_local(usize::MAX);
        let input = "check 0,1;2,3 0,2;0,3;1,2;1,3
check 0,1;2,3 0,2;0,3;1,2
";
        let mut out = Vec::new();
        let summary = eng.serve(input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.requests, 2);
        assert_eq!(summary.errors, 0);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains(r#""dual":true"#), "{}", lines[0]);
        assert!(lines[1].contains(r#""dual":false"#), "{}", lines[1]);
        // Inline answers never touch the cache.
        assert_eq!(eng.cache_stats().entries, 0);
    }

    #[test]
    fn batch_preserves_request_order() {
        let eng = engine(3, true);
        let requests: Vec<Request> = (1..=4)
            .map(|k| {
                let li = generators::matching_instance(k);
                Request::DecideDuality { g: li.g, h: li.h }
            })
            .collect();
        let responses = eng.run_batch(requests);
        assert_eq!(responses.len(), 4);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert_eq!(
                r.outcome,
                Ok(Outcome::Duality {
                    dual: true,
                    witness: None
                })
            );
        }
    }

    #[test]
    fn identical_requests_hit_the_cache() {
        let eng = engine(2, true);
        let li = generators::matching_instance(2);
        let req = Request::DecideDuality { g: li.g, h: li.h };
        let responses = eng.run_batch(vec![req.clone(), req.clone(), req]);
        assert!(responses.iter().all(|r| r.is_ok()));
        let stats = eng.cache_stats();
        assert_eq!(stats.entries, 1);
        assert!(
            stats.hits >= 1,
            "expected at least one cache hit: {stats:?}"
        );
        // Cached responses are flagged and agree with the computed one.
        let computed: Vec<_> = responses.iter().filter(|r| !r.stats.cache_hit).collect();
        let hits: Vec<_> = responses.iter().filter(|r| r.stats.cache_hit).collect();
        assert!(!computed.is_empty());
        for h in hits {
            assert_eq!(h.outcome, computed[0].outcome);
        }
    }

    #[test]
    fn sessions_share_one_worker_pool() {
        // Two concurrent serve sessions against the same engine: both finish
        // and each sees only its own responses.
        let eng = Arc::new(engine(2, true));
        let mut threads = Vec::new();
        for session in 0..2 {
            let eng = Arc::clone(&eng);
            threads.push(thread::spawn(move || {
                let input: String = (0..8).map(|_| "check 0,1;2,3 0,2;0,3;1,2;1,3\n").collect();
                let mut out = Vec::new();
                let summary = eng.serve(input.as_bytes(), &mut out).unwrap();
                assert_eq!(summary.requests, 8, "session {session}");
                let text = String::from_utf8(out).unwrap();
                assert_eq!(text.lines().count(), 8, "session {session}");
                for (i, line) in text.lines().enumerate() {
                    assert!(line.starts_with(&format!("{{\"id\":{i},")), "{line}");
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn serve_emits_ordered_json_lines() {
        let eng = engine(4, true);
        let input = "\
# a comment, then a blank line

check 0,1;2,3 0,2;0,3;1,2;1,3
check 0,1;2,3 0,2;0,3;1,2
enumerate n=4:0,1;2,3 limit=2
bogus line
keys 1,2;1,3
";
        let mut out = Vec::new();
        let summary = eng.serve(input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.requests, 5);
        assert_eq!(summary.errors, 1);
        let lines: Vec<String> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        assert_eq!(lines.len(), 5);
        for (i, line) in lines.iter().enumerate() {
            assert!(
                line.starts_with(&format!("{{\"id\":{i},")),
                "line {i}: {line}"
            );
        }
        assert!(lines[0].contains("\"dual\":true"));
        assert!(lines[1].contains("\"dual\":false"));
        assert!(lines[2].contains("\"complete\":false") && lines[2].contains("\"count\":2"));
        assert!(lines[3].contains("\"ok\":false") && lines[3].contains("\"code\":\"parse\""));
        assert!(lines[4].contains("\"kind\":\"keys\""));
    }

    #[test]
    fn serve_answers_stats_and_echoes_client_ids() {
        let eng = engine(2, true);
        let input = "check 0,1;2,3 0,2;0,3;1,2;1,3 id=alpha\nstats id=beta\nfrobnicate id=gamma\n";
        let mut out = Vec::new();
        let summary = eng.serve(input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.errors, 1);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"client_id\":\"alpha\""));
        assert!(lines[1].contains("\"client_id\":\"beta\""));
        assert!(lines[1].contains("\"kind\":\"stats\""));
        assert!(lines[1].contains("\"capacity\":"));
        // Even a malformed line keeps its correlation token.
        assert!(lines[2].contains("\"client_id\":\"gamma\""));
        assert!(lines[2].contains("\"code\":\"parse\""));
    }

    /// Inline `.qld` wire rendering of a hypergraph's edges.
    fn edges_text(h: &qld_hypergraph::Hypergraph) -> String {
        h.edges()
            .iter()
            .map(|e| {
                e.to_indices()
                    .iter()
                    .map(usize::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect::<Vec<_>>()
            .join(";")
    }

    #[test]
    fn intra_query_splits_show_up_in_stats() {
        let eng = Engine::new(EngineConfig {
            workers: 2,
            cache: false,
            parallel_threshold: 0, // split every routed duality call
            ..EngineConfig::default()
        });
        let li = generators::matching_instance(3);
        let input = format!(
            "check {} {} solver=quadlog\nstats\n",
            edges_text(&li.g),
            edges_text(&li.h)
        );
        let mut out = Vec::new();
        let summary = eng.serve(input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.requests, 2);
        assert_eq!(summary.errors, 0);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"dual\":true"), "{}", lines[0]);
        let stats_line = lines[1];
        assert!(stats_line.contains("\"kind\":\"stats\""), "{stats_line}");
        let spawned = stats_line
            .split("\"subtasks\":")
            .nth(1)
            .and_then(|rest| {
                rest.chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse::<u64>()
                    .ok()
            })
            .expect("stats must carry a subtasks counter");
        assert!(
            spawned > 0,
            "a threshold-0 quadlog check must have split: {stats_line}"
        );
        assert!(stats_line.contains("\"subtasks_stolen\":"), "{stats_line}");
    }

    #[test]
    fn parallel_answers_are_identical_across_worker_counts() {
        // The determinism contract survives intra-query splitting: any worker
        // count, same outcomes — including the non-duality witness.
        let mut requests = Vec::new();
        for k in [3, 4] {
            let li = generators::matching_instance(k);
            requests.push(Request::DecideDuality {
                g: li.g.clone(),
                h: li.h.clone(),
            });
            let mut broken = li.h;
            broken.remove_edge(1);
            requests.push(Request::DecideDuality { g: li.g, h: broken });
        }
        let li = generators::matching_instance(4);
        requests.push(Request::EnumerateTransversals {
            g: li.g,
            limit: None,
        });
        let run = |workers: usize| {
            let eng = Engine::new(EngineConfig {
                workers,
                cache: false,
                parallel_threshold: 0,
                policy: Arc::new(FixedPolicy(SolverKind::QuadChain)),
                ..EngineConfig::default()
            });
            eng.run_batch(requests.clone())
        };
        let sequentialish = run(1);
        let parallel = run(4);
        assert_eq!(sequentialish.len(), parallel.len());
        for (a, b) in sequentialish.iter().zip(&parallel) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.halted, b.halted);
            // The metered solver telemetry is part of the contract too.
            assert_eq!(a.stats.peak_bits, b.stats.peak_bits);
            assert_eq!(a.stats.duality_calls, b.stats.duality_calls);
        }
    }

    #[test]
    fn cache_capacity_one_evicts_lru_under_load() {
        let eng = Engine::new(EngineConfig {
            workers: 1,
            cache: true,
            cache_capacity: 1,
            ..EngineConfig::default()
        });
        let a = generators::matching_instance(2);
        let b = generators::matching_instance(3);
        let req_a = Request::DecideDuality { g: a.g, h: a.h };
        let req_b = Request::DecideDuality { g: b.g, h: b.h };
        // a, b (evicts a), a (evicts b, recomputed), a (hit)
        let responses = eng.run_batch(vec![req_a.clone(), req_b, req_a.clone(), req_a]);
        assert!(responses.iter().all(|r| r.is_ok()));
        let stats = eng.cache_stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.hits, 1);
        assert!(responses[3].stats.cache_hit);
    }

    /// A reader that yields one request line, then holds the input open until
    /// it sees the response flag (set by [`FlagWriter`]) before reporting EOF.
    /// If `serve` only answered at EOF this would never observe the flag.
    struct GatedReader {
        sent_line: bool,
        responded: Arc<AtomicBool>,
        saw_response_before_eof: Arc<AtomicBool>,
    }

    impl Read for GatedReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.sent_line {
                self.sent_line = true;
                let line = b"check 0,1;2,3 0,2;0,3;1,2;1,3\n";
                buf[..line.len()].copy_from_slice(line);
                return Ok(line.len());
            }
            for _ in 0..1000 {
                if self.responded.load(Ordering::Relaxed) {
                    self.saw_response_before_eof.store(true, Ordering::Relaxed);
                    break;
                }
                thread::sleep(Duration::from_millis(5));
            }
            Ok(0)
        }
    }

    /// Sets a flag as soon as one full JSON line has been written.
    struct FlagWriter {
        responded: Arc<AtomicBool>,
        data: Vec<u8>,
    }

    impl Write for FlagWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.data.extend_from_slice(buf);
            if self.data.contains(&b'\n') {
                self.responded.store(true, Ordering::Relaxed);
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn serve_streams_responses_before_input_eof() {
        let responded = Arc::new(AtomicBool::new(false));
        let saw = Arc::new(AtomicBool::new(false));
        let reader = BufReader::new(GatedReader {
            sent_line: false,
            responded: Arc::clone(&responded),
            saw_response_before_eof: Arc::clone(&saw),
        });
        let mut writer = FlagWriter {
            responded: Arc::clone(&responded),
            data: Vec::new(),
        };
        let summary = engine(2, true).serve(reader, &mut writer).unwrap();
        assert_eq!(summary.requests, 1);
        assert!(
            saw.load(Ordering::Relaxed),
            "response was not written until the input closed"
        );
        assert!(String::from_utf8(writer.data)
            .unwrap()
            .contains("\"dual\":true"));
    }

    /// A writer that fails every write.
    struct BrokenWriter;

    impl Write for BrokenWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "broken pipe",
            ))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn serve_aborts_on_write_error() {
        let input: String = "check 0,1;2,3 0,2;0,3;1,2;1,3\n".repeat(64);
        let err = engine(2, false)
            .serve(input.as_bytes(), &mut BrokenWriter)
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
    }

    /// A reader that yields one good line and then an I/O error.
    struct FailingReader {
        sent_line: bool,
    }

    impl Read for FailingReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.sent_line {
                self.sent_line = true;
                let line = b"check 0,1;2,3 0,2;0,3;1,2;1,3\n";
                buf[..line.len()].copy_from_slice(line);
                return Ok(line.len());
            }
            Err(std::io::Error::other("disk on fire"))
        }
    }

    #[test]
    fn serve_propagates_read_errors() {
        let reader = BufReader::new(FailingReader { sent_line: false });
        let mut out = Vec::new();
        let err = engine(1, false).serve(reader, &mut out).unwrap_err();
        assert_eq!(err.to_string(), "disk on fire");
        // the request read before the failure was still answered
        assert!(String::from_utf8(out).unwrap().contains("\"dual\":true"));
    }

    #[test]
    fn queue_smaller_than_batch_still_completes() {
        let eng = Engine::new(EngineConfig {
            workers: 2,
            queue_capacity: 1,
            cache: false,
            ..EngineConfig::default()
        });
        let li = generators::matching_instance(2);
        let requests: Vec<Request> = (0..32)
            .map(|_| Request::DecideDuality {
                g: li.g.clone(),
                h: li.h.clone(),
            })
            .collect();
        let responses = eng.run_batch(requests);
        assert_eq!(responses.len(), 32);
        assert!(responses.iter().all(|r| r.is_ok()));
        // Cache disabled: no entries, and every response computed fresh.
        assert_eq!(eng.cache_stats().entries, 0);
        assert!(responses.iter().all(|r| !r.stats.cache_hit));
    }
}
