//! Per-user admission control: token buckets shared across all of a user's
//! connections.
//!
//! The `auth=` wire keyword maps a request to a user id; every session (at a
//! shard *and* at the front router) consults one shared [`UserBuckets`] so
//! that a user opening a thousand connections gets the same aggregate rate as
//! a user opening one. Anonymous requests (no `auth=`) are never throttled —
//! the keyword is additive and wire-v2-compatible.
//!
//! The refill arithmetic lives in [`Bucket`], a pure value type that takes
//! the clock as an argument, so the proptest model suite
//! (`tests/engine_fairness.rs`) can drive it through arbitrary schedules —
//! including a clock that jumps backwards — without sleeping.

use crate::lock_ignoring_poison;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Hard bound on distinct users tracked at once. When exceeded, buckets that
/// have refilled back to a full burst (i.e. idle users) are evicted; a user
/// whose bucket was evicted re-enters with a full burst, which is exactly the
/// state the bucket had when dropped.
const MAX_TRACKED_USERS: usize = 65_536;

/// The refill state of one user's token bucket: pure arithmetic over a caller
/// supplied monotonic-nanosecond clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Tokens currently available; one request costs one token.
    pub tokens: f64,
    /// The clock reading at the last refill. Never moves backwards.
    pub refilled_at_nanos: u64,
}

impl Bucket {
    /// A bucket holding a full burst, as every user starts out.
    pub fn full(burst: f64, now_nanos: u64) -> Bucket {
        Bucket {
            tokens: burst,
            refilled_at_nanos: now_nanos,
        }
    }

    /// Refill for the time elapsed since the last call (clamped to `burst`),
    /// then try to take one token. A `now_nanos` at or before the last refill
    /// mints nothing: a clock that jumps backwards cannot be exploited to
    /// manufacture tokens, and the high-water mark is kept so tokens are not
    /// double-minted when the clock recovers.
    pub fn try_admit(&mut self, now_nanos: u64, rate_per_sec: f64, burst: f64) -> bool {
        if now_nanos > self.refilled_at_nanos {
            let elapsed = (now_nanos - self.refilled_at_nanos) as f64 / 1e9;
            self.tokens = (self.tokens + elapsed * rate_per_sec).min(burst);
            self.refilled_at_nanos = now_nanos;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Whether the bucket will have refilled to a full burst by `now_nanos`
    /// — i.e. whether its owner has been idle long enough to forget.
    fn is_full_at(&self, now_nanos: u64, rate_per_sec: f64, burst: f64) -> bool {
        let elapsed = now_nanos.saturating_sub(self.refilled_at_nanos) as f64 / 1e9;
        self.tokens + elapsed * rate_per_sec >= burst
    }
}

/// Token-bucket admission for every authenticated user, shared (behind an
/// `Arc`) by all sessions of a server.
#[derive(Debug)]
pub struct UserBuckets {
    rate_per_sec: f64,
    burst: f64,
    started: Instant,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl UserBuckets {
    /// A bucket family refilling at `rate_per_sec` tokens per second with a
    /// capacity of `burst` tokens. A burst below one token would reject every
    /// request, so it is clamped up to 1.
    pub fn new(rate_per_sec: f64, burst: f64) -> UserBuckets {
        UserBuckets {
            rate_per_sec: rate_per_sec.max(0.0),
            burst: burst.max(1.0),
            started: Instant::now(),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// The configured refill rate, in tokens per second.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// The configured burst capacity, in tokens.
    pub fn burst(&self) -> f64 {
        self.burst
    }

    /// Admit or reject one request from `user`, using the real monotonic
    /// clock.
    pub fn admit(&self, user: &str) -> bool {
        self.admit_at(user, self.started.elapsed().as_nanos() as u64)
    }

    /// Admit or reject one request from `user` at an explicit clock reading
    /// (exposed for deterministic tests).
    pub fn admit_at(&self, user: &str, now_nanos: u64) -> bool {
        let mut buckets = lock_ignoring_poison(&self.buckets);
        if !buckets.contains_key(user) && buckets.len() >= MAX_TRACKED_USERS {
            let (rate, burst) = (self.rate_per_sec, self.burst);
            buckets.retain(|_, b| !b.is_full_at(now_nanos, rate, burst));
        }
        let bucket = buckets
            .entry(user.to_string())
            .or_insert_with(|| Bucket::full(self.burst, now_nanos));
        bucket.try_admit(now_nanos, self.rate_per_sec, self.burst)
    }

    /// How many users currently hold a tracked bucket.
    pub fn tracked_users(&self) -> usize {
        lock_ignoring_poison(&self.buckets).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn burst_is_spent_then_rejected() {
        let buckets = UserBuckets::new(1.0, 3.0);
        assert!(buckets.admit_at("alice", 0));
        assert!(buckets.admit_at("alice", 0));
        assert!(buckets.admit_at("alice", 0));
        assert!(!buckets.admit_at("alice", 0));
    }

    #[test]
    fn users_do_not_share_buckets() {
        let buckets = UserBuckets::new(1.0, 1.0);
        assert!(buckets.admit_at("alice", 0));
        assert!(!buckets.admit_at("alice", 0));
        assert!(
            buckets.admit_at("bob", 0),
            "alice's flood must not charge bob"
        );
    }

    #[test]
    fn tokens_refill_at_the_configured_rate() {
        let buckets = UserBuckets::new(2.0, 1.0);
        assert!(buckets.admit_at("u", 0));
        assert!(!buckets.admit_at("u", 0));
        // 2 tokens/sec: half a second refills the single-token burst.
        assert!(buckets.admit_at("u", SEC / 2));
    }

    #[test]
    fn a_backwards_clock_mints_nothing() {
        let buckets = UserBuckets::new(1000.0, 1.0);
        assert!(buckets.admit_at("u", 10 * SEC));
        assert!(!buckets.admit_at("u", 10 * SEC));
        // The clock jumping back 9 seconds must not refill anything...
        assert!(!buckets.admit_at("u", SEC));
        // ...and recovery is measured from the high-water mark, not the dip.
        assert!(!buckets.admit_at("u", 10 * SEC));
        assert!(buckets.admit_at("u", 11 * SEC));
    }

    #[test]
    fn idle_users_are_evicted_under_pressure_and_reenter_full() {
        let buckets = UserBuckets::new(1.0, 2.0);
        assert!(buckets.admit_at("idle", 0));
        assert_eq!(buckets.tracked_users(), 1);
        // Much later the idle bucket is full again, so it is evictable; a
        // re-appearing user starts from the same full-burst state.
        assert!(buckets.admit_at("idle", 100 * SEC));
        assert!(buckets.admit_at("idle", 100 * SEC));
        assert!(!buckets.admit_at("idle", 100 * SEC));
    }

    #[test]
    fn zero_rate_still_allows_the_burst() {
        let buckets = UserBuckets::new(0.0, 2.0);
        assert!(buckets.admit_at("u", 0));
        assert!(buckets.admit_at("u", SEC));
        assert!(!buckets.admit_at("u", 1000 * SEC));
    }
}
