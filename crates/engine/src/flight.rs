//! Single-flight request coalescing: at most one execution per canonical
//! cache key at any moment.
//!
//! Every query op is a pure function of its canonical cache key, and a
//! duality check costs up to quasi-polynomial work — yet the result cache
//! only helps *after* the first execution completes.  A hot-key stampede
//! (N identical requests arriving while the first is still running) would
//! execute the solver N times.  This module closes that window: the first
//! miss becomes the flight's **leader** (a normal pool job, executed as
//! usual); every concurrent duplicate becomes a **follower** that attaches
//! to the flight instead of executing.
//!
//! Followers keep their own request identity end to end — own `id=`
//! sequence number, own `client_id`, own cancellation token and item quota.
//! A streamed follower replays the chunks the flight already produced (from
//! the flight's buffer, with its own per-request chunk `seq` numbering) and
//! then receives live ones; a one-shot follower just gets the terminal
//! outcome.  When the execution completes, every follower receives a
//! terminal [`Response`] built from the same outcome and telemetry as the
//! leader's — byte-identical modulo `id`/`client_id`.
//!
//! **Leader promotion:** a flight is not killed by its leader's cancellation
//! or disconnection.  The execution's sink keeps running while *any*
//! participant still wants the result; a stopped leader merely detaches
//! (its own response is the partial it consumed, like any cancelled job)
//! while the flight runs on for the followers — and a naturally completed
//! flight is cached even if the original leader gave up along the way.
//!
//! Joins happen at two levels: the submission sites (`run_batch`, the
//! threaded feeder, `SessionMux::feed_line`, `run_streaming`) attach before
//! a duplicate ever occupies a pool slot, and the worker itself re-checks
//! after its cache miss (`lead_or_join`) so duplicates that raced past the
//! submission check still coalesce.  `qld front` adds a third, router-level
//! tier for one-shot duplicates across client sessions (see
//! `crates/front/src/coalesce.rs`).

use crate::engine::{EngineCounters, PoolJob, ReplySender};
use crate::lock_ignoring_poison;
use crate::response::{EngineError, Outcome, RequestStats, Response};
use crate::stream::{
    CancelToken, ChunkFrame, ChunkPayload, ResultSink, SinkDirective, StopReason, StreamEvent,
    StreamItem,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The engine-wide registry of in-flight coalesced executions, keyed by the
/// canonical cache key (including the `solver=` override suffix).
pub(crate) struct FlightTable {
    inner: Mutex<HashMap<String, Arc<Flight>>>,
    counters: Arc<EngineCounters>,
    /// Flights led (coalescible executions) since startup.
    led: AtomicU64,
    /// Followers attached (duplicate executions avoided) since startup.
    coalesced: AtomicU64,
}

/// What [`FlightTable::lead_or_join`] decided for a worker's cache miss.
pub(crate) enum LeadOutcome {
    /// No active flight for the key: the caller is now the leader and must
    /// execute, then settle the lease.
    Lead(FlightLease),
    /// The job attached to an active flight as a follower; the flight owns
    /// its delivery (and its in-flight gauge decrement).
    Joined,
}

impl FlightTable {
    pub(crate) fn new(counters: Arc<EngineCounters>) -> Self {
        FlightTable {
            inner: Mutex::new(HashMap::new()),
            counters,
            led: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Flights led since startup (the `flights` stats field).
    pub(crate) fn led(&self) -> u64 {
        self.led.load(Ordering::Relaxed)
    }

    /// Followers attached since startup (the `coalesced` stats field).
    pub(crate) fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Attaches `follower` to the key's active flight, if one exists and is
    /// still accepting joins.  `false` means the caller must submit (or
    /// execute) the request itself.
    pub(crate) fn try_join(&self, key: &str, follower: Follower) -> bool {
        let table = lock_ignoring_poison(&self.inner);
        let Some(flight) = table.get(key) else {
            return false;
        };
        let mut state = lock_ignoring_poison(&flight.state);
        if state.completed {
            return false;
        }
        state.followers.push(follower);
        self.coalesced.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// A worker's post-cache-miss gate: become the key's flight leader, or
    /// join the active flight as a follower (`make_follower` is only called
    /// in the latter case).
    pub(crate) fn lead_or_join(
        self: &Arc<Self>,
        key: &str,
        kind: &'static str,
        make_follower: impl FnOnce() -> Follower,
    ) -> LeadOutcome {
        let mut table = lock_ignoring_poison(&self.inner);
        if let Some(flight) = table.get(key) {
            let mut state = lock_ignoring_poison(&flight.state);
            if !state.completed {
                state.followers.push(make_follower());
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                return LeadOutcome::Joined;
            }
            // A completed flight still in the table is mid-teardown on its
            // leader's thread; replace it — the old lease removes by
            // identity, never clobbering the new entry.
        }
        let flight = Arc::new(Flight {
            kind,
            state: Mutex::new(FlightState::default()),
        });
        table.insert(key.to_string(), Arc::clone(&flight));
        self.led.fetch_add(1, Ordering::Relaxed);
        LeadOutcome::Lead(FlightLease {
            table: Arc::clone(self),
            key: key.to_string(),
            flight,
            settled: false,
        })
    }

    /// Removes the key's entry iff it is still `flight` (a replacement
    /// flight under the same key is left alone).
    fn remove(&self, key: &str, flight: &Arc<Flight>) {
        let mut table = lock_ignoring_poison(&self.inner);
        if table.get(key).is_some_and(|f| Arc::ptr_eq(f, flight)) {
            table.remove(key);
        }
    }
}

/// One coalesced execution: the chunk buffer every follower replays from,
/// and the followers themselves.  The leader is not a participant here — its
/// frames flow through the executing worker's normal paths.
pub(crate) struct Flight {
    /// The request kind, for follower chunk framing (identical requests have
    /// identical kinds, so the leader's is everyone's).
    kind: &'static str,
    state: Mutex<FlightState>,
}

#[derive(Default)]
struct FlightState {
    /// Every chunk payload the execution produced, in order, regardless of
    /// whether the leader streamed: a follower enrolling at any point
    /// replays the identical sequence.
    buffer: Vec<ChunkPayload>,
    followers: Vec<Follower>,
    /// No further joins: the execution has stopped (or is settling).
    completed: bool,
}

impl Flight {
    /// Delivers the terminal outcome to every follower.  `outcome`/`halted`/
    /// `stats` are the leader execution's results; a follower that stopped
    /// early (its own cancel or quota) gets a partial built from the prefix
    /// it consumed instead.
    fn settle(
        &self,
        outcome: &Result<Outcome, EngineError>,
        halted: Option<StopReason>,
        stats: &RequestStats,
        counters: &EngineCounters,
    ) {
        let mut state = lock_ignoring_poison(&self.state);
        state.completed = true;
        let FlightState {
            buffer, followers, ..
        } = &mut *state;
        for mut follower in followers.drain(..) {
            follower.pump(self.kind, buffer);
            let (f_outcome, f_halted) = match follower.halt {
                None => (outcome.clone(), halted),
                Some(reason) => (
                    partial_outcome(self.kind, buffer, follower.items, follower.pos, reason),
                    Some(reason),
                ),
            };
            let response = Response {
                id: follower.seq,
                client_id: follower.client_id.clone(),
                outcome: f_outcome,
                halted: f_halted,
                chunks: follower.stream.then_some(follower.emitted),
                stats: stats.clone(),
            };
            let _ = follower.reply.send(StreamEvent::Done(response));
            if follower.pool_admitted {
                counters.job_finished();
            }
        }
    }
}

/// The leader's obligation to settle its flight.  Dropping it unsettled
/// (a panicking leader) fails the followers with an `internal` error so
/// nobody waits forever.
pub(crate) struct FlightLease {
    table: Arc<FlightTable>,
    key: String,
    flight: Arc<Flight>,
    settled: bool,
}

impl FlightLease {
    fn flight(&self) -> &Arc<Flight> {
        &self.flight
    }

    /// Settles the flight: removes it from the table (new duplicates start
    /// fresh — or hit the cache) and delivers every follower's terminal.
    pub(crate) fn finish(
        mut self,
        outcome: &Result<Outcome, EngineError>,
        halted: Option<StopReason>,
        stats: &RequestStats,
    ) {
        self.settled = true;
        self.table.remove(&self.key, &self.flight);
        self.flight
            .settle(outcome, halted, stats, &self.table.counters);
    }
}

impl Drop for FlightLease {
    fn drop(&mut self) {
        if self.settled {
            return;
        }
        self.table.remove(&self.key, &self.flight);
        let outcome = Err(EngineError::internal(
            "the coalesced leader execution failed; retry the request",
        ));
        let stats = RequestStats {
            solver: "-".to_string(),
            ..RequestStats::default()
        };
        self.flight
            .settle(&outcome, None, &stats, &self.table.counters);
    }
}

/// One attached duplicate of an in-flight execution.
pub(crate) struct Follower {
    /// Sequence number within the follower's own session.
    seq: u64,
    client_id: Option<String>,
    /// Whether the follower asked for chunk-by-chunk streaming.
    stream: bool,
    cancel: CancelToken,
    max_items: Option<u64>,
    reply: ReplySender,
    /// Whether the job was counted on the pool's in-flight gauge (a
    /// worker-level join); the flight decrements it at delivery.  Joins at
    /// the submission sites never touch the gauge.
    pool_admitted: bool,
    /// Buffer entries consumed so far.
    pos: usize,
    /// Chunk frames actually delivered (own per-request `seq` numbering).
    emitted: u64,
    /// Result items consumed (delivered or not — the quota is about work).
    items: u64,
    /// The reply channel hung up mid-stream: treat as cancellation.
    receiver_gone: bool,
    /// Why the follower stopped consuming, once it has.
    halt: Option<StopReason>,
}

impl Follower {
    pub(crate) fn new(
        seq: u64,
        client_id: Option<String>,
        stream: bool,
        cancel: CancelToken,
        max_items: Option<u64>,
        reply: ReplySender,
        pool_admitted: bool,
    ) -> Follower {
        Follower {
            seq,
            client_id,
            stream,
            cancel,
            max_items,
            reply,
            pool_admitted,
            pos: 0,
            emitted: 0,
            items: 0,
            receiver_gone: false,
            halt: None,
        }
    }

    /// A follower job built from the pool job it replaces (worker-level
    /// joins; the gauge was already incremented at submission).
    pub(crate) fn from_job(job: &PoolJob) -> Follower {
        Follower::new(
            job.seq,
            job.client_id.clone(),
            job.stream,
            job.cancel.clone(),
            job.max_items,
            job.reply.clone(),
            true,
        )
    }

    /// The reason this follower can consume no further, if any — the same
    /// checks a solo job's sink runs at each yield boundary.
    fn would_stop(&self) -> Option<StopReason> {
        if let Some(reason) = self.halt {
            return Some(reason);
        }
        if self.cancel.is_cancelled() || self.receiver_gone {
            return Some(StopReason::Cancelled);
        }
        if self.max_items.is_some_and(|quota| self.items >= quota) {
            return Some(StopReason::ItemQuota);
        }
        None
    }

    fn send(&mut self, kind: &'static str, payload: ChunkPayload) {
        if !self.stream || self.receiver_gone {
            return;
        }
        let frame = ChunkFrame {
            id: self.seq,
            client_id: self.client_id.clone(),
            seq: self.emitted,
            kind,
            payload,
        };
        if self.reply.send(StreamEvent::Chunk(frame)).is_ok() {
            self.emitted += 1;
        } else {
            self.receiver_gone = true;
        }
    }

    /// Consumes the buffer from this follower's position, honouring the
    /// follower's own cancel/quota at the same boundaries a cached replay
    /// would (checked before each item, re-checked after delivering it;
    /// progress checkpoints pass through unchecked).
    fn pump(&mut self, kind: &'static str, buffer: &[ChunkPayload]) {
        while self.halt.is_none() && self.pos < buffer.len() {
            match &buffer[self.pos] {
                ChunkPayload::Item(item) => {
                    if let Some(reason) = self.would_stop() {
                        self.halt = Some(reason);
                        return;
                    }
                    self.items += 1;
                    self.send(kind, ChunkPayload::Item(item.clone()));
                    self.pos += 1;
                    if let Some(reason) = self.would_stop() {
                        self.halt = Some(reason);
                        return;
                    }
                }
                progress @ ChunkPayload::Progress(_) => {
                    let progress = progress.clone();
                    self.send(kind, progress);
                    self.pos += 1;
                }
            }
        }
    }
}

/// The sink a flight **leader** threads through `ops::execute_streaming`:
/// behaves exactly like the solo [`WorkerSink`] for the leader itself
/// (chunk framing, quota, cancellation), while recording every payload in
/// the flight buffer and fanning it out to the followers.
///
/// The directive reported to the running op is the *flight's*, not the
/// leader's: the execution keeps going while any participant is still
/// consuming, which is what promotes a follower when the leader stops.
///
/// [`WorkerSink`]: crate::engine
pub(crate) struct FlightSink<'a> {
    job: &'a PoolJob,
    kind: &'static str,
    flight: Arc<Flight>,
    /// Leader-side chunk framing state (mirrors the solo sink).
    emitted: u64,
    items: u64,
    receiver_gone: bool,
    /// `Some` once the leader detached while followers kept the flight
    /// alive; the leader's own answer is then the partial it consumed.
    /// Stays `None` when the leader is live at the end *or* the flight
    /// stopped with it — both answer with the execution's own outcome,
    /// exactly as an uncoalesced run would.
    leader_halt: Option<StopReason>,
    /// Buffer length at leader detach (bounds the partial's telemetry scan).
    leader_pos: usize,
}

impl<'a> FlightSink<'a> {
    pub(crate) fn new(job: &'a PoolJob, kind: &'static str, lease: &FlightLease) -> Self {
        FlightSink {
            job,
            kind,
            flight: Arc::clone(lease.flight()),
            emitted: 0,
            items: 0,
            receiver_gone: false,
            leader_halt: None,
            leader_pos: 0,
        }
    }

    /// The leader's stop reason as of now (its recorded detach, or a fresh
    /// cancel/quota trip).
    fn leader_would_stop(&self) -> Option<StopReason> {
        if let Some(reason) = self.leader_halt {
            return Some(reason);
        }
        if self.job.cancel.is_cancelled() || self.receiver_gone {
            return Some(StopReason::Cancelled);
        }
        if self.job.max_items.is_some_and(|quota| self.items >= quota) {
            return Some(StopReason::ItemQuota);
        }
        None
    }

    fn send_leader(&mut self, payload: ChunkPayload) {
        if !self.job.stream || self.receiver_gone {
            return;
        }
        let frame = ChunkFrame {
            id: self.job.seq,
            client_id: self.job.client_id.clone(),
            seq: self.emitted,
            kind: self.kind,
            payload,
        };
        if self.job.reply.send(StreamEvent::Chunk(frame)).is_ok() {
            self.emitted += 1;
        } else {
            self.receiver_gone = true;
        }
    }

    /// Records one payload in the flight, delivers it to every live
    /// consumer (leader first, so its frame order matches a solo run), and
    /// computes the flight directive.
    fn push(&mut self, payload: ChunkPayload) -> SinkDirective {
        let flight = Arc::clone(&self.flight);
        let mut state = lock_ignoring_poison(&flight.state);
        if self.leader_halt.is_none() {
            if matches!(payload, ChunkPayload::Item(_)) {
                self.items += 1;
            }
            self.send_leader(payload.clone());
        }
        state.buffer.push(payload);
        let buffer_len = state.buffer.len();
        let FlightState {
            buffer, followers, ..
        } = &mut *state;
        for follower in followers.iter_mut() {
            follower.pump(self.kind, buffer);
        }
        let Some(reason) = self.leader_would_stop() else {
            return SinkDirective::Continue;
        };
        if state.followers.iter().any(|f| f.would_stop().is_none()) {
            // Promotion: a follower still wants the result, so the
            // execution outlives its leader.  Record the detach point once;
            // the leader consumes nothing further.
            if self.leader_halt.is_none() {
                self.leader_halt = Some(reason);
                self.leader_pos = buffer_len;
            }
            return SinkDirective::Continue;
        }
        // Everyone has stopped: the flight dies at this yield boundary.
        state.completed = true;
        SinkDirective::Stop(self.flight_stop_reason(&state, reason))
    }

    /// The reason the whole flight stopped: the leader's own when it was
    /// the last to go, otherwise the reason of the last follower standing.
    fn flight_stop_reason(&self, state: &FlightState, leader_reason: StopReason) -> StopReason {
        if self.leader_halt.is_none() {
            return leader_reason;
        }
        state
            .followers
            .iter()
            .rev()
            .find_map(|f| f.would_stop())
            .unwrap_or(leader_reason)
    }

    /// The leader's own terminal view `(outcome, halted, chunks_emitted)`.
    /// A leader that never detached answers with the execution's outcome —
    /// byte-identical to an uncoalesced run; a detached (promoted-away)
    /// leader answers with the partial prefix it consumed.
    pub(crate) fn leader_view(
        &self,
        outcome: &Result<Outcome, EngineError>,
        halted: Option<StopReason>,
    ) -> (Result<Outcome, EngineError>, Option<StopReason>, u64) {
        match self.leader_halt {
            None => (outcome.clone(), halted, self.emitted),
            Some(reason) => {
                let state = lock_ignoring_poison(&self.flight.state);
                (
                    partial_outcome(
                        self.kind,
                        &state.buffer,
                        self.items,
                        self.leader_pos,
                        reason,
                    ),
                    Some(reason),
                    self.emitted,
                )
            }
        }
    }
}

impl ResultSink for FlightSink<'_> {
    fn item(&mut self, item: StreamItem) -> SinkDirective {
        self.push(ChunkPayload::Item(item))
    }

    fn progress(&mut self, progress: crate::stream::StreamProgress) {
        // Progress checkpoints never stop an op; the directive is dropped.
        let _ = self.push(ChunkPayload::Progress(progress));
    }

    fn check(&self) -> SinkDirective {
        let mut state = lock_ignoring_poison(&self.flight.state);
        let Some(reason) = self.leader_would_stop() else {
            return SinkDirective::Continue;
        };
        if state.followers.iter().any(|f| f.would_stop().is_none()) {
            return SinkDirective::Continue;
        }
        // `check` cannot record the leader's detach (it is `&self`), which
        // is exactly right: a stop decided here means the flight died with
        // the leader, and the execution's own partial is the leader's
        // answer — the solo-run semantics.
        state.completed = true;
        SinkDirective::Stop(self.flight_stop_reason(&state, reason))
    }
}

/// Builds the partial outcome for a participant that stopped after
/// consuming `items` result items (`pos` buffer entries), in the order it
/// consumed them — the same prefix semantics a cached replay gives a
/// cancelled or quota-limited client.
fn partial_outcome(
    kind: &str,
    buffer: &[ChunkPayload],
    items: u64,
    pos: usize,
    reason: StopReason,
) -> Result<Outcome, EngineError> {
    let taken: Vec<&StreamItem> = buffer
        .iter()
        .filter_map(|payload| match payload {
            ChunkPayload::Item(item) => Some(item),
            ChunkPayload::Progress(_) => None,
        })
        .take(items as usize)
        .collect();
    if taken.is_empty() && reason == StopReason::Cancelled {
        return Err(EngineError::cancelled(
            "request cancelled before its coalesced flight produced a result",
        ));
    }
    match kind {
        "enumerate" => Ok(Outcome::Transversals {
            transversals: taken
                .into_iter()
                .map(|item| match item {
                    StreamItem::Transversal(t) => t.clone(),
                    StreamItem::BorderElement { itemset, .. } => itemset.clone(),
                })
                .collect(),
            complete: false,
        }),
        "mine_full" => {
            let mut maximal_frequent = Vec::new();
            let mut minimal_infrequent = Vec::new();
            for item in taken {
                if let StreamItem::BorderElement { maximal, itemset } = item {
                    if *maximal {
                        maximal_frequent.push(itemset.clone());
                    } else {
                        minimal_infrequent.push(itemset.clone());
                    }
                }
            }
            // Telemetry from the last progress checkpoint the participant
            // consumed; items is the floor when none was.
            let identification_calls = buffer[..pos.min(buffer.len())]
                .iter()
                .rev()
                .find_map(|payload| match payload {
                    ChunkPayload::Progress(p) => Some(p.duality_calls),
                    ChunkPayload::Item(_) => None,
                })
                .unwrap_or(items);
            Ok(Outcome::FullBorders {
                maximal_frequent,
                minimal_infrequent,
                identification_calls,
                complete: false,
            })
        }
        // Item-less kinds (`check`, `mine`, `keys`, `stats`) have no partial
        // shape; mirror the solo error a stopped run answers with.
        _ => Err(match reason {
            StopReason::Cancelled => {
                EngineError::cancelled("request cancelled before its coalesced flight completed")
            }
            StopReason::ItemQuota => {
                EngineError::execute("request stopped by max-items before completing")
            }
        }),
    }
}
