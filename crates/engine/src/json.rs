//! Minimal JSON emission helpers.
//!
//! The engine's wire responses are JSON lines; since the build environment has
//! no serialization framework available, this module provides the few
//! hand-rolled builders the [`crate::response`] module needs.  Only emission is
//! supported — the engine never parses JSON.

use std::fmt::Write;

/// Escapes `s` as the contents of a JSON string literal (quotes included).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a slice of indices as a JSON array of numbers.
pub fn index_array(xs: &[usize]) -> String {
    let mut out = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{x}");
    }
    out.push(']');
    out
}

/// Renders a slice of index slices as a JSON array of arrays.
pub fn index_matrix(xss: &[Vec<usize>]) -> String {
    let mut out = String::from("[");
    for (i, xs) in xss.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&index_array(xs));
    }
    out.push(']');
    out
}

/// Incrementally builds one JSON object.
#[derive(Debug, Default)]
pub struct ObjectBuilder {
    body: String,
}

impl ObjectBuilder {
    /// Starts an empty object.
    pub fn new() -> Self {
        ObjectBuilder::default()
    }

    fn sep(&mut self) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
    }

    /// Adds a key whose value is already-rendered JSON.
    pub fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.sep();
        self.body.push_str(&string(key));
        self.body.push(':');
        self.body.push_str(value);
        self
    }

    /// Adds a string-valued key.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        let rendered = string(value);
        self.raw(key, &rendered)
    }

    /// Adds an unsigned-integer-valued key.
    pub fn uint(&mut self, key: &str, value: u128) -> &mut Self {
        let rendered = value.to_string();
        self.raw(key, &rendered)
    }

    /// Adds a boolean-valued key.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Finishes the object.
    pub fn build(&self) -> String {
        format!("{{{}}}", self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn arrays_and_objects() {
        assert_eq!(index_array(&[1, 2, 3]), "[1,2,3]");
        assert_eq!(
            index_matrix(&[vec![1], vec![], vec![2, 3]]),
            "[[1],[],[2,3]]"
        );
        let mut o = ObjectBuilder::new();
        o.uint("id", 7)
            .bool("ok", true)
            .str("kind", "check")
            .raw("xs", "[1]");
        assert_eq!(
            o.build(),
            "{\"id\":7,\"ok\":true,\"kind\":\"check\",\"xs\":[1]}"
        );
    }
}
