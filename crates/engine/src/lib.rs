//! # qld-engine
//!
//! A concurrent query engine — and the `qld` command-line tool — over the
//! duality, transversal-enumeration, frequent-itemset-border, and minimal-key
//! solvers of this workspace.  This is the serving layer the ROADMAP asks for:
//! the first place where batching, caching, backpressure, multi-solver
//! dispatch, and a persistent daemon transport live.
//!
//! * [`Request`] / [`Response`] — the four typed query kinds
//!   (`DecideDuality`, `EnumerateTransversals { limit }`,
//!   `IdentifyItemsetBorders`, `FindMinimalKeys`) and their results with
//!   per-request stats (wall time, peak metered bits, solver chosen, cache
//!   hit, worker shard);
//! * [`Engine`] — a **persistent** sharded worker pool (std threads +
//!   channels) spawned at construction; every session (batch call, stdin
//!   loop, socket connection) multiplexes onto it through one shared
//!   **bounded** submission queue (backpressure), and shares one result
//!   [`cache`](crate::cache::QueryCache) — a bounded **LRU** with optional
//!   TTL, keyed by canonical (normalized, order-insensitive) request
//!   encodings;
//! * [`OrderMode`] — per-session (and per-request, via the `order=` wire
//!   keyword) choice between in-order responses and out-of-order streaming
//!   where a slow request never head-of-line-blocks the rest;
//! * [`stream`] — the **streaming job pipeline** (wire protocol v2): a
//!   `stream=` request answers as incremental `chunk` frames (one per
//!   minimal transversal / border advancement) followed by a `done` frame,
//!   jobs observe cooperative [`CancelToken`]s at every yield boundary
//!   (`cancel id=N` wire request, Ctrl-C in the CLI, vanished consumers),
//!   and [`ServeOptions`] carries the per-session quotas (`--max-inflight`
//!   admission control, `--max-items` result caps);
//! * [`SolverPolicy`] — pluggable routing of every duality call to a concrete
//!   solver; the default [`SizeThresholdPolicy`] sends small instances to
//!   [`qld_core::BorosMakinoTreeSolver`] and large ones to
//!   [`qld_core::QuadLogspaceSolver`]; individual requests can force a solver
//!   with the `solver=` wire keyword;
//! * [`wire`] — the one-request-per-line text format (inline `.qld`
//!   hypergraph syntax, reusing [`qld_hypergraph::format`]) and
//!   [`response::Response::to_json_line`] for the JSON-lines output; the
//!   protocol is specified in `docs/WIRE.md`;
//! * [`transport`] — the daemon front ends serving any number of concurrent
//!   client connections: the Unix-domain-socket listener behind `qld serve
//!   --socket PATH` (Unix only) and the portable TCP listener behind
//!   `qld serve --tcp ADDR`, plus [`trip_on_signals`], which arms
//!   SIGINT/SIGTERM (via the offline `signal` shim) to trip a server's
//!   shutdown handle so the daemon drains and exits cleanly;
//! * [`snapshot`] — version-stamped persistence of the result cache
//!   (`qld serve --cache-file PATH`): entries are written on graceful
//!   shutdown with their LRU order and TTL ages, and reloaded at
//!   [`Engine::new`], so a restarted daemon answers hot keys without
//!   re-running solvers;
//! * the `qld` binary — `check`, `enumerate`, `mine`, `keys`, and
//!   `serve` subcommands streaming requests from stdin, files, or a socket.
//!
//! # Quick start
//!
//! ```
//! use qld_engine::{Engine, Request};
//! use qld_hypergraph::Hypergraph;
//!
//! let engine = Engine::with_defaults();
//! let g = Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3]]);
//! let h = Hypergraph::from_index_edges(4, &[&[0, 2], &[0, 3], &[1, 2], &[1, 3]]);
//! let response = engine.run_one(Request::DecideDuality { g, h });
//! assert!(response.is_ok());
//! println!("{}", response.to_json_line());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod fairness;
pub(crate) mod flight;
pub mod json;
pub mod ops;
pub mod policy;
#[cfg(unix)]
pub(crate) mod readiness;
pub mod request;
pub mod response;
pub mod snapshot;
pub mod stream;
pub(crate) mod subtask;
pub mod transport;
pub mod wire;

pub use cache::CacheStats;
pub use engine::{
    Engine, EngineConfig, ServeOptions, ServeSummary, StreamHandle, StreamRunOptions,
    DEFAULT_PARALLEL_THRESHOLD,
};
pub use fairness::{Bucket, UserBuckets};
pub use ops::{enumerate_transversals_with, execute_streaming, execute_streaming_with, Execution};
pub use policy::{
    exec_route, ExecRoute, FixedPolicy, SizeThresholdPolicy, SolverKind, SolverPolicy,
};
pub use request::Request;
pub use response::{
    BordersOutcome, EngineError, ErrorCode, Outcome, RequestStats, Response, WitnessSummary,
};
pub use snapshot::{probe_writable, RestoreStats, SnapshotError, SNAPSHOT_VERSION};
pub use stream::{
    CancelToken, ChunkFrame, ChunkPayload, ResultSink, SinkDirective, StopReason, StreamEvent,
    StreamItem, StreamProgress,
};
pub use transport::{
    run_session_loop, trip_on_signals, SessionStream, TcpServer, TcpShutdownHandle,
    TransportSummary,
};
#[cfg(unix)]
pub use transport::{ShutdownHandle, SocketServer};
pub use wire::{OrderMode, PROTOCOL_VERSION};

/// Locks a mutex, recovering the guard if a previous holder panicked: the
/// engine's shared state (queue receiver, cache interior, transport totals)
/// stays usable across a worker panic, and one poisoned request must not take
/// down a session or the daemon.
pub(crate) fn lock_ignoring_poison<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}
