//! # qld-engine
//!
//! A concurrent batch query engine — and the `qld` command-line tool — over the
//! duality, transversal-enumeration, frequent-itemset-border, and minimal-key
//! solvers of this workspace.  This is the serving layer the ROADMAP asks for:
//! the first place where batching, caching, backpressure, and multi-solver
//! dispatch live.
//!
//! * [`Request`] / [`Response`] — the four typed query kinds
//!   (`DecideDuality`, `EnumerateTransversals { limit }`,
//!   `IdentifyItemsetBorders`, `FindMinimalKeys`) and their results with
//!   per-request stats (wall time, peak metered bits, solver chosen, cache
//!   hit, worker shard);
//! * [`Engine`] — a sharded worker pool (std threads + channels) with a
//!   **bounded** submission queue for backpressure and a shared result
//!   [`cache`](crate::cache::QueryCache) keyed by canonical (normalized,
//!   order-insensitive) request encodings;
//! * [`SolverPolicy`] — pluggable routing of every duality call to a concrete
//!   solver; the default [`SizeThresholdPolicy`] sends small instances to
//!   [`qld_core::BorosMakinoTreeSolver`] and large ones to
//!   [`qld_core::QuadLogspaceSolver`];
//! * [`wire`] — the one-request-per-line text format (inline `.qld`
//!   hypergraph syntax, reusing [`qld_hypergraph::format`]) and
//!   [`response::Response::to_json_line`] for the JSON-lines output;
//! * the `qld` binary — `check`, `enumerate`, `mine`, `keys`, and
//!   `serve --workers N` subcommands streaming requests from stdin or files.
//!
//! # Quick start
//!
//! ```
//! use qld_engine::{Engine, Request};
//! use qld_hypergraph::Hypergraph;
//!
//! let engine = Engine::with_defaults();
//! let g = Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3]]);
//! let h = Hypergraph::from_index_edges(4, &[&[0, 2], &[0, 3], &[1, 2], &[1, 3]]);
//! let response = engine.run_one(Request::DecideDuality { g, h });
//! assert!(response.is_ok());
//! println!("{}", response.to_json_line());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod json;
pub mod ops;
pub mod policy;
pub mod request;
pub mod response;
pub mod wire;

pub use cache::CacheStats;
pub use engine::{Engine, EngineConfig, ServeSummary};
pub use ops::enumerate_transversals_with;
pub use policy::{FixedPolicy, SizeThresholdPolicy, SolverKind, SolverPolicy};
pub use request::Request;
pub use response::{BordersOutcome, Outcome, RequestStats, Response, WitnessSummary};
