//! Request execution: policy-routed solver dispatch and the duality-driven
//! enumeration loops behind each request kind.

use crate::policy::{SolverKind, SolverPolicy};
use crate::request::Request;
use crate::response::{BordersOutcome, Outcome, WitnessSummary};
use qld_core::pathnode::SpaceStrategy;
use qld_core::{
    BorosMakinoTreeSolver, DualError, DualityResult, DualitySolver, NonDualWitness,
    QuadLogspaceSolver,
};
use qld_datamining::{identify_with, Identification, IdentificationInstance, NewBorderElement};
use qld_hypergraph::{Hypergraph, VertexSet};
use qld_keys::enumerate_minimal_keys_with;
use std::cell::{Cell, RefCell};

/// Telemetry accumulated across the duality calls of one request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecInfo {
    /// Names of the distinct solvers used, joined by `+` ("-" when none ran).
    pub solver: String,
    /// Peak metered work-tape bits over all quadratic-logspace calls.
    pub peak_bits: u64,
    /// Number of `DUAL` decisions made.
    pub duality_calls: u64,
}

/// A [`DualitySolver`] that routes each call through a [`SolverPolicy`] and
/// records which solvers ran, how many calls were made, and the peak metered
/// space.  One instance lives per request, on the worker that executes it.
pub struct PolicySolver<'p> {
    policy: &'p dyn SolverPolicy,
    used: RefCell<Vec<SolverKind>>,
    peak_bits: Cell<u64>,
    calls: Cell<u64>,
}

impl<'p> PolicySolver<'p> {
    /// Wraps a policy for one request's worth of duality calls.
    pub fn new(policy: &'p dyn SolverPolicy) -> Self {
        PolicySolver {
            policy,
            used: RefCell::new(Vec::new()),
            peak_bits: Cell::new(0),
            calls: Cell::new(0),
        }
    }

    /// The telemetry gathered so far.
    pub fn info(&self) -> ExecInfo {
        let used = self.used.borrow();
        let solver = if used.is_empty() {
            "-".to_string()
        } else {
            used.iter()
                .map(SolverKind::name)
                .collect::<Vec<_>>()
                .join("+")
        };
        ExecInfo {
            solver,
            peak_bits: self.peak_bits.get(),
            duality_calls: self.calls.get(),
        }
    }

    fn record(&self, kind: SolverKind) {
        let mut used = self.used.borrow_mut();
        if !used.contains(&kind) {
            used.push(kind);
        }
    }
}

impl DualitySolver for PolicySolver<'_> {
    fn name(&self) -> &'static str {
        "policy"
    }

    fn decide(&self, g: &Hypergraph, h: &Hypergraph) -> Result<DualityResult, DualError> {
        let kind = self.policy.choose(g, h);
        self.record(kind);
        self.calls.set(self.calls.get() + 1);
        match kind {
            SolverKind::BmTree => BorosMakinoTreeSolver::new().decide(g, h),
            SolverKind::QuadChain | SolverKind::QuadRecompute => {
                let strategy = if kind == SolverKind::QuadChain {
                    SpaceStrategy::MaterializeChain
                } else {
                    SpaceStrategy::Recompute
                };
                let (result, report) = QuadLogspaceSolver::new(strategy).decide_with_space(g, h)?;
                self.peak_bits
                    .set(self.peak_bits.get().max(report.peak_bits));
                Ok(result)
            }
        }
    }
}

/// Enumerates minimal transversals of `g`, one duality call per transversal
/// (plus a final confirming call), mirroring the incremental enumeration of
/// Propositions 1.1–1.3: ask whether the known family is already `tr(g)`, and
/// convert the witness of a "no" into a new minimal transversal.
///
/// Returns the transversals found and whether the enumeration is complete
/// (`false` iff it stopped at `limit`).
pub fn enumerate_transversals_with(
    g: &Hypergraph,
    limit: Option<usize>,
    solver: &dyn DualitySolver,
) -> Result<(Hypergraph, bool), DualError> {
    let g = g.minimize();
    let n = g.num_vertices();
    let mut known = Hypergraph::new(n);
    loop {
        if limit.is_some_and(|l| known.num_edges() >= l) {
            return Ok((known, false));
        }
        match solver.decide(&g, &known)? {
            DualityResult::Dual => return Ok((known, true)),
            DualityResult::NotDual(witness) => {
                let candidate = match witness {
                    // A transversal of g containing no known transversal.
                    NonDualWitness::NewTransversalOfG(mut t) => {
                        t.grow(n);
                        t
                    }
                    // A transversal of the known family containing no g-edge;
                    // its complement is a transversal of g (g is simple) that
                    // contains no known transversal.
                    NonDualWitness::NewTransversalOfH(mut t) => {
                        t.grow(n);
                        t.complement(n)
                    }
                    // A g-edge disjoint from a known transversal is impossible:
                    // every member of `known` is a transversal of g.
                    NonDualWitness::DisjointEdges { .. } => {
                        debug_assert!(false, "disjoint-edge witness during enumeration");
                        return Ok((known, true));
                    }
                };
                let minimal = g.minimize_transversal(&candidate);
                if known.contains_edge(&minimal) {
                    // Cannot happen for valid witnesses; bail out rather than
                    // loop forever if a solver misbehaves.
                    debug_assert!(false, "witness produced an already-known transversal");
                    return Ok((known, true));
                }
                known.add_edge(minimal);
            }
        }
    }
}

/// Sorted index rendering of a vertex set.
fn indices(s: &VertexSet) -> Vec<usize> {
    s.to_indices()
}

/// Regrows a border family to the relation's item universe `n`, rejecting
/// families that mention items outside it.
fn fit_universe(family: &Hypergraph, n: usize, name: &str) -> Result<Hypergraph, String> {
    if family.num_vertices() > n {
        if let Some(v) = family.support().max_vertex() {
            if usize::from(v) >= n {
                return Err(format!(
                    "border family `{name}` mentions item {v}, outside the relation's {n}-item universe"
                ));
            }
        }
    }
    // Rebuild from indices so every set has exactly width `n` (VertexSet
    // capacities only ever grow, and the relation predicates compare widths).
    Ok(Hypergraph::from_edges(
        n,
        family
            .edges()
            .iter()
            .map(|e| VertexSet::from_indices(n, e.to_indices())),
    ))
}

/// Canonically ordered index rendering of a hypergraph's edges.
fn edge_lists(h: &Hypergraph) -> Vec<Vec<usize>> {
    h.canonicalized()
        .edges()
        .iter()
        .map(|e| e.to_indices())
        .collect()
}

/// Executes one request with the given routing policy, returning the outcome
/// (or a rendered error) plus per-request telemetry.
pub fn execute(
    request: &Request,
    policy: &dyn SolverPolicy,
) -> (Result<Outcome, String>, ExecInfo) {
    let solver = PolicySolver::new(policy);
    let outcome = execute_inner(request, &solver);
    (outcome, solver.info())
}

fn execute_inner(request: &Request, solver: &PolicySolver<'_>) -> Result<Outcome, String> {
    match request {
        Request::DecideDuality { g, h } => {
            // Normalize: duality of monotone DNFs is a statement about their
            // irredundant (minimized) forms, and the decomposition solvers
            // require simple inputs.
            let g = g.minimize();
            let h = h.minimize();
            let result = solver.decide(&g, &h).map_err(|e| e.to_string())?;
            Ok(match result {
                DualityResult::Dual => Outcome::Duality {
                    dual: true,
                    witness: None,
                },
                DualityResult::NotDual(w) => Outcome::Duality {
                    dual: false,
                    witness: Some(match w {
                        NonDualWitness::NewTransversalOfG(t) => {
                            WitnessSummary::NewTransversalOfG(indices(&t))
                        }
                        NonDualWitness::NewTransversalOfH(t) => {
                            WitnessSummary::NewTransversalOfH(indices(&t))
                        }
                        // Render the edges, not their positions: positional
                        // indices refer to the minimized instance's edge
                        // order, which neither the caller's input order nor
                        // the cache's canonical key preserves.
                        NonDualWitness::DisjointEdges { g_index, h_index } => {
                            WitnessSummary::DisjointEdges {
                                g_edge: indices(g.edge(g_index)),
                                h_edge: indices(h.edge(h_index)),
                            }
                        }
                    }),
                },
            })
        }
        Request::EnumerateTransversals { g, limit } => {
            let (found, complete) =
                enumerate_transversals_with(g, *limit, solver).map_err(|e| e.to_string())?;
            Ok(Outcome::Transversals {
                transversals: edge_lists(&found),
                complete,
            })
        }
        Request::IdentifyItemsetBorders {
            relation,
            threshold,
            minimal_infrequent,
            maximal_frequent,
        } => {
            // Border itemsets must live inside the relation's item universe;
            // smaller universes are grown, larger ones are a caller error
            // (letting them through would make the vertex-set operations in
            // the validation predicates compare sets of different widths).
            let n = relation.num_items();
            let minimal_infrequent = fit_universe(minimal_infrequent, n, "g")?;
            let maximal_frequent = fit_universe(maximal_frequent, n, "h")?;
            let instance = IdentificationInstance::new(
                relation,
                *threshold,
                &minimal_infrequent,
                &maximal_frequent,
            );
            let identification = identify_with(&instance, solver).map_err(|e| e.to_string())?;
            Ok(Outcome::Borders(match identification {
                Identification::Complete => BordersOutcome::Complete,
                Identification::Incomplete(NewBorderElement::MaximalFrequent(s)) => {
                    BordersOutcome::NewMaximalFrequent(indices(&s))
                }
                Identification::Incomplete(NewBorderElement::MinimalInfrequent(s)) => {
                    BordersOutcome::NewMinimalInfrequent(indices(&s))
                }
                Identification::Invalid(
                    qld_datamining::identification::InvalidBorder::NotMaximalFrequent(s),
                ) => BordersOutcome::InvalidMaximalFrequent(indices(&s)),
                Identification::Invalid(
                    qld_datamining::identification::InvalidBorder::NotMinimalInfrequent(s),
                ) => BordersOutcome::InvalidMinimalInfrequent(indices(&s)),
            }))
        }
        Request::FindMinimalKeys { instance } => {
            let (keys, calls) =
                enumerate_minimal_keys_with(instance, solver).map_err(|e| e.to_string())?;
            Ok(Outcome::Keys {
                keys: edge_lists(&keys),
                duality_calls: calls,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FixedPolicy, SizeThresholdPolicy};
    use qld_hypergraph::transversal::minimal_transversals;
    use qld_hypergraph::{generators, Hypergraph};

    #[test]
    fn enumeration_matches_exact_dualization() {
        let policy = SizeThresholdPolicy::default();
        for li in generators::standard_corpus() {
            if !li.dual {
                continue;
            }
            let solver = PolicySolver::new(&policy);
            let (found, complete) = enumerate_transversals_with(&li.g, None, &solver).unwrap();
            assert!(complete, "{}", li.name);
            assert!(found.same_edge_set(&li.h), "{}", li.name);
            // one call per transversal plus the confirming call
            assert_eq!(solver.info().duality_calls, found.num_edges() as u64 + 1);
        }
    }

    #[test]
    fn enumeration_respects_limit() {
        let li = generators::matching_instance(3);
        let policy = FixedPolicy(SolverKind::QuadChain);
        let solver = PolicySolver::new(&policy);
        let (found, complete) = enumerate_transversals_with(&li.g, Some(3), &solver).unwrap();
        assert!(!complete);
        assert_eq!(found.num_edges(), 3);
        let full = minimal_transversals(&li.g);
        for t in found.edges() {
            assert!(full.contains_edge(t));
        }
        assert_eq!(solver.info().solver, "quadlog-chain");

        // Run to completion: the final confirming call traverses the whole
        // virtual tree and meters its work space.
        let solver = PolicySolver::new(&policy);
        let (all, complete) = enumerate_transversals_with(&li.g, None, &solver).unwrap();
        assert!(complete);
        assert!(all.same_edge_set(&full));
        assert!(solver.info().peak_bits > 0);
    }

    #[test]
    fn enumeration_degenerate_cases() {
        let policy = SizeThresholdPolicy::default();
        // tr(∅) = {∅}
        let solver = PolicySolver::new(&policy);
        let (found, complete) =
            enumerate_transversals_with(&Hypergraph::new(3), None, &solver).unwrap();
        assert!(complete);
        assert_eq!(found.num_edges(), 1);
        assert!(found.edge(0).is_empty());
        // tr({∅}) = ∅
        let true_dnf = Hypergraph::from_edges(3, [qld_hypergraph::VertexSet::empty(3)]);
        let solver = PolicySolver::new(&policy);
        let (found, complete) = enumerate_transversals_with(&true_dnf, None, &solver).unwrap();
        assert!(complete);
        assert!(found.is_empty());
    }

    #[test]
    fn execute_normalizes_non_simple_duality_inputs() {
        // {0} absorbs {0,1}; minimized instance is dual to {{0},{1}}'s dual.
        let g = Hypergraph::from_index_edges(2, &[&[0], &[0, 1]]);
        let h = Hypergraph::from_index_edges(2, &[&[0]]);
        let (outcome, info) = execute(
            &Request::DecideDuality { g, h },
            &SizeThresholdPolicy::default(),
        );
        assert_eq!(
            outcome.unwrap(),
            Outcome::Duality {
                dual: true,
                witness: None
            }
        );
        assert_eq!(info.duality_calls, 1);
    }
}
