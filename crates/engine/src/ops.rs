//! Request execution: policy-routed solver dispatch and the duality-driven
//! enumeration loops behind each request kind.
//!
//! Every request executes through [`execute_streaming`], which threads a
//! [`ResultSink`] through the incremental ops: `enumerate` yields each
//! minimal transversal the moment its duality call produces it, and the
//! full-border `mine … full=` loop yields each border advancement of
//! [`qld_datamining::AdvanceLoop`].  The sink is also where cooperative
//! cancellation and per-session item quotas take effect — the ops poll it at
//! every yield boundary and stop there, returning the partial result
//! accumulated so far (marked incomplete, never cached).  One-shot execution
//! ([`execute`]) is the same code run through the trivial [`NullSink`].

use crate::policy::{SolverKind, SolverPolicy};
use crate::request::Request;
use crate::response::{BordersOutcome, Outcome, WitnessSummary};
use crate::stream::{
    NullSink, ResultSink, SinkDirective, StopReason, StreamItem, StreamProgress,
    PROGRESS_EVERY_ITEMS,
};
use qld_core::pathnode::SpaceStrategy;
use qld_core::{
    BorosMakinoTreeSolver, DualError, DualityResult, DualitySolver, NonDualWitness,
    ParallelContext, QuadLogspaceSolver,
};
use qld_datamining::{
    identify_with, AdvanceLoop, AdvanceStep, Identification, IdentificationInstance,
    NewBorderElement,
};
use qld_hypergraph::{Hypergraph, VertexSet};
use std::cell::{Cell, RefCell};

/// Telemetry accumulated across the duality calls of one request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecInfo {
    /// Names of the distinct solvers used, joined by `+` ("-" when none ran).
    pub solver: String,
    /// Peak metered work-tape bits over all quadratic-logspace calls.
    pub peak_bits: u64,
    /// Number of `DUAL` decisions made.
    pub duality_calls: u64,
}

/// A [`DualitySolver`] that routes each call through a [`SolverPolicy`] and
/// records which solvers ran, how many calls were made, and the peak metered
/// space.  One instance lives per request, on the worker that executes it.
pub struct PolicySolver<'p> {
    policy: &'p dyn SolverPolicy,
    /// Intra-query parallelism handle: duality calls routed to the
    /// materialize-chain solver split into subtasks above its threshold.
    parallel: Option<ParallelContext>,
    used: RefCell<Vec<SolverKind>>,
    peak_bits: Cell<u64>,
    calls: Cell<u64>,
    /// Whether any duality call was interrupted by cancellation mid-split —
    /// the request must then answer "cancelled", never cache.
    interrupted: Cell<bool>,
}

impl<'p> PolicySolver<'p> {
    /// Wraps a policy for one request's worth of duality calls.
    pub fn new(policy: &'p dyn SolverPolicy) -> Self {
        PolicySolver {
            policy,
            parallel: None,
            used: RefCell::new(Vec::new()),
            peak_bits: Cell::new(0),
            calls: Cell::new(0),
            interrupted: Cell::new(false),
        }
    }

    /// Enables intra-query parallelism for the calls this solver routes.
    pub fn with_parallel(mut self, parallel: ParallelContext) -> Self {
        self.parallel = Some(parallel);
        self
    }

    /// Whether a duality call was cut short by cancellation at a subtask
    /// steal boundary ([`DualError::Interrupted`]).
    pub fn interrupted(&self) -> bool {
        self.interrupted.get()
    }

    /// The telemetry gathered so far.
    pub fn info(&self) -> ExecInfo {
        let used = self.used.borrow();
        let solver = if used.is_empty() {
            "-".to_string()
        } else {
            used.iter()
                .map(SolverKind::name)
                .collect::<Vec<_>>()
                .join("+")
        };
        ExecInfo {
            solver,
            peak_bits: self.peak_bits.get(),
            duality_calls: self.calls.get(),
        }
    }

    fn record(&self, kind: SolverKind) {
        let mut used = self.used.borrow_mut();
        if !used.contains(&kind) {
            used.push(kind);
        }
    }
}

impl DualitySolver for PolicySolver<'_> {
    fn name(&self) -> &'static str {
        "policy"
    }

    fn decide(&self, g: &Hypergraph, h: &Hypergraph) -> Result<DualityResult, DualError> {
        let kind = self.policy.choose(g, h);
        self.record(kind);
        self.calls.set(self.calls.get() + 1);
        let result = match kind {
            SolverKind::BmTree => BorosMakinoTreeSolver::new().decide(g, h),
            SolverKind::QuadChain | SolverKind::QuadRecompute => {
                let strategy = if kind == SolverKind::QuadChain {
                    SpaceStrategy::MaterializeChain
                } else {
                    SpaceStrategy::Recompute
                };
                let mut solver = QuadLogspaceSolver::new(strategy);
                // Only the materialize-chain strategy has independent
                // top-level subtrees to fan out; the faithful recompute
                // strategy stays sequential.
                if kind == SolverKind::QuadChain {
                    if let Some(parallel) = &self.parallel {
                        solver = solver.with_parallel(parallel.clone());
                    }
                }
                solver.decide_with_space(g, h).map(|(result, report)| {
                    self.peak_bits
                        .set(self.peak_bits.get().max(report.peak_bits));
                    result
                })
            }
        };
        if matches!(result, Err(DualError::Interrupted)) {
            self.interrupted.set(true);
        }
        result
    }
}

/// How an incremental enumeration loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoopEnd {
    /// The final confirming duality call said "dual": the result is complete.
    Complete,
    /// The caller's `limit=` was reached.
    LimitReached,
    /// The sink stopped the loop (cancellation or item quota).
    Halted(StopReason),
}

/// Enumerates minimal transversals of `g`, one duality call per transversal
/// (plus a final confirming call), mirroring the incremental enumeration of
/// Propositions 1.1–1.3: ask whether the known family is already `tr(g)`, and
/// convert the witness of a "no" into a new minimal transversal.  Each
/// transversal is yielded to `sink` the moment it is found; the sink is also
/// polled before every duality call, so cancellation takes effect within one
/// yield boundary.
fn enumerate_transversals_streaming(
    g: &Hypergraph,
    limit: Option<usize>,
    solver: &dyn DualitySolver,
    info: impl Fn() -> u64,
    sink: &mut dyn ResultSink,
) -> Result<(Hypergraph, LoopEnd), DualError> {
    let g = g.minimize();
    let n = g.num_vertices();
    let mut known = Hypergraph::new(n);
    let mut items: u64 = 0;
    loop {
        if limit.is_some_and(|l| known.num_edges() >= l) {
            return Ok((known, LoopEnd::LimitReached));
        }
        if let SinkDirective::Stop(reason) = sink.check() {
            return Ok((known, LoopEnd::Halted(reason)));
        }
        let decision = match solver.decide(&g, &known) {
            Ok(decision) => decision,
            // A split interrupted by cancellation mid-decide: answer with the
            // prefix found so far, exactly like a cancellation observed at
            // the yield boundary above.
            Err(DualError::Interrupted) => {
                return Ok((known, LoopEnd::Halted(StopReason::Cancelled)))
            }
            Err(e) => return Err(e),
        };
        match decision {
            DualityResult::Dual => return Ok((known, LoopEnd::Complete)),
            DualityResult::NotDual(witness) => {
                let candidate = match witness {
                    // A transversal of g containing no known transversal.
                    NonDualWitness::NewTransversalOfG(mut t) => {
                        t.grow(n);
                        t
                    }
                    // A transversal of the known family containing no g-edge;
                    // its complement is a transversal of g (g is simple) that
                    // contains no known transversal.
                    NonDualWitness::NewTransversalOfH(mut t) => {
                        t.grow(n);
                        t.complement(n)
                    }
                    // A g-edge disjoint from a known transversal is impossible:
                    // every member of `known` is a transversal of g.
                    NonDualWitness::DisjointEdges { .. } => {
                        debug_assert!(false, "disjoint-edge witness during enumeration");
                        return Ok((known, LoopEnd::Complete));
                    }
                };
                let minimal = g.minimize_transversal(&candidate);
                if known.contains_edge(&minimal) {
                    // Cannot happen for valid witnesses; bail out rather than
                    // loop forever if a solver misbehaves.
                    debug_assert!(false, "witness produced an already-known transversal");
                    return Ok((known, LoopEnd::Complete));
                }
                let directive = sink.item(StreamItem::Transversal(minimal.to_indices()));
                known.add_edge(minimal);
                items += 1;
                if items.is_multiple_of(PROGRESS_EVERY_ITEMS) {
                    sink.progress(StreamProgress {
                        items,
                        duality_calls: info(),
                    });
                }
                if let SinkDirective::Stop(reason) = directive {
                    return Ok((known, LoopEnd::Halted(reason)));
                }
            }
        }
    }
}

/// Enumerates minimal transversals of `g` without streaming (the historical
/// one-shot entry point, kept for library callers).
///
/// Returns the transversals found and whether the enumeration is complete
/// (`false` iff it stopped at `limit`).
pub fn enumerate_transversals_with(
    g: &Hypergraph,
    limit: Option<usize>,
    solver: &dyn DualitySolver,
) -> Result<(Hypergraph, bool), DualError> {
    let (found, end) = enumerate_transversals_streaming(g, limit, solver, || 0, &mut NullSink)?;
    Ok((found, end == LoopEnd::Complete))
}

/// Sorted index rendering of a vertex set.
fn indices(s: &VertexSet) -> Vec<usize> {
    s.to_indices()
}

/// Regrows a border family to the relation's item universe `n`, rejecting
/// families that mention items outside it.
fn fit_universe(family: &Hypergraph, n: usize, name: &str) -> Result<Hypergraph, String> {
    if family.num_vertices() > n {
        if let Some(v) = family.support().max_vertex() {
            if usize::from(v) >= n {
                return Err(format!(
                    "border family `{name}` mentions item {v}, outside the relation's {n}-item universe"
                ));
            }
        }
    }
    // Rebuild from indices so every set has exactly width `n` (VertexSet
    // capacities only ever grow, and the relation predicates compare widths).
    Ok(Hypergraph::from_edges(
        n,
        family
            .edges()
            .iter()
            .map(|e| VertexSet::from_indices(n, e.to_indices())),
    ))
}

/// Canonically ordered index rendering of a hypergraph's edges.
fn edge_lists(h: &Hypergraph) -> Vec<Vec<usize>> {
    h.canonicalized()
        .edges()
        .iter()
        .map(|e| e.to_indices())
        .collect()
}

/// One finished (or halted) execution: the outcome, its telemetry, and — when
/// the sink stopped the job early — why.  A halted execution's outcome is the
/// partial result accumulated up to the last yield boundary; the engine never
/// caches it.
pub struct Execution {
    /// The result payload, or a rendered execution error.
    pub outcome: Result<Outcome, String>,
    /// Per-request telemetry.
    pub info: ExecInfo,
    /// Why the sink stopped the job, when it did.
    pub halt: Option<StopReason>,
}

/// Executes one request with the given routing policy through the trivial
/// one-shot sink, returning the outcome (or a rendered error) plus
/// per-request telemetry.
pub fn execute(
    request: &Request,
    policy: &dyn SolverPolicy,
) -> (Result<Outcome, String>, ExecInfo) {
    let execution = execute_streaming(request, policy, &mut NullSink);
    (execution.outcome, execution.info)
}

/// Executes one request with the given routing policy, yielding incremental
/// results through `sink`.  A request cancelled before its first duality call
/// answers with an error; a streaming-capable request halted mid-loop answers
/// with its partial result, `complete: false`.
pub fn execute_streaming(
    request: &Request,
    policy: &dyn SolverPolicy,
    sink: &mut dyn ResultSink,
) -> Execution {
    execute_streaming_with(request, policy, None, sink)
}

/// [`execute_streaming`] with optional intra-query parallelism: duality
/// calls large enough to clear the context's threshold split into subtasks
/// on its pool.  A split interrupted by cancellation at a steal boundary
/// answers exactly like a cancellation observed at a yield boundary —
/// `halt: cancelled`, partial results where the op keeps them, never cached.
pub fn execute_streaming_with(
    request: &Request,
    policy: &dyn SolverPolicy,
    parallel: Option<&ParallelContext>,
    sink: &mut dyn ResultSink,
) -> Execution {
    let mut solver = PolicySolver::new(policy);
    if let Some(parallel) = parallel {
        solver = solver.with_parallel(parallel.clone());
    }
    // A job cancelled while it sat in the queue (its session vanished, or a
    // `cancel` raced ahead of the worker) is dropped before any solver work.
    // Only *cancellation* pre-empts execution here: an exhausted item quota
    // merely stops item-yielding loops at their own yield boundaries, so
    // item-less requests (`check`, `keys`, …) still run to completion under
    // any `--max-items` setting.
    if sink.check() == SinkDirective::Stop(StopReason::Cancelled) {
        return Execution {
            outcome: Err("request cancelled before execution".to_string()),
            info: solver.info(),
            halt: Some(StopReason::Cancelled),
        };
    }
    let (outcome, mut halt) = execute_inner(request, &solver, sink);
    // An interrupted split means the query was cancelled mid-decide: classify
    // the stop as a cancellation even when the op surfaced it as a plain
    // error, so the engine answers `cancelled` and never caches it.
    if solver.interrupted() && halt.is_none() {
        halt = Some(StopReason::Cancelled);
    }
    Execution {
        outcome,
        info: solver.info(),
        halt,
    }
}

fn execute_inner(
    request: &Request,
    solver: &PolicySolver<'_>,
    sink: &mut dyn ResultSink,
) -> (Result<Outcome, String>, Option<StopReason>) {
    match request {
        Request::DecideDuality { g, h } => {
            // Normalize: duality of monotone DNFs is a statement about their
            // irredundant (minimized) forms, and the decomposition solvers
            // require simple inputs.
            let g = g.minimize();
            let h = h.minimize();
            let result = match solver.decide(&g, &h) {
                Ok(result) => result,
                Err(e) => return (Err(e.to_string()), None),
            };
            let outcome = match result {
                DualityResult::Dual => Outcome::Duality {
                    dual: true,
                    witness: None,
                },
                DualityResult::NotDual(w) => Outcome::Duality {
                    dual: false,
                    witness: Some(match w {
                        NonDualWitness::NewTransversalOfG(t) => {
                            WitnessSummary::NewTransversalOfG(indices(&t))
                        }
                        NonDualWitness::NewTransversalOfH(t) => {
                            WitnessSummary::NewTransversalOfH(indices(&t))
                        }
                        // Render the edges, not their positions: positional
                        // indices refer to the minimized instance's edge
                        // order, which neither the caller's input order nor
                        // the cache's canonical key preserves.
                        NonDualWitness::DisjointEdges { g_index, h_index } => {
                            WitnessSummary::DisjointEdges {
                                g_edge: indices(g.edge(g_index)),
                                h_edge: indices(h.edge(h_index)),
                            }
                        }
                    }),
                },
            };
            (Ok(outcome), None)
        }
        Request::EnumerateTransversals { g, limit } => {
            let calls = || solver.info().duality_calls;
            match enumerate_transversals_streaming(g, *limit, solver, calls, sink) {
                Ok((found, end)) => (
                    Ok(Outcome::Transversals {
                        transversals: edge_lists(&found),
                        complete: end == LoopEnd::Complete,
                    }),
                    match end {
                        LoopEnd::Halted(reason) => Some(reason),
                        LoopEnd::Complete | LoopEnd::LimitReached => None,
                    },
                ),
                Err(e) => (Err(e.to_string()), None),
            }
        }
        Request::IdentifyItemsetBorders {
            relation,
            threshold,
            minimal_infrequent,
            maximal_frequent,
        } => {
            // Border itemsets must live inside the relation's item universe;
            // smaller universes are grown, larger ones are a caller error
            // (letting them through would make the vertex-set operations in
            // the validation predicates compare sets of different widths).
            let n = relation.num_items();
            let minimal_infrequent = match fit_universe(minimal_infrequent, n, "g") {
                Ok(family) => family,
                Err(e) => return (Err(e), None),
            };
            let maximal_frequent = match fit_universe(maximal_frequent, n, "h") {
                Ok(family) => family,
                Err(e) => return (Err(e), None),
            };
            let instance = IdentificationInstance::new(
                relation,
                *threshold,
                &minimal_infrequent,
                &maximal_frequent,
            );
            let identification = match identify_with(&instance, solver) {
                Ok(identification) => identification,
                Err(e) => return (Err(e.to_string()), None),
            };
            let outcome = Outcome::Borders(match identification {
                Identification::Complete => BordersOutcome::Complete,
                Identification::Incomplete(NewBorderElement::MaximalFrequent(s)) => {
                    BordersOutcome::NewMaximalFrequent(indices(&s))
                }
                Identification::Incomplete(NewBorderElement::MinimalInfrequent(s)) => {
                    BordersOutcome::NewMinimalInfrequent(indices(&s))
                }
                Identification::Invalid(
                    qld_datamining::identification::InvalidBorder::NotMaximalFrequent(s),
                ) => BordersOutcome::InvalidMaximalFrequent(indices(&s)),
                Identification::Invalid(
                    qld_datamining::identification::InvalidBorder::NotMinimalInfrequent(s),
                ) => BordersOutcome::InvalidMinimalInfrequent(indices(&s)),
            });
            (Ok(outcome), None)
        }
        Request::MineBorders {
            relation,
            threshold,
            minimal_infrequent,
            maximal_frequent,
        } => mine_borders_streaming(
            relation,
            *threshold,
            minimal_infrequent,
            maximal_frequent,
            solver,
            sink,
        ),
        Request::FindMinimalKeys { instance } => {
            match qld_keys::enumerate_minimal_keys_with(instance, solver) {
                Ok((keys, calls)) => (
                    Ok(Outcome::Keys {
                        keys: edge_lists(&keys),
                        duality_calls: calls,
                    }),
                    None,
                ),
                Err(e) => (Err(e.to_string()), None),
            }
        }
    }
}

/// The full `dualize_and_advance` identification loop, one border element per
/// yield: every [`AdvanceStep::Found`] is forwarded to `sink` before the next
/// identification call, so a client sees each border advancement as it
/// happens and a `cancel` stops the loop within one yield boundary.
fn mine_borders_streaming(
    relation: &qld_datamining::BooleanRelation,
    threshold: usize,
    minimal_infrequent: &Hypergraph,
    maximal_frequent: &Hypergraph,
    solver: &PolicySolver<'_>,
    sink: &mut dyn ResultSink,
) -> (Result<Outcome, String>, Option<StopReason>) {
    let n = relation.num_items();
    let minimal_infrequent = match fit_universe(minimal_infrequent, n, "g") {
        Ok(family) => family,
        Err(e) => return (Err(e), None),
    };
    let maximal_frequent = match fit_universe(maximal_frequent, n, "h") {
        Ok(family) => family,
        Err(e) => return (Err(e), None),
    };
    let mut advance =
        AdvanceLoop::with_seeds(relation, threshold, minimal_infrequent, maximal_frequent);
    let mut items: u64 = 0;
    let full_borders = |advance: &AdvanceLoop<'_>, complete: bool| Outcome::FullBorders {
        maximal_frequent: edge_lists(advance.maximal_frequent()),
        minimal_infrequent: edge_lists(advance.minimal_infrequent()),
        identification_calls: advance.stats().identification_calls as u64,
        complete,
    };
    loop {
        if let SinkDirective::Stop(reason) = sink.check() {
            return (Ok(full_borders(&advance, false)), Some(reason));
        }
        match advance.step(solver) {
            Ok(AdvanceStep::Complete) => return (Ok(full_borders(&advance, true)), None),
            Ok(AdvanceStep::Invalid(bad)) => {
                // Only a *seeded* family can be invalid; report it exactly as
                // the one-shot identification op does.
                let outcome = Outcome::Borders(match bad {
                    qld_datamining::identification::InvalidBorder::NotMaximalFrequent(s) => {
                        BordersOutcome::InvalidMaximalFrequent(indices(&s))
                    }
                    qld_datamining::identification::InvalidBorder::NotMinimalInfrequent(s) => {
                        BordersOutcome::InvalidMinimalInfrequent(indices(&s))
                    }
                });
                return (Ok(outcome), None);
            }
            Ok(AdvanceStep::Found(element)) => {
                let item = match &element {
                    NewBorderElement::MaximalFrequent(s) => StreamItem::BorderElement {
                        maximal: true,
                        itemset: indices(s),
                    },
                    NewBorderElement::MinimalInfrequent(s) => StreamItem::BorderElement {
                        maximal: false,
                        itemset: indices(s),
                    },
                };
                let directive = sink.item(item);
                items += 1;
                if items.is_multiple_of(PROGRESS_EVERY_ITEMS) {
                    sink.progress(StreamProgress {
                        items,
                        duality_calls: solver.info().duality_calls,
                    });
                }
                if let SinkDirective::Stop(reason) = directive {
                    return (Ok(full_borders(&advance, false)), Some(reason));
                }
            }
            // An identification call interrupted by cancellation mid-split:
            // answer with the borders advanced so far, like a cancellation
            // observed at the yield boundary.
            Err(_) if solver.interrupted() => {
                return (
                    Ok(full_borders(&advance, false)),
                    Some(StopReason::Cancelled),
                )
            }
            Err(e) => return (Err(e.to_string()), None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FixedPolicy, SizeThresholdPolicy};
    use qld_hypergraph::transversal::minimal_transversals;
    use qld_hypergraph::{generators, Hypergraph};

    #[test]
    fn enumeration_matches_exact_dualization() {
        let policy = SizeThresholdPolicy::default();
        for li in generators::standard_corpus() {
            if !li.dual {
                continue;
            }
            let solver = PolicySolver::new(&policy);
            let (found, complete) = enumerate_transversals_with(&li.g, None, &solver).unwrap();
            assert!(complete, "{}", li.name);
            assert!(found.same_edge_set(&li.h), "{}", li.name);
            // one call per transversal plus the confirming call
            assert_eq!(solver.info().duality_calls, found.num_edges() as u64 + 1);
        }
    }

    #[test]
    fn enumeration_respects_limit() {
        let li = generators::matching_instance(3);
        let policy = FixedPolicy(SolverKind::QuadChain);
        let solver = PolicySolver::new(&policy);
        let (found, complete) = enumerate_transversals_with(&li.g, Some(3), &solver).unwrap();
        assert!(!complete);
        assert_eq!(found.num_edges(), 3);
        let full = minimal_transversals(&li.g);
        for t in found.edges() {
            assert!(full.contains_edge(t));
        }
        assert_eq!(solver.info().solver, "quadlog-chain");

        // Run to completion: the final confirming call traverses the whole
        // virtual tree and meters its work space.
        let solver = PolicySolver::new(&policy);
        let (all, complete) = enumerate_transversals_with(&li.g, None, &solver).unwrap();
        assert!(complete);
        assert!(all.same_edge_set(&full));
        assert!(solver.info().peak_bits > 0);
    }

    #[test]
    fn enumeration_degenerate_cases() {
        let policy = SizeThresholdPolicy::default();
        // tr(∅) = {∅}
        let solver = PolicySolver::new(&policy);
        let (found, complete) =
            enumerate_transversals_with(&Hypergraph::new(3), None, &solver).unwrap();
        assert!(complete);
        assert_eq!(found.num_edges(), 1);
        assert!(found.edge(0).is_empty());
        // tr({∅}) = ∅
        let true_dnf = Hypergraph::from_edges(3, [qld_hypergraph::VertexSet::empty(3)]);
        let solver = PolicySolver::new(&policy);
        let (found, complete) = enumerate_transversals_with(&true_dnf, None, &solver).unwrap();
        assert!(complete);
        assert!(found.is_empty());
    }

    #[test]
    fn execute_normalizes_non_simple_duality_inputs() {
        // {0} absorbs {0,1}; minimized instance is dual to {{0},{1}}'s dual.
        let g = Hypergraph::from_index_edges(2, &[&[0], &[0, 1]]);
        let h = Hypergraph::from_index_edges(2, &[&[0]]);
        let (outcome, info) = execute(
            &Request::DecideDuality { g, h },
            &SizeThresholdPolicy::default(),
        );
        assert_eq!(
            outcome.unwrap(),
            Outcome::Duality {
                dual: true,
                witness: None
            }
        );
        assert_eq!(info.duality_calls, 1);
    }

    /// A recording sink that can stop the job after a fixed number of items.
    struct RecordingSink {
        items: Vec<StreamItem>,
        progress: Vec<StreamProgress>,
        stop_after: Option<usize>,
    }

    impl RecordingSink {
        fn new(stop_after: Option<usize>) -> Self {
            RecordingSink {
                items: Vec::new(),
                progress: Vec::new(),
                stop_after,
            }
        }
    }

    impl ResultSink for RecordingSink {
        fn item(&mut self, item: StreamItem) -> SinkDirective {
            self.items.push(item);
            match self.stop_after {
                Some(n) if self.items.len() >= n => SinkDirective::Stop(StopReason::Cancelled),
                _ => SinkDirective::Continue,
            }
        }
        fn progress(&mut self, progress: StreamProgress) {
            self.progress.push(progress);
        }
        fn check(&self) -> SinkDirective {
            match self.stop_after {
                Some(n) if self.items.len() >= n => SinkDirective::Stop(StopReason::Cancelled),
                _ => SinkDirective::Continue,
            }
        }
    }

    #[test]
    fn streamed_enumeration_yields_every_transversal_once() {
        let li = generators::matching_instance(5); // 32 minimal transversals
        let mut sink = RecordingSink::new(None);
        let policy = SizeThresholdPolicy::default();
        let execution = execute_streaming(
            &Request::EnumerateTransversals {
                g: li.g.clone(),
                limit: None,
            },
            &policy,
            &mut sink,
        );
        assert!(execution.halt.is_none());
        let Ok(Outcome::Transversals {
            transversals,
            complete,
        }) = execution.outcome
        else {
            panic!("unexpected outcome");
        };
        assert!(complete);
        assert_eq!(transversals.len(), 32);
        assert_eq!(sink.items.len(), 32);
        // Reassembling the chunks gives exactly the one-shot answer.
        let mut streamed: Vec<Vec<usize>> = sink
            .items
            .iter()
            .map(|item| match item {
                StreamItem::Transversal(t) => t.clone(),
                other => panic!("unexpected item {other:?}"),
            })
            .collect();
        streamed.sort();
        let mut oneshot = transversals.clone();
        oneshot.sort();
        assert_eq!(streamed, oneshot);
        // 32 items at a progress cadence of 16 → two checkpoints.
        assert_eq!(sink.progress.len(), 2);
        assert_eq!(sink.progress[0].items, 16);
        assert_eq!(sink.progress[1].items, 32);
        assert!(sink.progress[1].duality_calls >= 32);
    }

    #[test]
    fn halted_enumeration_returns_the_partial_prefix() {
        let li = generators::matching_instance(4); // 16 minimal transversals
        let mut sink = RecordingSink::new(Some(3));
        let execution = execute_streaming(
            &Request::EnumerateTransversals {
                g: li.g.clone(),
                limit: None,
            },
            &SizeThresholdPolicy::default(),
            &mut sink,
        );
        assert_eq!(execution.halt, Some(StopReason::Cancelled));
        let Ok(Outcome::Transversals {
            transversals,
            complete,
        }) = execution.outcome
        else {
            panic!("unexpected outcome");
        };
        assert!(!complete);
        assert_eq!(transversals.len(), 3);
        assert_eq!(sink.items.len(), 3);
    }

    #[test]
    fn pre_start_cancellation_skips_the_solvers() {
        struct AlwaysStopped;
        impl ResultSink for AlwaysStopped {
            fn item(&mut self, _item: StreamItem) -> SinkDirective {
                SinkDirective::Stop(StopReason::Cancelled)
            }
            fn progress(&mut self, _progress: StreamProgress) {}
            fn check(&self) -> SinkDirective {
                SinkDirective::Stop(StopReason::Cancelled)
            }
        }
        let li = generators::matching_instance(2);
        let execution = execute_streaming(
            &Request::DecideDuality { g: li.g, h: li.h },
            &SizeThresholdPolicy::default(),
            &mut AlwaysStopped,
        );
        assert_eq!(execution.halt, Some(StopReason::Cancelled));
        assert!(execution.outcome.is_err());
        assert_eq!(execution.info.duality_calls, 0);
    }

    #[test]
    fn mine_borders_streams_every_advancement() {
        let relation = qld_datamining::generators::random_relation(6, 14, 0.55, 7);
        let z = 3;
        let exact = qld_datamining::borders_exact(&relation, z);
        let mut sink = RecordingSink::new(None);
        let execution = execute_streaming(
            &Request::MineBorders {
                relation: relation.clone(),
                threshold: z,
                minimal_infrequent: Hypergraph::new(6),
                maximal_frequent: Hypergraph::new(6),
            },
            &SizeThresholdPolicy::default(),
            &mut sink,
        );
        assert!(execution.halt.is_none());
        let Ok(Outcome::FullBorders {
            maximal_frequent,
            minimal_infrequent,
            identification_calls,
            complete,
        }) = execution.outcome
        else {
            panic!("unexpected outcome");
        };
        assert!(complete);
        let expected_items =
            exact.maximal_frequent.num_edges() + exact.minimal_infrequent.num_edges();
        assert_eq!(sink.items.len(), expected_items);
        assert_eq!(identification_calls, expected_items as u64 + 1);
        assert_eq!(
            maximal_frequent.len() + minimal_infrequent.len(),
            expected_items
        );
        // Reassembling the border chunks reproduces the exact borders.
        let mut streamed_max = Vec::new();
        let mut streamed_min = Vec::new();
        for item in &sink.items {
            match item {
                StreamItem::BorderElement { maximal, itemset } => {
                    if *maximal {
                        streamed_max.push(itemset.clone());
                    } else {
                        streamed_min.push(itemset.clone());
                    }
                }
                other => panic!("unexpected item {other:?}"),
            }
        }
        streamed_max.sort();
        streamed_min.sort();
        let mut terminal_max = maximal_frequent.clone();
        terminal_max.sort();
        let mut terminal_min = minimal_infrequent.clone();
        terminal_min.sort();
        assert_eq!(streamed_max, terminal_max);
        assert_eq!(streamed_min, terminal_min);
    }

    #[test]
    fn mine_borders_reports_invalid_seeds_like_the_identification_op() {
        let relation = crate::wire::parse_relation("0,1;0,1;1,2").unwrap();
        // {0} is frequent at z=1 (support 2) but not maximal ({0,1} is also
        // frequent); seed it and expect the invalid verdict.
        let bad_seed = Hypergraph::from_index_edges(3, &[&[0]]);
        let mut sink = RecordingSink::new(None);
        let execution = execute_streaming(
            &Request::MineBorders {
                relation,
                threshold: 1,
                minimal_infrequent: Hypergraph::new(3),
                maximal_frequent: bad_seed,
            },
            &SizeThresholdPolicy::default(),
            &mut sink,
        );
        assert!(execution.halt.is_none());
        assert!(matches!(
            execution.outcome,
            Ok(Outcome::Borders(BordersOutcome::InvalidMaximalFrequent(_)))
        ));
        assert!(sink.items.is_empty());
    }
}
