//! Pluggable solver routing.
//!
//! Every duality decision the engine makes — directly for `check`, or inside
//! the enumeration loops of `enumerate`, `mine`, and `keys` — goes through a
//! [`SolverPolicy`], which picks a concrete solver per instance.  The default
//! [`SizeThresholdPolicy`] routes small instances to the materializing
//! Boros–Makino tree solver (fast, polynomial working space) and large ones to
//! the paper's quadratic-logspace solver (bounded working space).

use crate::request::Request;
use qld_hypergraph::Hypergraph;

/// The concrete solvers the engine can dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// [`qld_core::BorosMakinoTreeSolver`]: explicit decomposition tree.
    BmTree,
    /// [`qld_core::QuadLogspaceSolver`] with the materialize-per-level strategy.
    QuadChain,
    /// [`qld_core::QuadLogspaceSolver`] with the faithful recompute strategy.
    QuadRecompute,
}

impl SolverKind {
    /// The solver's experiment-table name.
    pub fn name(&self) -> &'static str {
        match self {
            SolverKind::BmTree => "bm-tree",
            SolverKind::QuadChain => "quadlog-chain",
            SolverKind::QuadRecompute => "quadlog-recompute",
        }
    }

    /// Parses a CLI/wire solver name.
    pub fn from_name(name: &str) -> Option<SolverKind> {
        match name {
            "bm" | "bm-tree" | "tree" => Some(SolverKind::BmTree),
            "quadlog" | "quadlog-chain" | "chain" => Some(SolverKind::QuadChain),
            "quadlog-recompute" | "recompute" => Some(SolverKind::QuadRecompute),
            _ => None,
        }
    }
}

/// Chooses a solver for each `DUAL` instance.
pub trait SolverPolicy: Send + Sync {
    /// Picks the solver for deciding duality of `(g, h)`.
    fn choose(&self, g: &Hypergraph, h: &Hypergraph) -> SolverKind;

    /// A short name for logs and stats.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// Routes by instance volume: small instances to the tree solver, large ones
/// to the quadratic-logspace solver.
#[derive(Debug, Clone)]
pub struct SizeThresholdPolicy {
    /// Instances with `g.volume() + h.volume()` at most this go to the tree
    /// solver; larger ones to the quadratic-logspace solver.
    pub volume_threshold: usize,
}

impl Default for SizeThresholdPolicy {
    fn default() -> Self {
        // The explicit tree is consistently fastest on the laptop-scale corpus
        // (E4); the quadratic-logspace DFS takes over where materializing the
        // tree starts to hurt.
        SizeThresholdPolicy {
            volume_threshold: 96,
        }
    }
}

impl SolverPolicy for SizeThresholdPolicy {
    fn choose(&self, g: &Hypergraph, h: &Hypergraph) -> SolverKind {
        if g.volume() + h.volume() <= self.volume_threshold {
            SolverKind::BmTree
        } else {
            SolverKind::QuadChain
        }
    }

    fn name(&self) -> &'static str {
        "size-threshold"
    }
}

/// Always uses one fixed solver.
#[derive(Debug, Clone, Copy)]
pub struct FixedPolicy(pub SolverKind);

impl SolverPolicy for FixedPolicy {
    fn choose(&self, _g: &Hypergraph, _h: &Hypergraph) -> SolverKind {
        self.0
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_hypergraph::Hypergraph;

    #[test]
    fn size_threshold_routes_by_volume() {
        let policy = SizeThresholdPolicy {
            volume_threshold: 4,
        };
        let small = Hypergraph::from_index_edges(4, &[&[0, 1]]);
        let big = Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3], &[0, 3]]);
        assert_eq!(policy.choose(&small, &small), SolverKind::BmTree);
        assert_eq!(policy.choose(&big, &big), SolverKind::QuadChain);
    }

    #[test]
    fn solver_names_round_trip() {
        for kind in [
            SolverKind::BmTree,
            SolverKind::QuadChain,
            SolverKind::QuadRecompute,
        ] {
            assert_eq!(SolverKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SolverKind::from_name("nope"), None);
    }
}

/// Where one request executes.
///
/// The pool is the default: every request becomes a job on the persistent
/// worker pool — cache consulted, cancellable, counted in-flight.  The
/// *local* route answers a request synchronously on the thread that submitted
/// it: no queue round-trip, no worker handoff, and **no cache participation**
/// (the cache key — a hex render of every edge word — is never built, which
/// is most of the fixed overhead on instances too small to ever repeat).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecRoute {
    /// Inline on the submitting session's thread.
    Local,
    /// The persistent worker pool.
    Pool,
}

/// Routing decision for one request.
///
/// `Local` iff in-process execution is enabled (`local_threshold > 0`, see
/// `EngineConfig::local_threshold`), the request is one-shot (streamed
/// requests need chunk frames, which only pool jobs emit), and its
/// [`Request::local_work`] estimate is below the threshold.  Everything else
/// — all mining/enumeration kinds included — routes to the pool.
pub fn exec_route(request: &Request, stream: bool, local_threshold: usize) -> ExecRoute {
    if local_threshold == 0 || stream {
        return ExecRoute::Pool;
    }
    match request.local_work() {
        Some(work) if work < local_threshold => ExecRoute::Local,
        _ => ExecRoute::Pool,
    }
}
