//! The epoll readiness loop: every serve connection of a daemon multiplexed
//! onto **one** thread.
//!
//! Thread-per-session transport caps a daemon at a few thousand connections
//! (one stack, one scheduler slot each) and lets a single slow reader pin a
//! worker behind a blocking `write`.  This loop replaces that: connections
//! are non-blocking state machines ([`crate::engine::SessionMux`] plus a
//! read/write buffer pair), readiness comes from the raw-syscall `epoll`
//! shim, and solver work still runs on the engine's shared worker pool —
//! workers hand results back through each session's reply channel and poke
//! the loop's self-pipe waker.
//!
//! Backpressure is explicit at every boundary:
//!
//! * **input** — a session whose job submission would block (shared queue
//!   full) or whose reorder buffer is at capacity stops consuming buffered
//!   lines and drops its read interest; level-triggered epoll re-reports the
//!   socket once the session retries.
//! * **output** — response and chunk bytes accumulate in a per-session write
//!   buffer that drains opportunistically (one `write` syscall flushes every
//!   frame that is ready: chunk coalescing under slow consumers).  A session
//!   more than [`DEFAULT_WRITE_CAP`] bytes behind is treated as dead — its
//!   in-flight jobs are cancelled and the connection dropped — because a
//!   consumer that refuses to read an entire cap's worth of buffering is
//!   indistinguishable from one that is gone.
//!
//! On platforms without epoll (`Epoll::new()` returns `Unsupported`) the
//! transports fall back to the thread-per-session loop, so the portable
//! behaviour is unchanged.

use crate::engine::{Engine, MuxFeed, ReplySender, ServeOptions, SessionMux};
use crate::lock_ignoring_poison;
use crate::stream::StreamEvent;
use crate::transport::TransportSummary;
use epoll::{Epoll, Event, Interest};
use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default hard cap on a session's buffered unsent output
/// ([`ServeOptions::write_cap`] overrides it).
pub(crate) const DEFAULT_WRITE_CAP: usize = 8 * 1024 * 1024;

/// Epoll token of the accept listener.
const LISTENER_TOKEN: u64 = 0;
/// Epoll token of the self-pipe waker's read end.
const WAKER_TOKEN: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_SESSION_TOKEN: u64 = 2;

/// Bytes read from one socket per service pass before yielding to the other
/// sessions (level-triggered epoll re-reports the remainder).
const READ_BURST: usize = 256 * 1024;

/// Give up after this many consecutive accept failures (mirrors the
/// thread-per-session loop's limit).
const MAX_CONSECUTIVE_ACCEPT_ERRORS: u32 = 100;

/// How long to sleep in the epoll wait while any session is stalled on the
/// shared job queue or its reorder buffer, so retries happen promptly.
const STALL_RETRY_MS: i32 = 5;

/// A listener the readiness loop can accept from without blocking.
pub(crate) trait ReadyListener: AsRawFd {
    /// The accepted connection type.
    type Stream: ReadyStream;
    /// Toggles O_NONBLOCK on the listening socket.
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;
    /// Accepts one pending connection.
    fn accept_stream(&self) -> io::Result<Self::Stream>;
}

/// A connection the readiness loop can service without blocking.
pub(crate) trait ReadyStream: Read + Write + AsRawFd {
    /// Toggles O_NONBLOCK on the connection.
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;
    /// Half-closes the connection.
    fn shutdown_side(&self, how: Shutdown) -> io::Result<()>;
}

impl ReadyListener for UnixListener {
    type Stream = UnixStream;
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        UnixListener::set_nonblocking(self, nonblocking)
    }
    fn accept_stream(&self) -> io::Result<UnixStream> {
        self.accept().map(|(stream, _)| stream)
    }
}

impl ReadyStream for UnixStream {
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        UnixStream::set_nonblocking(self, nonblocking)
    }
    fn shutdown_side(&self, how: Shutdown) -> io::Result<()> {
        UnixStream::shutdown(self, how)
    }
}

impl ReadyListener for TcpListener {
    type Stream = TcpStream;
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        TcpListener::set_nonblocking(self, nonblocking)
    }
    fn accept_stream(&self) -> io::Result<TcpStream> {
        self.accept().map(|(stream, _)| stream)
    }
}

impl ReadyStream for TcpStream {
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        TcpStream::set_nonblocking(self, nonblocking)
    }
    fn shutdown_side(&self, how: Shutdown) -> io::Result<()> {
        TcpStream::shutdown(self, how)
    }
}

/// Wakes the loop from worker threads: each delivered reply event records its
/// session's token in the dirty set and writes one byte down a non-blocking
/// self-pipe registered in the epoll set.  A full pipe is fine — a wakeup is
/// already pending.
struct LoopWaker {
    dirty: Mutex<HashSet<u64>>,
    pipe_tx: UnixStream,
}

impl LoopWaker {
    fn wake(&self, token: u64) {
        lock_ignoring_poison(&self.dirty).insert(token);
        let _ = (&self.pipe_tx).write(&[1]);
    }

    fn take_dirty(&self) -> HashSet<u64> {
        std::mem::take(&mut *lock_ignoring_poison(&self.dirty))
    }
}

/// One multiplexed connection: the socket, its session state machine, and
/// the read/write staging buffers.
struct Conn<S> {
    stream: S,
    mux: SessionMux,
    replies: Receiver<StreamEvent>,
    /// Holds the `connections` stats gauge up until the connection closes.
    _connection: crate::engine::ConnectionGuard,
    /// Bytes received but not yet consumed as complete lines.
    read_buf: Vec<u8>,
    /// Rendered response bytes not yet accepted by the socket.
    out: Vec<u8>,
    /// How much of `out` has been written.
    out_pos: usize,
    /// The interest set currently registered with epoll.
    interest: Interest,
    /// A buffered line could not be fed (job queue or reorder buffer full).
    stalled: bool,
    /// No more input will be read (EOF, peer hangup, or server drain).
    read_closed: bool,
    /// The connection is broken: in-flight jobs cancelled, close ASAP.
    failed: bool,
    /// Hard cap on `out.len() - out_pos` before the session is declared dead.
    write_cap: usize,
}

/// What to do with a connection after a service pass.
#[derive(PartialEq, Eq)]
enum Verdict {
    Keep,
    Close,
}

impl<S: ReadyStream> Conn<S> {
    /// One full service pass: drain worker replies, read and feed input,
    /// flush output, then decide whether the connection stays.
    fn service(&mut self, can_read: bool) -> Verdict {
        while let Ok(event) = self.replies.try_recv() {
            self.mux.on_event(event, &mut self.out);
        }
        if can_read && !self.read_closed && !self.failed && !self.stalled {
            self.fill_read_buf();
        }
        self.process_lines();
        self.flush();
        if !self.failed && self.unsent() > self.write_cap {
            // The consumer is not keeping up by an entire cap's worth of
            // output: treat it as dead so its jobs stop burning workers.
            self.fail();
        }
        if self.failed {
            return Verdict::Close;
        }
        if self.read_closed && !self.stalled && self.mux.is_idle() && self.unsent() == 0 {
            let _ = self.stream.shutdown_side(Shutdown::Write);
            return Verdict::Close;
        }
        Verdict::Keep
    }

    /// Reads up to [`READ_BURST`] bytes without blocking.
    fn fill_read_buf(&mut self) {
        let mut chunk = [0u8; 16 * 1024];
        let mut taken = 0usize;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    break;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    taken += n;
                    if taken >= READ_BURST {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.fail();
                    break;
                }
            }
        }
    }

    /// Feeds every complete buffered line to the session state machine,
    /// stopping (without consuming) at a stall.
    fn process_lines(&mut self) {
        if self.failed {
            return;
        }
        self.stalled = false;
        let mut start = 0usize;
        while let Some(offset) = self.read_buf[start..].iter().position(|&b| b == b'\n') {
            let end = start + offset;
            let mut line = &self.read_buf[start..end];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            let Ok(text) = std::str::from_utf8(line) else {
                // The blocking path surfaces invalid UTF-8 as a session read
                // error; the equivalent here is failing the connection.
                self.fail();
                break;
            };
            match self.mux.feed_line(text, &mut self.out) {
                MuxFeed::Progress => start = end + 1,
                MuxFeed::Stalled => {
                    self.stalled = true;
                    break;
                }
                MuxFeed::PoolClosed => {
                    self.fail();
                    break;
                }
            }
        }
        if start > 0 {
            self.read_buf.drain(..start);
        }
    }

    /// Writes as much buffered output as the socket accepts right now.
    fn flush(&mut self) {
        while self.out_pos < self.out.len() && !self.failed {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.fail();
                    break;
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.fail();
                    break;
                }
            }
        }
        if self.out_pos >= self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
    }

    /// Bytes accepted into the write buffer but not yet onto the socket.
    fn unsent(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Marks the connection broken and cancels its in-flight jobs.
    fn fail(&mut self) {
        if !self.failed {
            self.failed = true;
            self.mux.abort();
        }
    }

    /// The interest set this connection needs right now: input only while the
    /// session can consume it, output only while bytes are waiting.
    fn wanted_interest(&self) -> Interest {
        Interest {
            readable: !self.read_closed && !self.stalled && !self.failed,
            writable: self.unsent() > 0,
        }
    }
}

/// Serves `listener` through an epoll readiness loop until `stop` trips and
/// every session drains.  Returns `Unsupported` (before accepting anything)
/// on platforms without epoll so callers can fall back to
/// [`crate::transport::run_session_loop`].
pub(crate) fn serve_ready<L: ReadyListener>(
    listener: &L,
    stop: &AtomicBool,
    engine: &Arc<Engine>,
    options: &ServeOptions,
) -> io::Result<TransportSummary> {
    let epoll = Epoll::new()?;
    listener.set_nonblocking(true)?;
    epoll.add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
    let (pipe_rx, pipe_tx) = UnixStream::pair()?;
    pipe_rx.set_nonblocking(true)?;
    pipe_tx.set_nonblocking(true)?;
    epoll.add(pipe_rx.as_raw_fd(), WAKER_TOKEN, Interest::READ)?;
    let waker = Arc::new(LoopWaker {
        dirty: Mutex::new(HashSet::new()),
        pipe_tx,
    });

    let write_cap = options.write_cap.unwrap_or(DEFAULT_WRITE_CAP);
    let mut sessions: HashMap<u64, Conn<L::Stream>> = HashMap::new();
    let mut next_token = FIRST_SESSION_TOKEN;
    let mut totals = TransportSummary::default();
    let mut events: Vec<Event> = Vec::new();
    let mut accept_errors = 0u32;
    let mut draining = false;

    loop {
        if !draining && stop.load(Ordering::SeqCst) {
            // Stop accepting and reading; in-flight requests finish and
            // flush, matching the thread-per-session drain semantics.  Every
            // session is serviced once right away so the ones that are
            // already idle close now instead of waiting on a readiness event
            // that will never come.
            draining = true;
            let _ = epoll.delete(listener.as_raw_fd());
            for token in sessions.keys().copied().collect::<Vec<_>>() {
                if let Some(conn) = sessions.get_mut(&token) {
                    conn.read_closed = true;
                }
                service_token(&epoll, &mut sessions, &mut totals, token, false);
            }
        }
        if draining && sessions.is_empty() {
            break;
        }

        let any_stalled = sessions.values().any(|c| c.stalled);
        let timeout_ms = if any_stalled { STALL_RETRY_MS } else { -1 };
        epoll.wait(&mut events, timeout_ms)?;

        // Which sessions need service this tick, and whether their socket
        // reported input readiness (hangups and errors are surfaced by
        // reading: buffered bytes first, then EOF or the error itself).
        let mut touched: HashMap<u64, bool> = HashMap::new();
        let mut accept_ready = false;
        let mut waker_ready = false;
        for event in &events {
            match event.token {
                LISTENER_TOKEN => accept_ready = true,
                WAKER_TOKEN => waker_ready = true,
                token => {
                    let can_read = event.readable || event.hangup || event.error;
                    *touched.entry(token).or_insert(false) |= can_read;
                }
            }
        }
        if waker_ready {
            let mut sink = [0u8; 256];
            while matches!((&pipe_rx).read(&mut sink), Ok(n) if n > 0) {}
        }
        for token in waker.take_dirty() {
            touched.entry(token).or_insert(false);
        }
        for (token, conn) in sessions.iter() {
            if conn.stalled {
                touched.entry(*token).or_insert(false);
            }
        }

        // Re-check the flag here: the wake-up connection a shutdown handle
        // makes right after raising `stop` must not be accepted and counted.
        if accept_ready && !draining && !stop.load(Ordering::SeqCst) {
            accept_burst(
                listener,
                &epoll,
                engine,
                options,
                &waker,
                write_cap,
                &mut sessions,
                &mut next_token,
                &mut totals,
                &mut accept_errors,
            )?;
        }

        for (token, can_read) in touched {
            service_token(&epoll, &mut sessions, &mut totals, token, can_read);
        }
    }
    Ok(totals)
}

/// Runs one service pass on a session (if it still exists), updates its epoll
/// interest set, and retires it — counters folded into `totals` — once it is
/// done or broken.
fn service_token<S: ReadyStream>(
    epoll: &Epoll,
    sessions: &mut HashMap<u64, Conn<S>>,
    totals: &mut TransportSummary,
    token: u64,
    can_read: bool,
) {
    let Some(conn) = sessions.get_mut(&token) else {
        return;
    };
    let mut close = conn.service(can_read) == Verdict::Close;
    if !close {
        let wanted = conn.wanted_interest();
        if wanted != conn.interest {
            if epoll.modify(conn.stream.as_raw_fd(), token, wanted).is_ok() {
                conn.interest = wanted;
            } else {
                conn.fail();
                close = true;
            }
        }
    }
    if close {
        let conn = sessions.remove(&token).expect("present above");
        let (requests, errors) = conn.mux.tallies();
        totals.requests += requests;
        totals.errors += errors;
        let _ = epoll.delete(conn.stream.as_raw_fd());
    }
}

/// Accepts every pending connection (the listener is level-triggered, so
/// stopping at `WouldBlock` is complete).
#[allow(clippy::too_many_arguments)]
fn accept_burst<L: ReadyListener>(
    listener: &L,
    epoll: &Epoll,
    engine: &Arc<Engine>,
    options: &ServeOptions,
    waker: &Arc<LoopWaker>,
    write_cap: usize,
    sessions: &mut HashMap<u64, Conn<L::Stream>>,
    next_token: &mut u64,
    totals: &mut TransportSummary,
    accept_errors: &mut u32,
) -> io::Result<()> {
    loop {
        let stream = match listener.accept_stream() {
            Ok(stream) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                *accept_errors += 1;
                if *accept_errors >= MAX_CONSECUTIVE_ACCEPT_ERRORS {
                    return Err(e);
                }
                // Back off briefly so an accept-error storm (EMFILE and
                // friends) does not spin the loop hot.
                std::thread::sleep(Duration::from_millis(1));
                break;
            }
        };
        *accept_errors = 0;
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let token = *next_token;
        *next_token += 1;
        let (reply_tx, reply_rx) = mpsc::channel::<StreamEvent>();
        let wake = Arc::clone(waker);
        let reply = ReplySender::notifying(reply_tx, Arc::new(move || wake.wake(token)));
        let mux = engine.session_mux(options, reply);
        if epoll
            .add(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            continue; // mux drop releases the session gauge
        }
        sessions.insert(
            token,
            Conn {
                stream,
                mux,
                replies: reply_rx,
                _connection: engine.track_connection(),
                read_buf: Vec::new(),
                out: Vec::new(),
                out_pos: 0,
                interest: Interest::READ,
                stalled: false,
                read_closed: false,
                failed: false,
                write_cap,
            },
        );
        totals.connections += 1;
    }
    Ok(())
}
