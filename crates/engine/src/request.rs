//! Typed engine requests.

use qld_datamining::BooleanRelation;
use qld_hypergraph::{Hypergraph, VertexSet};
use qld_keys::RelationInstance;

/// Compact canonical token of a vertex set: its backing bitmap words in hex, low word
/// first, trailing zero words trimmed (`"0"` for the empty set).  This reuses the
/// inline word encoding of [`VertexSet`] directly — no per-vertex rendering — so
/// building a cache key for a `≤ 64`-vertex edge is one hex formatting of one word.
fn set_token(s: &VertexSet) -> String {
    let words = s.as_words();
    let mut last = words.len();
    while last > 1 && words[last - 1] == 0 {
        last -= 1;
    }
    words[..last]
        .iter()
        .map(|w| format!("{w:x}"))
        .collect::<Vec<_>>()
        .join(".")
}

/// Canonical token of an edge family: universe size plus the word-encoded edges in
/// the family's (already canonicalized) order.
fn family_token(h: &Hypergraph) -> String {
    if h.is_empty() {
        return format!("n={}:-", h.num_vertices());
    }
    let edges: Vec<String> = h.edges().iter().map(set_token).collect();
    format!("n={}:{}", h.num_vertices(), edges.join(";"))
}

/// One query against the duality/itemset/key solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Decide whether `g` and `h` are dual (the `DUAL` problem).
    DecideDuality {
        /// First hypergraph.
        g: Hypergraph,
        /// Second hypergraph.
        h: Hypergraph,
    },
    /// Enumerate minimal transversals of `g`, duality-call by duality-call, up
    /// to `limit` of them (all of them when `limit` is `None`).
    EnumerateTransversals {
        /// The hypergraph to dualize.
        g: Hypergraph,
        /// Maximum number of transversals to produce.
        limit: Option<usize>,
    },
    /// Decide whether known partial borders of the frequent-itemset lattice are
    /// complete (MaxFreq-MinInfreq-Identification, Proposition 1.1), producing
    /// a new border element when they are not.
    IdentifyItemsetBorders {
        /// The Boolean-valued relation `M`.
        relation: BooleanRelation,
        /// The frequency threshold `z` (strict: frequent iff `f(U) > z`).
        threshold: usize,
        /// Known minimal infrequent itemsets `G ⊆ IS⁻(M, z)`.
        minimal_infrequent: Hypergraph,
        /// Known maximal frequent itemsets `H ⊆ IS⁺(M, z)`.
        maximal_frequent: Hypergraph,
    },
    /// Run the full `dualize_and_advance` identification loop server-side
    /// (the `mine … full=true` wire request): repeat the Proposition 1.1
    /// check, adding each discovered border element, until both borders are
    /// complete.  The incremental structure makes this the engine's flagship
    /// streaming op — every advancement is a natural stream item.
    MineBorders {
        /// The Boolean-valued relation `M`.
        relation: BooleanRelation,
        /// The frequency threshold `z` (strict: frequent iff `f(U) > z`).
        threshold: usize,
        /// Seed minimal infrequent itemsets `G ⊆ IS⁻(M, z)` to resume from
        /// (usually empty).
        minimal_infrequent: Hypergraph,
        /// Seed maximal frequent itemsets `H ⊆ IS⁺(M, z)` to resume from
        /// (usually empty).
        maximal_frequent: Hypergraph,
    },
    /// Enumerate all minimal keys of an explicit relational instance
    /// (Proposition 1.2), one duality call per key.
    FindMinimalKeys {
        /// The relational instance.
        instance: RelationInstance,
    },
}

impl Request {
    /// The wire-format kind tag of this request.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::DecideDuality { .. } => "check",
            Request::EnumerateTransversals { .. } => "enumerate",
            Request::IdentifyItemsetBorders { .. } => "mine",
            Request::MineBorders { .. } => "mine_full",
            Request::FindMinimalKeys { .. } => "keys",
        }
    }

    /// The work estimate consulted by in-process ("local") routing, in the
    /// same `|V| · (|G| + |H|)` units as the parallel-split threshold —
    /// `None` for request kinds that never route local.  Only `check` is
    /// eligible: a duality decision's cost is readable off its sizes, whereas
    /// enumeration and mining outputs can be exponential in the input, so a
    /// "small" request of those kinds may still be arbitrarily expensive.
    pub fn local_work(&self) -> Option<usize> {
        match self {
            Request::DecideDuality { g, h } => Some(
                g.num_vertices()
                    .max(h.num_vertices())
                    .max(1)
                    .saturating_mul((g.num_edges() + h.num_edges()).max(1)),
            ),
            _ => None,
        }
    }

    /// A canonical cache key: requests that denote the same instance map to
    /// the same key, so the engine's result cache deduplicates normalized
    /// instances, not raw input strings.  `check`/`enumerate` keys normalize
    /// exactly as execution does (absorption via `minimize` plus canonical
    /// edge order); `mine`/`keys` keys canonicalize edge/row order only,
    /// because their validation semantics depend on the exact input families.
    /// Sets are rendered from their bitmap words (the inline encoding of
    /// [`VertexSet`]) rather than as vertex lists, keeping key construction
    /// off the per-vertex path.
    pub fn cache_key(&self) -> String {
        match self {
            Request::DecideDuality { g, h } => format!(
                "check {} {}",
                family_token(&g.minimize().canonicalized()),
                family_token(&h.minimize().canonicalized())
            ),
            Request::EnumerateTransversals { g, limit } => format!(
                "enumerate {} limit={}",
                family_token(&g.minimize().canonicalized()),
                limit.map_or_else(|| "all".to_string(), |l| l.to_string())
            ),
            Request::IdentifyItemsetBorders {
                relation,
                threshold,
                minimal_infrequent,
                maximal_frequent,
            } => {
                // Rows of a relation form a multiset: sort the rendered rows so
                // row order does not split cache entries.
                let mut rows: Vec<String> = relation.rows().iter().map(set_token).collect();
                rows.sort();
                format!(
                    "mine n={}:{} z={} g={} h={}",
                    relation.num_items(),
                    rows.join(";"),
                    threshold,
                    family_token(&minimal_infrequent.canonicalized()),
                    family_token(&maximal_frequent.canonicalized())
                )
            }
            Request::MineBorders {
                relation,
                threshold,
                minimal_infrequent,
                maximal_frequent,
            } => {
                let mut rows: Vec<String> = relation.rows().iter().map(set_token).collect();
                rows.sort();
                format!(
                    "mine-full n={}:{} z={} g={} h={}",
                    relation.num_items(),
                    rows.join(";"),
                    threshold,
                    family_token(&minimal_infrequent.canonicalized()),
                    family_token(&maximal_frequent.canonicalized())
                )
            }
            Request::FindMinimalKeys { instance } => {
                // Row order of a key table does not affect its minimal keys.
                let mut rows: Vec<String> = instance
                    .rows()
                    .iter()
                    .map(|r| r.iter().map(u32::to_string).collect::<Vec<_>>().join(","))
                    .collect();
                rows.sort();
                format!("keys w={} {}", instance.num_attributes(), rows.join(";"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_hypergraph::Hypergraph;

    #[test]
    fn cache_key_is_order_insensitive() {
        let a = Request::DecideDuality {
            g: Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3]]),
            h: Hypergraph::from_index_edges(4, &[&[0, 2], &[1, 3]]),
        };
        let b = Request::DecideDuality {
            g: Hypergraph::from_index_edges(4, &[&[2, 3], &[0, 1]]),
            h: Hypergraph::from_index_edges(4, &[&[1, 3], &[0, 2]]),
        };
        assert_eq!(a.cache_key(), b.cache_key());
        let c = Request::DecideDuality {
            g: Hypergraph::from_index_edges(4, &[&[2, 3], &[0, 1]]),
            h: Hypergraph::from_index_edges(4, &[&[1, 2], &[0, 2]]),
        };
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn cache_key_absorbs_redundant_edges_like_execution_does() {
        // {0} absorbs {0,1}: execution minimizes before solving, so the keys
        // must coincide too.
        let redundant = Request::EnumerateTransversals {
            g: Hypergraph::from_index_edges(2, &[&[0], &[0, 1]]),
            limit: None,
        };
        let minimal = Request::EnumerateTransversals {
            g: Hypergraph::from_index_edges(2, &[&[0]]),
            limit: None,
        };
        assert_eq!(redundant.cache_key(), minimal.cache_key());
    }

    #[test]
    fn kinds_match_wire_tags() {
        let g = Hypergraph::from_index_edges(2, &[&[0, 1]]);
        assert_eq!(
            Request::EnumerateTransversals {
                g: g.clone(),
                limit: None
            }
            .kind(),
            "enumerate"
        );
        assert_eq!(
            Request::DecideDuality { g: g.clone(), h: g }.kind(),
            "check"
        );
    }
}
