//! Typed engine responses and their JSON-lines rendering.

use crate::json::{self, ObjectBuilder};

/// Compact, owned summary of a non-duality witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessSummary {
    /// A new transversal of `G` missing from `H` (as sorted vertex indices).
    NewTransversalOfG(Vec<usize>),
    /// A new transversal of `H` missing from `G`.
    NewTransversalOfH(Vec<usize>),
    /// A disjoint edge pair — one edge of `G` and one edge of `H` that do not
    /// intersect (rendered as the edges themselves, not positional indices,
    /// so the witness stays valid for any edge ordering of the same
    /// instance).
    DisjointEdges {
        /// The `G`-edge (sorted vertex indices).
        g_edge: Vec<usize>,
        /// The `H`-edge (sorted vertex indices).
        h_edge: Vec<usize>,
    },
}

/// Outcome of an `IdentifyItemsetBorders` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BordersOutcome {
    /// The given borders are complete.
    Complete,
    /// A maximal frequent itemset missing from the given `H`.
    NewMaximalFrequent(Vec<usize>),
    /// A minimal infrequent itemset missing from the given `G`.
    NewMinimalInfrequent(Vec<usize>),
    /// A claimed maximal frequent itemset is not maximal frequent.
    InvalidMaximalFrequent(Vec<usize>),
    /// A claimed minimal infrequent itemset is not minimal infrequent.
    InvalidMinimalInfrequent(Vec<usize>),
}

/// The successful result payload of a request, by kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Result of `DecideDuality`.
    Duality {
        /// Whether the two hypergraphs are dual.
        dual: bool,
        /// A checkable witness when they are not.
        witness: Option<WitnessSummary>,
    },
    /// Result of `EnumerateTransversals`.
    Transversals {
        /// The minimal transversals found, canonically ordered.
        transversals: Vec<Vec<usize>>,
        /// Whether the enumeration is complete (`false` iff cut off by `limit`).
        complete: bool,
    },
    /// Result of `IdentifyItemsetBorders`.
    Borders(BordersOutcome),
    /// Result of `FindMinimalKeys`.
    Keys {
        /// All minimal keys, canonically ordered.
        keys: Vec<Vec<usize>>,
        /// Number of duality calls the enumeration needed.
        duality_calls: usize,
    },
}

/// Per-request execution statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RequestStats {
    /// Wall time spent answering the request, in microseconds.
    pub micros: u128,
    /// Peak metered work-tape bits across the quadratic-logspace solver calls
    /// made for this request (0 when only unmetered solvers ran).
    pub peak_bits: u64,
    /// Name of the solver (or solvers) that handled the duality calls.
    pub solver: String,
    /// Number of `DUAL` decisions the request needed.
    pub duality_calls: u64,
    /// Whether the answer came from the engine's result cache.
    pub cache_hit: bool,
    /// Index of the worker shard that executed the request.
    pub worker: usize,
}

/// One answered request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request's sequence number within its batch or stream.
    pub id: u64,
    /// The result payload, or a rendered error.
    pub outcome: Result<Outcome, String>,
    /// Execution statistics.
    pub stats: RequestStats,
}

impl Response {
    /// Whether the request was answered successfully.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// Renders the response as one JSON line (without trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut o = ObjectBuilder::new();
        o.uint("id", self.id as u128);
        match &self.outcome {
            Err(message) => {
                o.bool("ok", false);
                o.str("error", message);
            }
            Ok(outcome) => {
                o.bool("ok", true);
                match outcome {
                    Outcome::Duality { dual, witness } => {
                        o.str("kind", "check");
                        o.bool("dual", *dual);
                        if let Some(w) = witness {
                            let mut wo = ObjectBuilder::new();
                            match w {
                                WitnessSummary::NewTransversalOfG(t) => {
                                    wo.str("type", "new_transversal_of_g");
                                    wo.raw("transversal", &json::index_array(t));
                                }
                                WitnessSummary::NewTransversalOfH(t) => {
                                    wo.str("type", "new_transversal_of_h");
                                    wo.raw("transversal", &json::index_array(t));
                                }
                                WitnessSummary::DisjointEdges { g_edge, h_edge } => {
                                    wo.str("type", "disjoint_edges");
                                    wo.raw("g_edge", &json::index_array(g_edge));
                                    wo.raw("h_edge", &json::index_array(h_edge));
                                }
                            }
                            o.raw("witness", &wo.build());
                        }
                    }
                    Outcome::Transversals {
                        transversals,
                        complete,
                    } => {
                        o.str("kind", "enumerate");
                        o.bool("complete", *complete);
                        o.uint("count", transversals.len() as u128);
                        o.raw("transversals", &json::index_matrix(transversals));
                    }
                    Outcome::Borders(b) => {
                        o.str("kind", "mine");
                        match b {
                            BordersOutcome::Complete => {
                                o.str("status", "complete");
                            }
                            BordersOutcome::NewMaximalFrequent(s) => {
                                o.str("status", "incomplete");
                                o.str("new_border", "maximal_frequent");
                                o.raw("itemset", &json::index_array(s));
                            }
                            BordersOutcome::NewMinimalInfrequent(s) => {
                                o.str("status", "incomplete");
                                o.str("new_border", "minimal_infrequent");
                                o.raw("itemset", &json::index_array(s));
                            }
                            BordersOutcome::InvalidMaximalFrequent(s) => {
                                o.str("status", "invalid");
                                o.str("invalid_border", "maximal_frequent");
                                o.raw("itemset", &json::index_array(s));
                            }
                            BordersOutcome::InvalidMinimalInfrequent(s) => {
                                o.str("status", "invalid");
                                o.str("invalid_border", "minimal_infrequent");
                                o.raw("itemset", &json::index_array(s));
                            }
                        }
                    }
                    Outcome::Keys {
                        keys,
                        duality_calls,
                    } => {
                        o.str("kind", "keys");
                        o.uint("count", keys.len() as u128);
                        o.raw("keys", &json::index_matrix(keys));
                        o.uint("duality_calls", *duality_calls as u128);
                    }
                }
            }
        }
        let mut stats = ObjectBuilder::new();
        stats
            .uint("micros", self.stats.micros)
            .uint("peak_bits", self.stats.peak_bits as u128)
            .str("solver", &self.stats.solver)
            .uint("duality_calls", self.stats.duality_calls as u128)
            .bool("cache_hit", self.stats.cache_hit)
            .uint("worker", self.stats.worker as u128);
        o.raw("stats", &stats.build());
        o.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_have_expected_shape() {
        let resp = Response {
            id: 3,
            outcome: Ok(Outcome::Duality {
                dual: false,
                witness: Some(WitnessSummary::NewTransversalOfG(vec![0, 2])),
            }),
            stats: RequestStats {
                micros: 17,
                peak_bits: 42,
                solver: "quadlog-chain".into(),
                duality_calls: 1,
                cache_hit: false,
                worker: 1,
            },
        };
        let line = resp.to_json_line();
        assert!(line.starts_with("{\"id\":3,\"ok\":true,\"kind\":\"check\",\"dual\":false"));
        assert!(
            line.contains("\"witness\":{\"type\":\"new_transversal_of_g\",\"transversal\":[0,2]}")
        );
        assert!(
            line.contains("\"stats\":{\"micros\":17,\"peak_bits\":42,\"solver\":\"quadlog-chain\"")
        );

        let err = Response {
            id: 4,
            outcome: Err("bad input".into()),
            stats: RequestStats::default(),
        };
        assert!(err
            .to_json_line()
            .contains("\"ok\":false,\"error\":\"bad input\""));
    }
}
