//! Typed engine responses and their JSON-lines rendering.

use crate::cache::CacheStats;
use crate::json::{self, ObjectBuilder};

/// Compact, owned summary of a non-duality witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessSummary {
    /// A new transversal of `G` missing from `H` (as sorted vertex indices).
    NewTransversalOfG(Vec<usize>),
    /// A new transversal of `H` missing from `G`.
    NewTransversalOfH(Vec<usize>),
    /// A disjoint edge pair — one edge of `G` and one edge of `H` that do not
    /// intersect (rendered as the edges themselves, not positional indices,
    /// so the witness stays valid for any edge ordering of the same
    /// instance).
    DisjointEdges {
        /// The `G`-edge (sorted vertex indices).
        g_edge: Vec<usize>,
        /// The `H`-edge (sorted vertex indices).
        h_edge: Vec<usize>,
    },
}

/// Outcome of an `IdentifyItemsetBorders` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BordersOutcome {
    /// The given borders are complete.
    Complete,
    /// A maximal frequent itemset missing from the given `H`.
    NewMaximalFrequent(Vec<usize>),
    /// A minimal infrequent itemset missing from the given `G`.
    NewMinimalInfrequent(Vec<usize>),
    /// A claimed maximal frequent itemset is not maximal frequent.
    InvalidMaximalFrequent(Vec<usize>),
    /// A claimed minimal infrequent itemset is not minimal infrequent.
    InvalidMinimalInfrequent(Vec<usize>),
}

/// The successful result payload of a request, by kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Result of `DecideDuality`.
    Duality {
        /// Whether the two hypergraphs are dual.
        dual: bool,
        /// A checkable witness when they are not.
        witness: Option<WitnessSummary>,
    },
    /// Result of `EnumerateTransversals`.
    Transversals {
        /// The minimal transversals found, canonically ordered.
        transversals: Vec<Vec<usize>>,
        /// Whether the enumeration is complete (`false` iff cut off by `limit`).
        complete: bool,
    },
    /// Result of `IdentifyItemsetBorders`.
    Borders(BordersOutcome),
    /// Result of `MineBorders` (the full server-side `dualize_and_advance`
    /// loop): both complete borders — or the partial borders accumulated up
    /// to a cancellation/quota stop (`complete: false`).
    FullBorders {
        /// `IS⁺(M, z)`: the maximal frequent itemsets, canonically ordered.
        maximal_frequent: Vec<Vec<usize>>,
        /// `IS⁻(M, z)`: the minimal infrequent itemsets, canonically ordered.
        minimal_infrequent: Vec<Vec<usize>>,
        /// Identification (duality) checks the loop ran.
        identification_calls: u64,
        /// Whether the loop reached completion (`false` iff halted early).
        complete: bool,
    },
    /// Result of a `cancel id=N` wire request: whether the target was still
    /// in flight (and has now been asked to stop).
    Cancel {
        /// The session sequence number the cancel targeted.
        target: u64,
        /// `true` iff the target was found in flight and its cancellation
        /// flag was raised; `false` when it had already finished (or never
        /// existed).
        cancelled: bool,
    },
    /// Result of `FindMinimalKeys`.
    Keys {
        /// All minimal keys, canonically ordered.
        keys: Vec<Vec<usize>>,
        /// Number of duality calls the enumeration needed.
        duality_calls: usize,
    },
    /// Result of the `stats` wire request: a snapshot of the engine counters.
    Stats {
        /// Result-cache counters at the time of the request.
        cache: CacheStats,
        /// Number of worker threads in the shared pool.
        workers: usize,
        /// Wire-protocol version served by this engine
        /// ([`crate::wire::PROTOCOL_VERSION`]).
        protocol: u32,
        /// Milliseconds since the engine (daemon) was constructed.
        uptime_ms: u64,
        /// Whether the engine restored entries from a cache snapshot at
        /// startup (`--cache-file`).
        cache_restored: bool,
        /// Jobs admitted to the worker pool but not yet answered (queued +
        /// running), excluding the `stats` probe itself.  The load signal a
        /// fleet router's least-loaded shard policy reads.
        inflight: u64,
        /// Serve sessions currently connected to the engine.
        sessions: u64,
        /// Transport connections currently open (readiness-loop and
        /// thread-per-session alike).  Tracks `sessions` closely but counts
        /// at the accept/close boundary, so the C10k soak can assert bounded
        /// connection state.
        connections: u64,
        /// Requests rejected at admission by the per-user token bucket
        /// (`auth=` + `--user-rate`/`--user-burst`) since the engine started.
        throttled: u64,
        /// Intra-query subtasks spawned since startup: how often large
        /// duality calls split across the pool (`--parallel-threshold`).
        subtasks: u64,
        /// Subtasks picked up by a worker other than the query's owner.  The
        /// remainder ran inline on the owning worker — always the case on a
        /// single-worker pool.
        subtasks_stolen: u64,
        /// Coalesced flights led since startup: cache misses that executed
        /// with the single-flight layer engaged (each could have absorbed
        /// duplicates).
        flights: u64,
        /// Duplicate requests that attached to an in-flight execution as
        /// followers instead of running the solver (single-flight wins).
        coalesced: u64,
    },
}

/// Machine-readable failure class, rendered as the `code` field of JSON error
/// responses (see `docs/WIRE.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line could not be parsed; nothing was executed.
    Parse,
    /// The request parsed but the solvers rejected or failed on it.
    Execute,
    /// The engine itself failed (e.g. a worker panicked mid-request).
    Internal,
    /// The request was cancelled before it produced any (partial) result.
    Cancelled,
    /// The request was rejected at admission by a per-session quota
    /// (`--max-inflight`) or by its user's token bucket (`auth=` +
    /// `--user-rate`/`--user-burst`).
    Quota,
}

impl ErrorCode {
    /// The wire name of this code.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Execute => "execute",
            ErrorCode::Internal => "internal",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Quota => "quota",
        }
    }
}

/// A failed request: a failure class plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    /// The failure class.
    pub code: ErrorCode,
    /// What went wrong, for humans.
    pub message: String,
}

impl EngineError {
    /// A parse-stage failure.
    pub fn parse(message: impl Into<String>) -> Self {
        EngineError {
            code: ErrorCode::Parse,
            message: message.into(),
        }
    }

    /// An execution-stage failure.
    pub fn execute(message: impl Into<String>) -> Self {
        EngineError {
            code: ErrorCode::Execute,
            message: message.into(),
        }
    }

    /// An engine-internal failure.
    pub fn internal(message: impl Into<String>) -> Self {
        EngineError {
            code: ErrorCode::Internal,
            message: message.into(),
        }
    }

    /// A cancellation that pre-empted execution entirely.
    pub fn cancelled(message: impl Into<String>) -> Self {
        EngineError {
            code: ErrorCode::Cancelled,
            message: message.into(),
        }
    }

    /// A per-session quota rejection.
    pub fn quota(message: impl Into<String>) -> Self {
        EngineError {
            code: ErrorCode::Quota,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Per-request execution statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RequestStats {
    /// Wall time spent answering the request, in microseconds.
    pub micros: u128,
    /// Peak metered work-tape bits across the quadratic-logspace solver calls
    /// made for this request (0 when only unmetered solvers ran).
    pub peak_bits: u64,
    /// Name of the solver (or solvers) that handled the duality calls.
    pub solver: String,
    /// Number of `DUAL` decisions the request needed.
    pub duality_calls: u64,
    /// Whether the answer came from the engine's result cache.
    pub cache_hit: bool,
    /// Index of the worker shard that executed the request.
    pub worker: usize,
}

/// One answered request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request's sequence number within its batch or serve session
    /// (per-connection for socket sessions).
    pub id: u64,
    /// The caller-supplied correlation token (`id=` wire keyword), echoed
    /// verbatim.
    pub client_id: Option<String>,
    /// The result payload, or the failure.
    pub outcome: Result<Outcome, EngineError>,
    /// Why the job stopped before its natural end, if it did (a wire
    /// `cancel`, a vanished stream consumer, or the session's `--max-items`
    /// quota).  Rendered as the `halted` JSON field; the outcome then holds
    /// the partial result (`complete: false`) and is never cached.
    pub halted: Option<crate::stream::StopReason>,
    /// `Some(k)` iff the request streamed: `k` chunk frames preceded this
    /// terminal response, which is rendered as the `done` frame.
    pub chunks: Option<u64>,
    /// Execution statistics.
    pub stats: RequestStats,
}

impl Response {
    /// Whether the request was answered successfully.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// Renders the response as one JSON line (without trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut o = ObjectBuilder::new();
        o.uint("id", self.id as u128);
        if let Some(cid) = &self.client_id {
            o.str("client_id", cid);
        }
        if let Some(chunks) = self.chunks {
            // Terminal frame of a streamed request: marked so clients can
            // tell it apart from the request's chunk frames.
            o.str("frame", "done");
            o.uint("chunks", chunks as u128);
        }
        if let Some(reason) = self.halted {
            o.str("halted", reason.as_str());
        }
        match &self.outcome {
            Err(error) => {
                o.bool("ok", false);
                o.str("code", error.code.as_str());
                o.str("error", &error.message);
            }
            Ok(outcome) => {
                o.bool("ok", true);
                match outcome {
                    Outcome::Duality { dual, witness } => {
                        o.str("kind", "check");
                        o.bool("dual", *dual);
                        if let Some(w) = witness {
                            let mut wo = ObjectBuilder::new();
                            match w {
                                WitnessSummary::NewTransversalOfG(t) => {
                                    wo.str("type", "new_transversal_of_g");
                                    wo.raw("transversal", &json::index_array(t));
                                }
                                WitnessSummary::NewTransversalOfH(t) => {
                                    wo.str("type", "new_transversal_of_h");
                                    wo.raw("transversal", &json::index_array(t));
                                }
                                WitnessSummary::DisjointEdges { g_edge, h_edge } => {
                                    wo.str("type", "disjoint_edges");
                                    wo.raw("g_edge", &json::index_array(g_edge));
                                    wo.raw("h_edge", &json::index_array(h_edge));
                                }
                            }
                            o.raw("witness", &wo.build());
                        }
                    }
                    Outcome::Transversals {
                        transversals,
                        complete,
                    } => {
                        o.str("kind", "enumerate");
                        o.bool("complete", *complete);
                        o.uint("count", transversals.len() as u128);
                        o.raw("transversals", &json::index_matrix(transversals));
                    }
                    Outcome::Borders(b) => {
                        o.str("kind", "mine");
                        match b {
                            BordersOutcome::Complete => {
                                o.str("status", "complete");
                            }
                            BordersOutcome::NewMaximalFrequent(s) => {
                                o.str("status", "incomplete");
                                o.str("new_border", "maximal_frequent");
                                o.raw("itemset", &json::index_array(s));
                            }
                            BordersOutcome::NewMinimalInfrequent(s) => {
                                o.str("status", "incomplete");
                                o.str("new_border", "minimal_infrequent");
                                o.raw("itemset", &json::index_array(s));
                            }
                            BordersOutcome::InvalidMaximalFrequent(s) => {
                                o.str("status", "invalid");
                                o.str("invalid_border", "maximal_frequent");
                                o.raw("itemset", &json::index_array(s));
                            }
                            BordersOutcome::InvalidMinimalInfrequent(s) => {
                                o.str("status", "invalid");
                                o.str("invalid_border", "minimal_infrequent");
                                o.raw("itemset", &json::index_array(s));
                            }
                        }
                    }
                    Outcome::FullBorders {
                        maximal_frequent,
                        minimal_infrequent,
                        identification_calls,
                        complete,
                    } => {
                        o.str("kind", "mine_full");
                        o.bool("complete", *complete);
                        o.uint("identification_calls", *identification_calls as u128);
                        o.uint("count_maximal", maximal_frequent.len() as u128);
                        o.uint("count_minimal", minimal_infrequent.len() as u128);
                        o.raw("maximal_frequent", &json::index_matrix(maximal_frequent));
                        o.raw(
                            "minimal_infrequent",
                            &json::index_matrix(minimal_infrequent),
                        );
                    }
                    Outcome::Cancel { target, cancelled } => {
                        o.str("kind", "cancel");
                        o.uint("target", *target as u128);
                        o.bool("cancelled", *cancelled);
                    }
                    Outcome::Keys {
                        keys,
                        duality_calls,
                    } => {
                        o.str("kind", "keys");
                        o.uint("count", keys.len() as u128);
                        o.raw("keys", &json::index_matrix(keys));
                        o.uint("duality_calls", *duality_calls as u128);
                    }
                    Outcome::Stats {
                        cache,
                        workers,
                        protocol,
                        uptime_ms,
                        cache_restored,
                        inflight,
                        sessions,
                        connections,
                        throttled,
                        subtasks,
                        subtasks_stolen,
                        flights,
                        coalesced,
                    } => {
                        o.str("kind", "stats");
                        o.uint("proto", *protocol as u128);
                        o.uint("workers", *workers as u128);
                        o.uint("uptime_ms", *uptime_ms as u128);
                        o.bool("cache_restored", *cache_restored);
                        o.uint("inflight", *inflight as u128);
                        o.uint("sessions", *sessions as u128);
                        o.uint("connections", *connections as u128);
                        o.uint("throttled", *throttled as u128);
                        o.uint("subtasks", *subtasks as u128);
                        o.uint("subtasks_stolen", *subtasks_stolen as u128);
                        o.uint("flights", *flights as u128);
                        o.uint("coalesced", *coalesced as u128);
                        let mut co = ObjectBuilder::new();
                        co.uint("hits", cache.hits as u128)
                            .uint("misses", cache.misses as u128)
                            .uint("entries", cache.entries as u128)
                            .uint("evictions", cache.evictions as u128)
                            .uint("expirations", cache.expirations as u128)
                            .uint("capacity", cache.capacity as u128);
                        o.raw("cache", &co.build());
                    }
                }
            }
        }
        let mut stats = ObjectBuilder::new();
        stats
            .uint("micros", self.stats.micros)
            .uint("peak_bits", self.stats.peak_bits as u128)
            .str("solver", &self.stats.solver)
            .uint("duality_calls", self.stats.duality_calls as u128)
            .bool("cache_hit", self.stats.cache_hit)
            .uint("worker", self.stats.worker as u128);
        o.raw("stats", &stats.build());
        o.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_have_expected_shape() {
        let resp = Response {
            id: 3,
            client_id: None,
            outcome: Ok(Outcome::Duality {
                dual: false,
                witness: Some(WitnessSummary::NewTransversalOfG(vec![0, 2])),
            }),
            halted: None,
            chunks: None,
            stats: RequestStats {
                micros: 17,
                peak_bits: 42,
                solver: "quadlog-chain".into(),
                duality_calls: 1,
                cache_hit: false,
                worker: 1,
            },
        };
        let line = resp.to_json_line();
        assert!(line.starts_with("{\"id\":3,\"ok\":true,\"kind\":\"check\",\"dual\":false"));
        assert!(
            line.contains("\"witness\":{\"type\":\"new_transversal_of_g\",\"transversal\":[0,2]}")
        );
        assert!(
            line.contains("\"stats\":{\"micros\":17,\"peak_bits\":42,\"solver\":\"quadlog-chain\"")
        );

        let err = Response {
            id: 4,
            client_id: Some("req-7".into()),
            outcome: Err(EngineError::parse("bad input")),
            halted: None,
            chunks: None,
            stats: RequestStats::default(),
        };
        let line = err.to_json_line();
        assert!(line.contains("\"client_id\":\"req-7\""));
        assert!(line.contains("\"ok\":false,\"code\":\"parse\",\"error\":\"bad input\""));
    }

    #[test]
    fn done_frames_carry_frame_chunks_and_halt_fields() {
        let resp = Response {
            id: 2,
            client_id: Some("s1".into()),
            outcome: Ok(Outcome::Transversals {
                transversals: vec![vec![0], vec![1]],
                complete: false,
            }),
            halted: Some(crate::stream::StopReason::Cancelled),
            chunks: Some(2),
            stats: RequestStats::default(),
        };
        let line = resp.to_json_line();
        assert!(line.starts_with(
            "{\"id\":2,\"client_id\":\"s1\",\"frame\":\"done\",\"chunks\":2,\
             \"halted\":\"cancelled\",\"ok\":true"
        ));
        assert!(line.contains("\"complete\":false"));
    }

    #[test]
    fn full_borders_and_cancel_outcomes_render() {
        let resp = Response {
            id: 0,
            client_id: None,
            outcome: Ok(Outcome::FullBorders {
                maximal_frequent: vec![vec![0, 1]],
                minimal_infrequent: vec![vec![2], vec![]],
                identification_calls: 4,
                complete: true,
            }),
            halted: None,
            chunks: None,
            stats: RequestStats::default(),
        };
        let line = resp.to_json_line();
        assert!(line.contains("\"kind\":\"mine_full\""));
        assert!(line.contains("\"identification_calls\":4"));
        assert!(line.contains("\"count_maximal\":1,\"count_minimal\":2"));
        assert!(line.contains("\"maximal_frequent\":[[0,1]]"));
        assert!(line.contains("\"minimal_infrequent\":[[2],[]]"));

        let resp = Response {
            id: 5,
            client_id: None,
            outcome: Ok(Outcome::Cancel {
                target: 3,
                cancelled: true,
            }),
            halted: None,
            chunks: None,
            stats: RequestStats::default(),
        };
        let line = resp.to_json_line();
        assert!(line.contains("\"kind\":\"cancel\",\"target\":3,\"cancelled\":true"));
    }

    #[test]
    fn stats_responses_render_cache_counters() {
        let resp = Response {
            id: 0,
            client_id: None,
            outcome: Ok(Outcome::Stats {
                cache: CacheStats {
                    hits: 5,
                    misses: 7,
                    entries: 2,
                    evictions: 1,
                    expirations: 0,
                    capacity: 64,
                },
                workers: 4,
                protocol: crate::wire::PROTOCOL_VERSION,
                uptime_ms: 1234,
                cache_restored: true,
                inflight: 3,
                sessions: 2,
                connections: 6,
                throttled: 9,
                subtasks: 12,
                subtasks_stolen: 8,
                flights: 4,
                coalesced: 11,
            }),
            halted: None,
            chunks: None,
            stats: RequestStats::default(),
        };
        let line = resp.to_json_line();
        assert!(line.contains("\"kind\":\"stats\""));
        assert!(line.contains("\"workers\":4"));
        assert!(line.contains("\"uptime_ms\":1234"));
        assert!(line.contains("\"cache_restored\":true"));
        assert!(line.contains("\"inflight\":3"));
        assert!(line.contains("\"sessions\":2"));
        assert!(line.contains("\"connections\":6"));
        assert!(line.contains("\"throttled\":9"));
        assert!(line.contains("\"subtasks\":12"));
        assert!(line.contains("\"subtasks_stolen\":8"));
        assert!(line.contains("\"flights\":4"));
        assert!(line.contains("\"coalesced\":11"));
        assert!(line.contains(
            "\"cache\":{\"hits\":5,\"misses\":7,\"entries\":2,\"evictions\":1,\
             \"expirations\":0,\"capacity\":64}"
        ));
    }

    #[test]
    fn error_codes_have_stable_names() {
        assert_eq!(ErrorCode::Parse.as_str(), "parse");
        assert_eq!(ErrorCode::Execute.as_str(), "execute");
        assert_eq!(ErrorCode::Internal.as_str(), "internal");
        assert_eq!(ErrorCode::Cancelled.as_str(), "cancelled");
        assert_eq!(ErrorCode::Quota.as_str(), "quota");
        assert_eq!(EngineError::internal("boom").to_string(), "boom");
        assert_eq!(EngineError::cancelled("c").code, ErrorCode::Cancelled);
        assert_eq!(EngineError::quota("q").code, ErrorCode::Quota);
    }
}
