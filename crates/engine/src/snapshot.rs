//! Version-stamped persistence of the result cache (`qld serve --cache-file`).
//!
//! A snapshot is a plain-text file reproducing a [`QueryCache`]'s canonical-key
//! → outcome entries across a daemon restart:
//!
//! ```text
//! qldcache <version> <entry-count> <written-at-unix-ms>
//! <age_ms>\t<key>\t<outcome>\t<solver>\t<peak_bits>\t<duality_calls>
//! ...                                      (exactly <entry-count> lines)
//! ```
//!
//! * The header stamps the snapshot format version ([`SNAPSHOT_VERSION`]), the
//!   exact entry count — a truncated file fails to load rather than silently
//!   restoring a prefix — and the wall-clock write time.
//! * Entries are ordered least-recently-used → most-recently-used, so loading
//!   them in file order reproduces the cache's eviction order, not just its
//!   contents.
//! * `age_ms` is how long before the snapshot the entry was stored.  On load
//!   the entry is backdated by that age **plus** the downtime since the
//!   snapshot was written (from the header's wall clock, clamped at zero
//!   against clock skew), so a configured TTL keeps counting down across the
//!   restart — entries that died while the daemon was down are dropped.
//! * The `key`, `outcome`, and `solver` fields are escaped (`\t`, `\n`, `\r`,
//!   `\\`) so the tab-separated, line-oriented framing is unambiguous for any
//!   content.
//! * `outcome` is a compact text encoding of the cached
//!   [`Outcome`] (or [`EngineError`]), documented in
//!   `docs/WIRE.md` § "Cache snapshots"; index sets reuse the wire protocol's
//!   inline conventions (`,`-separated indices, `;`-separated sets, `.` for
//!   the empty set, `-` for the empty family).
//!
//! Loading is transactional: the whole file is parsed before anything is
//! inserted, so a corrupt or version-mismatched snapshot leaves the cache
//! exactly as it was (the daemon starts cold instead of half-warm).

use crate::cache::{CachedResult, QueryCache, SnapshotEntry};
use crate::ops::ExecInfo;
use crate::response::{BordersOutcome, EngineError, ErrorCode, Outcome, WitnessSummary};
use std::io::{self, BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

/// Version of the snapshot format; bumped on any incompatible change.
/// A snapshot stamped with a different version is rejected at load time.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot failed to load.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The file is not a well-formed snapshot (bad header, wrong version,
    /// truncation, or an undecodable entry).  Nothing was restored.
    Malformed {
        /// 1-based line of the first problem (0 for a missing header).
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot read failed: {e}"),
            SnapshotError::Malformed { line, reason } => {
                write!(f, "malformed cache snapshot (line {line}): {reason}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// What a snapshot load did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreStats {
    /// Entries admitted into the cache.
    pub restored: u64,
    /// Well-formed entries dropped by cache policy (TTL already expired at
    /// load time, or a zero-capacity cache).
    pub dropped: u64,
}

/// Verifies that a snapshot could be written at `path`, without touching an
/// existing snapshot.  `qld serve --cache-file` calls this at startup so a
/// misspelled directory or a permission problem fails fast instead of
/// surfacing only at graceful-shutdown snapshot time (when the cache it was
/// supposed to persist is lost).
///
/// An existing file is probed by opening it for append (no truncation, no
/// write); a missing one by create-and-unlinking a `.probe.<pid>` sibling —
/// never the target path itself, so an ill-timed crash cannot leave an empty
/// file where [`read_snapshot`] would later look for a real snapshot.
pub fn probe_writable(path: impl AsRef<std::path::Path>) -> io::Result<()> {
    let path = path.as_ref();
    match std::fs::OpenOptions::new().append(true).open(path) {
        Ok(_) => return Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let mut probe = path.as_os_str().to_os_string();
    probe.push(format!(".probe.{}", std::process::id()));
    let probe = std::path::PathBuf::from(probe);
    let result = std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&probe)
        .map(|_| ());
    let _ = std::fs::remove_file(&probe);
    result
}

/// Writes a snapshot of `cache`'s live entries to `out`, returning how many
/// entries it contains.  Entries whose outcome cannot be encoded (none exist
/// today — only query results are cached) are skipped rather than poisoning
/// the file.
pub fn write_snapshot(cache: &QueryCache, out: &mut dyn Write) -> io::Result<u64> {
    let mut lines = Vec::new();
    for entry in cache.export_entries() {
        let Some(outcome) = encode_outcome(&entry.result.outcome) else {
            continue;
        };
        lines.push(format!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            entry.age.as_millis(),
            escape(&entry.key),
            escape(&outcome),
            escape(&entry.result.info.solver),
            entry.result.info.peak_bits,
            entry.result.info.duality_calls,
        ));
    }
    let written_at_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis());
    writeln!(
        out,
        "qldcache {} {} {}",
        SNAPSHOT_VERSION,
        lines.len(),
        written_at_ms
    )?;
    for line in &lines {
        writeln!(out, "{line}")?;
    }
    out.flush()?;
    Ok(lines.len() as u64)
}

/// Loads a snapshot from `input` into `cache`.  Transactional: the file is
/// fully parsed before the first entry is inserted, so an error restores
/// nothing.
pub fn read_snapshot(
    cache: &QueryCache,
    input: impl BufRead,
) -> Result<RestoreStats, SnapshotError> {
    let malformed = |line: usize, reason: String| SnapshotError::Malformed { line, reason };
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| malformed(0, "empty file (missing header)".to_string()))??;
    let (expected, written_at_ms) = parse_header(&header).map_err(|reason| malformed(1, reason))?;
    // Downtime between snapshot write and this load, charged against every
    // entry's TTL below (clamped: a clock that moved backwards charges 0).
    let downtime = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .ok()
        .and_then(|now| now.checked_sub(Duration::from_millis(written_at_ms)))
        .unwrap_or(Duration::ZERO);
    let mut entries: Vec<SnapshotEntry> = Vec::with_capacity(expected.min(1 << 16));
    for (index, line) in lines.enumerate() {
        let line = line?;
        if entries.len() == expected {
            return Err(malformed(
                index + 2,
                format!("trailing data after the {expected} declared entries"),
            ));
        }
        let entry = parse_entry(&line).map_err(|reason| malformed(index + 2, reason))?;
        entries.push(entry);
    }
    if entries.len() != expected {
        return Err(malformed(
            entries.len() + 1,
            format!(
                "truncated snapshot: header declares {expected} entries, found {}",
                entries.len()
            ),
        ));
    }
    let mut stats = RestoreStats::default();
    for mut entry in entries {
        entry.age = entry.age.saturating_add(downtime);
        if cache.import_entry(entry) {
            stats.restored += 1;
        } else {
            stats.dropped += 1;
        }
    }
    Ok(stats)
}

/// Parses the `qldcache <version> <count> <written-at-unix-ms>` header,
/// returning the entry count and the write-time wall clock.
fn parse_header(header: &str) -> Result<(usize, u64), String> {
    let mut tokens = header.split_ascii_whitespace();
    if tokens.next() != Some("qldcache") {
        return Err("not a qldcache snapshot".to_string());
    }
    let version: u32 = tokens
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| "missing or invalid version stamp".to_string())?;
    if version != SNAPSHOT_VERSION {
        return Err(format!(
            "snapshot version {version} is not the supported version {SNAPSHOT_VERSION}"
        ));
    }
    let count: usize = tokens
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| "missing or invalid entry count".to_string())?;
    let written_at_ms: u64 = tokens
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| "missing or invalid write timestamp".to_string())?;
    if tokens.next().is_some() {
        return Err("trailing tokens after the header fields".to_string());
    }
    Ok((count, written_at_ms))
}

/// Parses one tab-separated entry line.
fn parse_entry(line: &str) -> Result<SnapshotEntry, String> {
    let fields: Vec<&str> = line.split('\t').collect();
    let [age_ms, key, outcome, solver, peak_bits, duality_calls] = fields.as_slice() else {
        return Err(format!(
            "expected 6 tab-separated fields, got {}",
            fields.len()
        ));
    };
    let age_ms: u64 = age_ms
        .parse()
        .map_err(|_| format!("invalid age `{age_ms}`"))?;
    let key = unescape(key)?;
    if key.is_empty() {
        return Err("empty cache key".to_string());
    }
    let outcome = decode_outcome(&unescape(outcome)?)?;
    let solver = unescape(solver)?;
    let peak_bits: u64 = peak_bits
        .parse()
        .map_err(|_| format!("invalid peak_bits `{peak_bits}`"))?;
    let duality_calls: u64 = duality_calls
        .parse()
        .map_err(|_| format!("invalid duality_calls `{duality_calls}`"))?;
    Ok(SnapshotEntry {
        key,
        age: Duration::from_millis(age_ms),
        result: Arc::new(CachedResult {
            outcome,
            info: ExecInfo {
                solver,
                peak_bits,
                duality_calls,
            },
        }),
    })
}

/// Escapes the framing characters (`\t`, `\n`, `\r`, `\\`) of one field.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`].
fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => return Err(format!("invalid escape `\\{}`", other.unwrap_or(' '))),
        }
    }
    Ok(out)
}

/// `.` for the empty index set, else comma-joined indices.
fn encode_set(xs: &[usize]) -> String {
    if xs.is_empty() {
        ".".to_string()
    } else {
        xs.iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn decode_set(token: &str) -> Result<Vec<usize>, String> {
    if token == "." {
        return Ok(Vec::new());
    }
    token
        .split(',')
        .map(|t| t.parse().map_err(|_| format!("invalid index `{t}`")))
        .collect()
}

/// `-` for the empty family, else `;`-joined [`encode_set`] tokens.
fn encode_family(xss: &[Vec<usize>]) -> String {
    if xss.is_empty() {
        "-".to_string()
    } else {
        xss.iter()
            .map(|xs| encode_set(xs))
            .collect::<Vec<_>>()
            .join(";")
    }
}

fn decode_family(token: &str) -> Result<Vec<Vec<usize>>, String> {
    if token == "-" {
        return Ok(Vec::new());
    }
    token.split(';').map(decode_set).collect()
}

/// Encodes a cached outcome as one space-separated token sequence, or `None`
/// for outcomes that are never cached (`stats` snapshots).
fn encode_outcome(outcome: &Result<Outcome, EngineError>) -> Option<String> {
    Some(match outcome {
        Err(e) => format!("err {} {}", e.code.as_str(), e.message),
        Ok(Outcome::Duality { dual, witness }) => match (dual, witness) {
            (true, _) => "ok check dual".to_string(),
            (false, None) => "ok check nondual none".to_string(),
            (false, Some(WitnessSummary::NewTransversalOfG(t))) => {
                format!("ok check nondual tg {}", encode_set(t))
            }
            (false, Some(WitnessSummary::NewTransversalOfH(t))) => {
                format!("ok check nondual th {}", encode_set(t))
            }
            (false, Some(WitnessSummary::DisjointEdges { g_edge, h_edge })) => {
                format!(
                    "ok check nondual de {} {}",
                    encode_set(g_edge),
                    encode_set(h_edge)
                )
            }
        },
        Ok(Outcome::Transversals {
            transversals,
            complete,
        }) => format!(
            "ok enumerate {} {}",
            u8::from(*complete),
            encode_family(transversals)
        ),
        Ok(Outcome::Borders(b)) => match b {
            BordersOutcome::Complete => "ok mine complete".to_string(),
            BordersOutcome::NewMaximalFrequent(s) => {
                format!("ok mine new-max {}", encode_set(s))
            }
            BordersOutcome::NewMinimalInfrequent(s) => {
                format!("ok mine new-min {}", encode_set(s))
            }
            BordersOutcome::InvalidMaximalFrequent(s) => {
                format!("ok mine invalid-max {}", encode_set(s))
            }
            BordersOutcome::InvalidMinimalInfrequent(s) => {
                format!("ok mine invalid-min {}", encode_set(s))
            }
        },
        Ok(Outcome::FullBorders {
            maximal_frequent,
            minimal_infrequent,
            identification_calls,
            complete,
        }) => format!(
            "ok mine-full {} {} {} {}",
            u8::from(*complete),
            identification_calls,
            encode_family(maximal_frequent),
            encode_family(minimal_infrequent)
        ),
        Ok(Outcome::Keys {
            keys,
            duality_calls,
        }) => format!("ok keys {} {}", duality_calls, encode_family(keys)),
        // Control snapshots (`stats`) and cancel acknowledgements never
        // reach the cache.
        Ok(Outcome::Stats { .. }) | Ok(Outcome::Cancel { .. }) => return None,
    })
}

/// Inverse of [`encode_outcome`].
fn decode_outcome(text: &str) -> Result<Result<Outcome, EngineError>, String> {
    let (status, rest) = text
        .split_once(' ')
        .ok_or_else(|| format!("truncated outcome `{text}`"))?;
    match status {
        "err" => {
            let (code, message) = rest
                .split_once(' ')
                .ok_or_else(|| format!("truncated error outcome `{text}`"))?;
            let code = match code {
                "parse" => ErrorCode::Parse,
                "execute" => ErrorCode::Execute,
                "internal" => ErrorCode::Internal,
                "cancelled" => ErrorCode::Cancelled,
                "quota" => ErrorCode::Quota,
                other => return Err(format!("unknown error code `{other}`")),
            };
            Ok(Err(EngineError {
                code,
                message: message.to_string(),
            }))
        }
        "ok" => decode_ok_outcome(rest).map(Ok),
        other => Err(format!("unknown outcome status `{other}`")),
    }
}

fn decode_ok_outcome(rest: &str) -> Result<Outcome, String> {
    let mut tokens = rest.split(' ');
    let mut next = |what: &str| {
        tokens
            .next()
            .ok_or_else(|| format!("missing {what} in outcome `{rest}`"))
    };
    let kind = next("kind")?;
    let outcome = match kind {
        "check" => match next("duality tag")? {
            "dual" => Outcome::Duality {
                dual: true,
                witness: None,
            },
            "nondual" => {
                let witness = match next("witness tag")? {
                    "none" => None,
                    "tg" => Some(WitnessSummary::NewTransversalOfG(decode_set(next(
                        "witness set",
                    )?)?)),
                    "th" => Some(WitnessSummary::NewTransversalOfH(decode_set(next(
                        "witness set",
                    )?)?)),
                    "de" => Some(WitnessSummary::DisjointEdges {
                        g_edge: decode_set(next("g edge")?)?,
                        h_edge: decode_set(next("h edge")?)?,
                    }),
                    other => return Err(format!("unknown witness tag `{other}`")),
                };
                Outcome::Duality {
                    dual: false,
                    witness,
                }
            }
            other => return Err(format!("unknown duality tag `{other}`")),
        },
        "enumerate" => {
            let complete = match next("completeness bit")? {
                "0" => false,
                "1" => true,
                other => return Err(format!("invalid completeness bit `{other}`")),
            };
            Outcome::Transversals {
                transversals: decode_family(next("transversal family")?)?,
                complete,
            }
        }
        "mine" => Outcome::Borders(match next("borders tag")? {
            "complete" => BordersOutcome::Complete,
            "new-max" => BordersOutcome::NewMaximalFrequent(decode_set(next("itemset")?)?),
            "new-min" => BordersOutcome::NewMinimalInfrequent(decode_set(next("itemset")?)?),
            "invalid-max" => BordersOutcome::InvalidMaximalFrequent(decode_set(next("itemset")?)?),
            "invalid-min" => {
                BordersOutcome::InvalidMinimalInfrequent(decode_set(next("itemset")?)?)
            }
            other => return Err(format!("unknown borders tag `{other}`")),
        }),
        "mine-full" => {
            let complete = match next("completeness bit")? {
                "0" => false,
                "1" => true,
                other => return Err(format!("invalid completeness bit `{other}`")),
            };
            let identification_calls: u64 = next("identification calls")?
                .parse()
                .map_err(|_| "invalid identification-call count".to_string())?;
            Outcome::FullBorders {
                maximal_frequent: decode_family(next("maximal border")?)?,
                minimal_infrequent: decode_family(next("minimal border")?)?,
                identification_calls,
                complete,
            }
        }
        "keys" => {
            let duality_calls: usize = next("duality calls")?
                .parse()
                .map_err(|_| "invalid duality-call count".to_string())?;
            Outcome::Keys {
                keys: decode_family(next("key family")?)?,
                duality_calls,
            }
        }
        other => return Err(format!("unknown outcome kind `{other}`")),
    };
    if let Some(extra) = tokens.next() {
        return Err(format!("trailing token `{extra}` in outcome `{rest}`"));
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedResult;

    #[test]
    fn probe_writable_accepts_missing_and_existing_files() {
        let dir = std::env::temp_dir();
        let fresh = dir.join(format!("qld-probe-fresh-{}.snap", std::process::id()));
        let _ = std::fs::remove_file(&fresh);
        probe_writable(&fresh).expect("fresh path in a writable directory");
        assert!(!fresh.exists(), "the probe must not create the target");

        let existing = dir.join(format!("qld-probe-existing-{}.snap", std::process::id()));
        std::fs::write(&existing, "qldcache 1 0 0\n").unwrap();
        probe_writable(&existing).expect("existing writable file");
        assert_eq!(
            std::fs::read_to_string(&existing).unwrap(),
            "qldcache 1 0 0\n",
            "probing must not modify an existing snapshot"
        );
        let _ = std::fs::remove_file(&existing);
    }

    #[test]
    fn probe_writable_rejects_an_unwritable_location() {
        let missing_dir = std::env::temp_dir()
            .join(format!("qld-no-such-dir-{}", std::process::id()))
            .join("cache.snap");
        assert!(probe_writable(&missing_dir).is_err());
    }

    fn cached(outcome: Result<Outcome, EngineError>) -> CachedResult {
        CachedResult {
            outcome,
            info: ExecInfo {
                solver: "bm-tree".into(),
                peak_bits: 12,
                duality_calls: 3,
            },
        }
    }

    fn all_outcomes() -> Vec<Result<Outcome, EngineError>> {
        vec![
            Ok(Outcome::Duality {
                dual: true,
                witness: None,
            }),
            Ok(Outcome::Duality {
                dual: false,
                witness: Some(WitnessSummary::NewTransversalOfG(vec![0, 2])),
            }),
            Ok(Outcome::Duality {
                dual: false,
                witness: Some(WitnessSummary::NewTransversalOfH(vec![])),
            }),
            Ok(Outcome::Duality {
                dual: false,
                witness: Some(WitnessSummary::DisjointEdges {
                    g_edge: vec![0, 1],
                    h_edge: vec![2],
                }),
            }),
            Ok(Outcome::Transversals {
                transversals: vec![vec![0], vec![1, 2], vec![]],
                complete: false,
            }),
            Ok(Outcome::Transversals {
                transversals: vec![],
                complete: true,
            }),
            Ok(Outcome::Borders(BordersOutcome::Complete)),
            Ok(Outcome::Borders(BordersOutcome::NewMaximalFrequent(vec![
                1, 3,
            ]))),
            Ok(Outcome::Borders(BordersOutcome::NewMinimalInfrequent(
                vec![],
            ))),
            Ok(Outcome::Borders(BordersOutcome::InvalidMaximalFrequent(
                vec![2],
            ))),
            Ok(Outcome::Borders(BordersOutcome::InvalidMinimalInfrequent(
                vec![0, 1, 2],
            ))),
            Ok(Outcome::FullBorders {
                maximal_frequent: vec![vec![0, 1], vec![2]],
                minimal_infrequent: vec![vec![0, 2], vec![]],
                identification_calls: 5,
                complete: true,
            }),
            Ok(Outcome::FullBorders {
                maximal_frequent: vec![],
                minimal_infrequent: vec![],
                identification_calls: 1,
                complete: false,
            }),
            Ok(Outcome::Keys {
                keys: vec![vec![0, 1], vec![2]],
                duality_calls: 4,
            }),
            Err(EngineError::execute("border family `g` mentions item 9")),
            Err(EngineError::internal("worker panicked: tab\there")),
        ]
    }

    #[test]
    fn every_cacheable_outcome_round_trips() {
        for outcome in all_outcomes() {
            let encoded = encode_outcome(&outcome).expect("cacheable outcome");
            let decoded = decode_outcome(&encoded).unwrap_or_else(|e| {
                panic!("`{encoded}` failed to decode: {e}");
            });
            assert_eq!(decoded, outcome, "`{encoded}`");
        }
    }

    #[test]
    fn control_outcomes_are_never_written() {
        let outcome = Ok(Outcome::Stats {
            cache: crate::cache::CacheStats::default(),
            workers: 2,
            protocol: 1,
            uptime_ms: 0,
            cache_restored: false,
            inflight: 0,
            sessions: 0,
            connections: 0,
            throttled: 0,
            subtasks: 0,
            subtasks_stolen: 0,
            flights: 0,
            coalesced: 0,
        });
        assert!(encode_outcome(&outcome).is_none());
        let outcome = Ok(Outcome::Cancel {
            target: 3,
            cancelled: true,
        });
        assert!(encode_outcome(&outcome).is_none());
    }

    #[test]
    fn snapshot_file_round_trips_through_a_cache() {
        let cache = QueryCache::with_capacity(16);
        for (i, outcome) in all_outcomes().into_iter().enumerate() {
            cache.insert(format!("check key-{i} with spaces"), cached(outcome));
        }
        let mut file = Vec::new();
        let written = write_snapshot(&cache, &mut file).unwrap();
        assert_eq!(written, 16);

        let restored = QueryCache::with_capacity(16);
        let stats = read_snapshot(&restored, file.as_slice()).unwrap();
        assert_eq!(stats.restored, 16);
        assert_eq!(stats.dropped, 0);
        for (i, outcome) in all_outcomes().into_iter().enumerate() {
            let hit = restored
                .get(&format!("check key-{i} with spaces"))
                .unwrap_or_else(|| panic!("key {i} missing after restore"));
            assert_eq!(hit.outcome, outcome);
            assert_eq!(hit.info.solver, "bm-tree");
            assert_eq!(hit.info.peak_bits, 12);
            assert_eq!(hit.info.duality_calls, 3);
        }
    }

    #[test]
    fn malformed_snapshots_are_rejected_without_restoring_anything() {
        let cases: &[&str] = &[
            "",
            "not-a-snapshot\n",
            "qldcache 99 0 0\n",                              // wrong version
            "qldcache 1\n",                                   // missing count
            "qldcache 1 0\n",                                 // missing timestamp
            "qldcache 1 0 0 extra\n",                         // trailing header token
            "qldcache 1 2 0\n0\tk\tok check dual\t-\t0\t0\n", // truncated
            "qldcache 1 0 0\n0\tk\tok check dual\t-\t0\t0\n", // trailing
            "qldcache 1 1 0\n0\tk\tok check dual\t-\t0\n",    // missing field
            "qldcache 1 1 0\nx\tk\tok check dual\t-\t0\t0\n", // bad age
            "qldcache 1 1 0\n0\tk\tok frobnicate\t-\t0\t0\n", // bad outcome
            "qldcache 1 1 0\n0\tk\tok check dual extra\t-\t0\t0\n", // trailing token
            "qldcache 1 1 0\n0\tk\tok enumerate 2 -\t-\t0\t0\n", // bad bit
            "qldcache 1 1 0\n0\t\tok check dual\t-\t0\t0\n",  // empty key
            "qldcache 1 1 0\n0\tk\\q\tok check dual\t-\t0\t0\n", // bad escape
        ];
        for case in cases {
            let cache = QueryCache::with_capacity(8);
            let result = read_snapshot(&cache, case.as_bytes());
            assert!(result.is_err(), "accepted: {case:?}");
            assert_eq!(cache.stats().entries, 0, "partial restore from {case:?}");
        }
    }

    #[test]
    fn escaping_round_trips_framing_characters() {
        for s in ["plain", "tab\there", "line\nbreak", "back\\slash\r", ""] {
            assert_eq!(unescape(&escape(s)).unwrap(), s, "{s:?}");
            assert!(!escape(s).contains(['\t', '\n', '\r']), "{s:?}");
        }
        assert!(unescape("dangling\\").is_err());
    }
}
