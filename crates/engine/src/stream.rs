//! The streaming job pipeline's shared vocabulary: typed chunks, the
//! [`ResultSink`] yield interface, cooperative [`CancelToken`]s, and the
//! frames a streaming session emits.
//!
//! Both of the engine's long-running ops are *incremental* algorithms —
//! transversal enumeration produces one minimal transversal per duality call
//! (Propositions 1.1–1.3), and full-border identification advances one border
//! element per identification check (`dualize_and_advance`) — so a job is not
//! a black box between submission and answer: it **yields**.  Each yield goes
//! through a [`ResultSink`], which
//!
//! * forwards the element to the client as a [`ChunkFrame`] when the request
//!   asked for streaming (`stream=` wire keyword, `qld enumerate --stream`);
//! * counts it against the session's item quota (`--max-items`);
//! * reports whether the job should keep going — the yield boundary is where
//!   cooperative **cancellation** (`cancel id=N`, a dropped stream consumer,
//!   an aborted session) takes effect.
//!
//! One-shot requests run through the trivial sink ([`NullSink`] semantics:
//! nothing is forwarded, nothing stops the job), so their behaviour —
//! response shape, cache entries, determinism — is exactly what it was before
//! streaming existed.  The wire-level framing is specified in `docs/WIRE.md`
//! (protocol version 2); the lifecycle diagram lives in
//! `docs/ARCHITECTURE.md` § "Streaming & cancellation".

use crate::json::{self, ObjectBuilder};
use crate::response::Response;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How often the streaming ops emit a [`StreamProgress`] checkpoint: one
/// progress chunk per this many yielded items.
pub const PROGRESS_EVERY_ITEMS: u64 = 16;

/// A cooperative cancellation switch shared between a running job and
/// whoever may stop it (a `cancel id=N` wire request, the CLI's Ctrl-C
/// handler, or the session teardown path).  Cancellation is **cooperative**:
/// the job observes the flag at its next yield boundary and stops there —
/// nothing is interrupted mid-duality-call.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag.  Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a job stopped before reaching its natural end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The job was cancelled (wire `cancel`, Ctrl-C, or a vanished consumer).
    Cancelled,
    /// The session's `--max-items` quota was exhausted.
    ItemQuota,
}

impl StopReason {
    /// The wire name rendered as the `halted` response field.
    pub fn as_str(&self) -> &'static str {
        match self {
            StopReason::Cancelled => "cancelled",
            StopReason::ItemQuota => "max-items",
        }
    }
}

/// What a [`ResultSink`] tells the running op after a yield.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkDirective {
    /// Keep going.
    Continue,
    /// Stop at this yield boundary; the reason is surfaced on the terminal
    /// response (`halted` field) and suppresses caching of the partial
    /// result.
    Stop(StopReason),
}

/// One streamed result element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamItem {
    /// A minimal transversal, as sorted vertex indices (`enumerate`).
    Transversal(Vec<usize>),
    /// A border advancement of the full identification loop (`mine … full=`).
    BorderElement {
        /// `true` for a maximal frequent itemset, `false` for a minimal
        /// infrequent one.
        maximal: bool,
        /// The itemset, as sorted item indices.
        itemset: Vec<usize>,
    },
}

/// A telemetry checkpoint emitted between items (every
/// [`PROGRESS_EVERY_ITEMS`] yields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamProgress {
    /// Items yielded so far.
    pub items: u64,
    /// `DUAL` decisions made so far.
    pub duality_calls: u64,
}

/// Where a running op yields.  Implementations decide whether elements are
/// forwarded (streaming) or merely counted (one-shot), and both [`item`]
/// and [`check`] report whether the job should stop.
///
/// [`item`]: ResultSink::item
/// [`check`]: ResultSink::check
pub trait ResultSink {
    /// Yields one result element.  The element is always part of the job's
    /// terminal result, even when the directive says stop.
    fn item(&mut self, item: StreamItem) -> SinkDirective;

    /// Emits a telemetry checkpoint (dropped by non-streaming sinks).
    fn progress(&mut self, progress: StreamProgress);

    /// Polls for cancellation/quota at a yield boundary that produced no
    /// item (e.g. before a duality call).
    fn check(&self) -> SinkDirective;
}

/// The trivial sink: discards everything, never stops the job.  One-shot
/// execution paths that predate streaming ([`crate::ops::execute`],
/// [`crate::engine::Engine::run_batch`]) run through it unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ResultSink for NullSink {
    fn item(&mut self, _item: StreamItem) -> SinkDirective {
        SinkDirective::Continue
    }
    fn progress(&mut self, _progress: StreamProgress) {}
    fn check(&self) -> SinkDirective {
        SinkDirective::Continue
    }
}

/// The payload of one chunk frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkPayload {
    /// A result element.
    Item(StreamItem),
    /// A telemetry checkpoint.
    Progress(StreamProgress),
}

/// One streamed response frame: a piece of an in-flight request's answer,
/// correlated by the request's session `id` and ordered by the per-request
/// chunk sequence number `seq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkFrame {
    /// The request's sequence number within its session (same space as the
    /// terminal response's `id`).
    pub id: u64,
    /// The caller-supplied correlation token, echoed on every frame.
    pub client_id: Option<String>,
    /// Position of this chunk within the request's stream, starting at 0.
    pub seq: u64,
    /// The request kind (`enumerate`, `mine_full`).
    pub kind: &'static str,
    /// What the chunk carries.
    pub payload: ChunkPayload,
}

impl ChunkFrame {
    /// Renders the chunk as one JSON line (without trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut o = ObjectBuilder::new();
        o.uint("id", self.id as u128);
        if let Some(cid) = &self.client_id {
            o.str("client_id", cid);
        }
        o.str("frame", "chunk");
        o.uint("seq", self.seq as u128);
        o.str("kind", self.kind);
        match &self.payload {
            ChunkPayload::Item(item) => {
                let mut io = ObjectBuilder::new();
                match item {
                    StreamItem::Transversal(t) => {
                        io.raw("transversal", &json::index_array(t));
                    }
                    StreamItem::BorderElement { maximal, itemset } => {
                        io.str(
                            "new_border",
                            if *maximal {
                                "maximal_frequent"
                            } else {
                                "minimal_infrequent"
                            },
                        );
                        io.raw("itemset", &json::index_array(itemset));
                    }
                }
                o.raw("item", &io.build());
            }
            ChunkPayload::Progress(p) => {
                let mut po = ObjectBuilder::new();
                po.uint("items", p.items as u128)
                    .uint("duality_calls", p.duality_calls as u128);
                o.raw("progress", &po.build());
            }
        }
        o.build()
    }
}

/// One delivery from the worker pool to a session or stream consumer: a
/// mid-stream chunk or the terminal response.
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// A mid-stream frame of an in-flight request.
    Chunk(ChunkFrame),
    /// The request's terminal response (rendered with `frame:"done"` when
    /// the request streamed).
    Done(Response),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_tokens_share_state_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        clone.cancel(); // idempotent
        assert!(token.is_cancelled());
    }

    #[test]
    fn chunk_frames_render_expected_json() {
        let frame = ChunkFrame {
            id: 4,
            client_id: Some("q1".into()),
            seq: 2,
            kind: "enumerate",
            payload: ChunkPayload::Item(StreamItem::Transversal(vec![0, 3])),
        };
        assert_eq!(
            frame.to_json_line(),
            "{\"id\":4,\"client_id\":\"q1\",\"frame\":\"chunk\",\"seq\":2,\
             \"kind\":\"enumerate\",\"item\":{\"transversal\":[0,3]}}"
        );

        let frame = ChunkFrame {
            id: 0,
            client_id: None,
            seq: 7,
            kind: "mine_full",
            payload: ChunkPayload::Item(StreamItem::BorderElement {
                maximal: false,
                itemset: vec![],
            }),
        };
        let line = frame.to_json_line();
        assert!(line.contains("\"new_border\":\"minimal_infrequent\""));
        assert!(line.contains("\"itemset\":[]"));

        let frame = ChunkFrame {
            id: 1,
            client_id: None,
            seq: 16,
            kind: "enumerate",
            payload: ChunkPayload::Progress(StreamProgress {
                items: 16,
                duality_calls: 16,
            }),
        };
        assert!(frame
            .to_json_line()
            .contains("\"progress\":{\"items\":16,\"duality_calls\":16}"));
    }

    #[test]
    fn null_sink_never_stops() {
        let mut sink = NullSink;
        assert_eq!(
            sink.item(StreamItem::Transversal(vec![1])),
            SinkDirective::Continue
        );
        assert_eq!(sink.check(), SinkDirective::Continue);
        sink.progress(StreamProgress {
            items: 1,
            duality_calls: 1,
        });
    }

    #[test]
    fn stop_reasons_have_stable_names() {
        assert_eq!(StopReason::Cancelled.as_str(), "cancelled");
        assert_eq!(StopReason::ItemQuota.as_str(), "max-items");
    }
}
