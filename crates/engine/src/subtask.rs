//! Intra-query work stealing on the persistent pool.
//!
//! A large query that reaches a split point (the decomposition's independent
//! top-level subtrees, FK-A's self-duality subproblems) fans its work out as
//! **subtasks** pushed onto one engine-wide [`SubtaskQueue`].  Idle workers
//! steal from the queue between jobs; the worker that owns the query runs its
//! own still-queued subtasks inline while it waits at the join, so a split
//! never deadlocks and never costs a thread — the pool stays exactly as large
//! as `--workers` said.
//!
//! Semantics (the engine-side realization of [`qld_core::SubtaskPool`]):
//!
//! * **Bounded scopes** — [`EngineScope::join`] returns only after every
//!   subtask spawned on the scope has run or been skipped; subtasks never
//!   outlive the query that spawned them.
//! * **Cancellation at steal boundaries** — a queued subtask whose query's
//!   [`CancelToken`] has fired is skipped (never started) by whichever thread
//!   pops it; a subtask that already started runs to completion.  Skips
//!   surface to the solver as `None` result slots, which it converts to
//!   [`qld_core::DualError::Interrupted`].
//! * **Panic isolation** — a panic inside a stolen subtask is caught on the
//!   stealing worker (whose loop must survive), recorded on the scope, and
//!   re-raised on the owning worker at join, where the per-job `catch_unwind`
//!   turns it into an `internal` error response exactly as a sequential panic
//!   would have been.

use crate::lock_ignoring_poison;
use crate::stream::CancelToken;
use qld_core::{SubtaskPool, SubtaskScope};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// One queued subtask: the work plus the scope it reports back to.
struct Queued {
    scope: Arc<ScopeState>,
    task: Task,
}

impl Queued {
    /// Runs the subtask — or skips it when its query has been cancelled —
    /// and marks it finished on its scope either way.  Panics are recorded,
    /// not propagated: the caller may be a stolen-work loop on another
    /// worker whose own job must not be poisoned.
    fn execute(self) {
        if !self.scope.cancel.is_cancelled() {
            if let Err(panic) = catch_unwind(AssertUnwindSafe(self.task)) {
                let detail = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                *lock_ignoring_poison(&self.scope.panicked) = Some(detail);
            }
        }
        self.scope.finish_one();
    }
}

/// The engine-wide subtask injection queue, shared by every worker.
///
/// Lifetime counters (`spawned`/`stolen`) feed the `stats` wire response:
/// `subtasks` says how often queries split at all, `subtasks_stolen` how
/// often a *different* worker picked the pieces up — the difference ran
/// inline on the owner (always the case on a single-worker pool).
pub(crate) struct SubtaskQueue {
    inner: Mutex<VecDeque<Queued>>,
    /// Signalled on every subtask push and job submission; idle workers park
    /// here (with a timeout backstop) instead of spinning.
    work: Condvar,
    spawned: AtomicU64,
    stolen: AtomicU64,
}

impl SubtaskQueue {
    pub(crate) fn new() -> Self {
        SubtaskQueue {
            inner: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            spawned: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
        }
    }

    /// Subtasks ever spawned (split points reached × pieces per split).
    pub(crate) fn spawned(&self) -> u64 {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Subtasks executed (or skipped) by a worker other than their owner.
    pub(crate) fn stolen(&self) -> u64 {
        self.stolen.load(Ordering::Relaxed)
    }

    /// Wakes parked workers.  Job submission calls this so a freshly queued
    /// job is picked up immediately instead of at the next poll timeout.
    pub(crate) fn notify_workers(&self) {
        self.work.notify_all();
    }

    fn push(&self, queued: Queued) {
        self.spawned.fetch_add(1, Ordering::Relaxed);
        lock_ignoring_poison(&self.inner).push_back(queued);
        self.work.notify_all();
    }

    /// Pops the oldest queued subtask regardless of owner (the steal path).
    fn steal_one(&self) -> Option<Queued> {
        let queued = lock_ignoring_poison(&self.inner).pop_front()?;
        self.stolen.fetch_add(1, Ordering::Relaxed);
        Some(queued)
    }

    /// Pops one still-queued subtask belonging to `scope` (the owner's
    /// help-while-joining path — not a steal).
    fn pop_for(&self, scope: &Arc<ScopeState>) -> Option<Queued> {
        let mut inner = lock_ignoring_poison(&self.inner);
        let at = inner.iter().position(|q| Arc::ptr_eq(&q.scope, scope))?;
        inner.remove(at)
    }

    /// Steals and runs queued subtasks until the queue is empty.  Called by
    /// workers between jobs; returns how many subtasks were taken.
    pub(crate) fn drain_steal(&self) -> u64 {
        let mut taken = 0;
        while let Some(queued) = self.steal_one() {
            queued.execute();
            taken += 1;
        }
        taken
    }

    /// Parks an idle worker until work may be available.  The timeout is a
    /// backstop against missed notifications; callers re-check on return.
    pub(crate) fn wait_for_work(&self, timeout: Duration) {
        let inner = lock_ignoring_poison(&self.inner);
        if inner.is_empty() {
            let _ = self
                .work
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// Join-side bookkeeping of one scope, shared between the owning worker and
/// every stealer that picked one of its subtasks up.
struct ScopeState {
    /// The owning query's cancellation flag (skips queued subtasks).
    cancel: CancelToken,
    /// Subtasks spawned and not yet finished or skipped.
    outstanding: Mutex<usize>,
    done: Condvar,
    /// First panic captured from a subtask, re-raised at join.
    panicked: Mutex<Option<String>>,
}

impl ScopeState {
    fn new(cancel: CancelToken) -> Self {
        ScopeState {
            cancel,
            outstanding: Mutex::new(0),
            done: Condvar::new(),
            panicked: Mutex::new(None),
        }
    }

    fn add_one(&self) {
        *lock_ignoring_poison(&self.outstanding) += 1;
    }

    fn finish_one(&self) {
        let mut outstanding = lock_ignoring_poison(&self.outstanding);
        *outstanding -= 1;
        if *outstanding == 0 {
            self.done.notify_all();
        }
    }
}

/// The pool handle one query programs against: every scope it opens injects
/// into the shared queue, and cancellation follows the job's [`CancelToken`].
pub(crate) struct EnginePool {
    queue: Arc<SubtaskQueue>,
    cancel: CancelToken,
}

impl EnginePool {
    pub(crate) fn new(queue: Arc<SubtaskQueue>, cancel: CancelToken) -> Self {
        EnginePool { queue, cancel }
    }
}

impl SubtaskPool for EnginePool {
    fn scope(&self) -> Box<dyn SubtaskScope + '_> {
        Box::new(EngineScope {
            queue: Arc::clone(&self.queue),
            state: Arc::new(ScopeState::new(self.cancel.clone())),
        })
    }

    fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }
}

/// One batch of subtasks on the shared queue.
struct EngineScope {
    queue: Arc<SubtaskQueue>,
    state: Arc<ScopeState>,
}

impl SubtaskScope for EngineScope {
    fn spawn(&mut self, task: Task) {
        self.state.add_one();
        self.queue.push(Queued {
            scope: Arc::clone(&self.state),
            task,
        });
    }

    fn join(&mut self) {
        // Help first: run every subtask of ours that nobody has stolen yet.
        // This is what makes a single-worker pool (and a fully busy pool)
        // equivalent to the sequential solver rather than a deadlock.
        while let Some(queued) = self.queue.pop_for(&self.state) {
            queued.execute();
        }
        // Whatever is still outstanding was claimed by a stealer; a claimed
        // subtask always finishes (or skips) and decrements, so this wait
        // terminates.
        let mut outstanding: MutexGuard<'_, usize> = lock_ignoring_poison(&self.state.outstanding);
        while *outstanding > 0 {
            outstanding = self
                .state
                .done
                .wait(outstanding)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        drop(outstanding);
        if let Some(detail) = lock_ignoring_poison(&self.state.panicked).take() {
            // Re-raise on the owning worker: the per-job catch_unwind in
            // `answer` turns this into an `internal` error response.
            panic!("subtask panicked: {detail}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_core::ParallelContext;
    use std::thread;

    #[test]
    fn owner_drains_its_own_subtasks_without_a_stealer() {
        let queue = Arc::new(SubtaskQueue::new());
        let pool = EnginePool::new(Arc::clone(&queue), CancelToken::new());
        let ctx = ParallelContext::new(Arc::new(pool), 0);
        let results =
            ctx.run::<usize>((0..6usize).map(|i| Box::new(move || i * 10) as _).collect());
        assert_eq!(
            results,
            (0..6usize).map(|i| Some(i * 10)).collect::<Vec<_>>()
        );
        assert_eq!(queue.spawned(), 6);
        assert_eq!(queue.stolen(), 0);
    }

    #[test]
    fn idle_thread_steals_queued_subtasks() {
        let queue = Arc::new(SubtaskQueue::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stealer = {
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut taken = 0;
                while !stop.load(Ordering::Relaxed) {
                    taken += queue.drain_steal();
                    queue.wait_for_work(Duration::from_micros(200));
                }
                taken + queue.drain_steal()
            })
        };
        let pool = EnginePool::new(Arc::clone(&queue), CancelToken::new());
        let ctx = ParallelContext::new(Arc::new(pool), 0);
        let results = ctx.run::<usize>(
            (0..64usize)
                .map(|i| {
                    Box::new(move || {
                        // Slow the owner down so the stealer gets a chance;
                        // correctness must not depend on who wins, though.
                        thread::sleep(Duration::from_micros(100));
                        i + 1
                    }) as _
                })
                .collect(),
        );
        stop.store(true, Ordering::Relaxed);
        let stolen_by_thread = stealer.join().unwrap();
        assert_eq!(
            results,
            (0..64usize).map(|i| Some(i + 1)).collect::<Vec<_>>()
        );
        assert_eq!(queue.spawned(), 64);
        // Every piece ran exactly once, wherever it ran.
        assert_eq!(stolen_by_thread, queue.stolen());
        assert!(queue.stolen() <= 64);
    }

    #[test]
    fn cancelled_scope_skips_queued_subtasks() {
        let queue = Arc::new(SubtaskQueue::new());
        let cancel = CancelToken::new();
        cancel.cancel();
        let pool = EnginePool::new(Arc::clone(&queue), cancel);
        let ctx = ParallelContext::new(Arc::new(pool), 0);
        let results = ctx.run::<usize>((0..4usize).map(|i| Box::new(move || i) as _).collect());
        assert_eq!(results, vec![None, None, None, None]);
        assert!(ctx.is_cancelled());
    }

    #[test]
    fn subtask_panic_reaches_the_owner_at_join() {
        let queue = Arc::new(SubtaskQueue::new());
        let pool = EnginePool::new(Arc::clone(&queue), CancelToken::new());
        let ctx = ParallelContext::new(Arc::new(pool), 0);
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            ctx.run::<usize>(vec![
                Box::new(|| 1),
                Box::new(|| panic!("boom in a subtask")),
            ])
        }));
        let panic = attempt.expect_err("the subtask panic must surface at join");
        let detail = panic.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(detail.contains("boom in a subtask"), "{detail}");
    }
}
