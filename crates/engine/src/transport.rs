//! The daemon transports: socket listeners in front of the engine.
//!
//! Two listeners share one session implementation:
//!
//! * [`SocketServer`] — a Unix-domain-socket listener (`qld serve --socket
//!   PATH`), Unix only;
//! * [`TcpServer`] — a TCP listener (`qld serve --tcp ADDR`), available on
//!   every platform.
//!
//! Each accepted connection is one serve session: the client writes
//! wire-format request lines (see `docs/WIRE.md`) and reads JSON-lines
//! responses, with request IDs scoped **per connection** (every client's
//! first request is `id` 0).  All connections multiplex their requests onto
//! the engine's shared worker pool through the shared bounded queue, so a
//! flood on one connection backpressures rather than starving the others, and
//! all connections share one result cache.
//!
//! On Linux, [`SocketServer::run`] and [`TcpServer::run`] serve every
//! connection from **one** epoll readiness loop (`crate::readiness`):
//! sessions are non-blocking state machines, so thousands of idle
//! connections cost no threads and a slow reader never pins a worker behind
//! a blocking write.  Where epoll is unavailable the same calls fall back to
//! the original thread-per-session accept loop ([`run_session_loop`]), which
//! also remains the engine-independent path behind `run_with` for front ends
//! like the fleet router.

use crate::engine::{Engine, ServeOptions, ServeSummary};
use crate::lock_ignoring_poison;
use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

/// Aggregate counters of one listener-run lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered across all connections.
    pub requests: u64,
    /// Requests that produced an error response.
    pub errors: u64,
    /// Session threads that panicked.  Worker panics are contained as
    /// `internal` error responses, so this counts bugs in the session I/O
    /// path itself; every session is joined (at reap time or at shutdown), so
    /// no panic is silently detached.
    pub panicked: u64,
}

/// The stream operations a session transport needs beyond `Read + Write`:
/// duplicating the handle (separate read and write sides) and half-closing.
/// Implemented by `UnixStream` and `TcpStream`; public so other front ends
/// (the `qld-front` fleet router) can reuse the accept-loop machinery with
/// their own per-connection handlers.
pub trait SessionStream: Read + Write + Send + Sized + 'static {
    /// Duplicates the handle so one side can read while the other writes.
    fn try_clone_stream(&self) -> std::io::Result<Self>;
    /// Half- or full-closes the stream (`shutdown(2)` semantics).
    fn shutdown_side(&self, how: Shutdown) -> std::io::Result<()>;
}

#[cfg(unix)]
impl SessionStream for UnixStream {
    fn try_clone_stream(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
    fn shutdown_side(&self, how: Shutdown) -> std::io::Result<()> {
        self.shutdown(how)
    }
}

impl SessionStream for TcpStream {
    fn try_clone_stream(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
    fn shutdown_side(&self, how: Shutdown) -> std::io::Result<()> {
        self.shutdown(how)
    }
}

/// The accept loop shared by both listeners, specialised to engine sessions:
/// every connection is handed to [`Engine::serve_with`] via
/// [`serve_connection`].
fn run_accept_loop<S: SessionStream>(
    engine: &Arc<Engine>,
    options: ServeOptions,
    stop: &Arc<AtomicBool>,
    accept: impl FnMut() -> std::io::Result<S>,
) -> std::io::Result<TransportSummary> {
    let engine = Arc::clone(engine);
    let handler = Arc::new(move |stream: S| serve_connection(&engine, stream, &options));
    run_session_loop(stop, accept, handler)
}

/// The generic accept loop behind both listeners (and, via
/// [`SocketServer::run_with`] / [`TcpServer::run_with`], behind non-engine
/// front ends such as the fleet router).
///
/// Accepts connections until `stop` is raised, serving each on its own thread
/// through `handler` (which returns that session's answered-request tally).
/// Per-connection I/O errors end that connection only (its answered-request
/// counts are still aggregated), and transient `accept` failures (fd
/// exhaustion, aborted handshakes) are retried with backoff — the loop gives
/// up, returning the error, only when `accept` fails many times in a row.  On
/// shutdown, live connections stop being read — their in-flight responses are
/// still written — and are joined before the aggregate counters are returned.
pub fn run_session_loop<S, H>(
    stop: &Arc<AtomicBool>,
    mut accept: impl FnMut() -> std::io::Result<S>,
    handler: Arc<H>,
) -> std::io::Result<TransportSummary>
where
    S: SessionStream,
    H: Fn(S) -> ServeSummary + Send + Sync + 'static,
{
    let totals = Arc::new(Mutex::new(TransportSummary::default()));
    // Each entry: the session thread plus a read-shutdown handle for it.
    let mut sessions: Vec<(JoinHandle<()>, Option<S>)> = Vec::new();
    let mut accept_error: Option<std::io::Error> = None;
    // Transient accept failures must not kill a persistent daemon: back off and
    // retry, and only give up after this many failures in a row.
    const MAX_CONSECUTIVE_ACCEPT_ERRORS: u32 = 100;
    let mut consecutive_errors: u32 = 0;
    while !stop.load(Ordering::SeqCst) {
        let stream = match accept() {
            Ok(stream) => {
                consecutive_errors = 0;
                stream
            }
            Err(e) => {
                consecutive_errors += 1;
                if consecutive_errors >= MAX_CONSECUTIVE_ACCEPT_ERRORS {
                    accept_error = Some(e);
                    break;
                }
                thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            break; // the shutdown handle's wake-up connection
        }
        lock_ignoring_poison(&totals).connections += 1;
        let peer = stream.try_clone_stream().ok();
        let handler = Arc::clone(&handler);
        let session_totals = Arc::clone(&totals);
        let handle = thread::spawn(move || {
            let summary = handler(stream);
            let mut t = lock_ignoring_poison(&session_totals);
            t.requests += summary.requests;
            t.errors += summary.errors;
        });
        sessions.push((handle, peer));
        // Reap finished sessions so the handle list stays bounded on long
        // daemon runs.  Reaping joins: a session thread that panicked (after
        // its counters were or were not aggregated) is observed and counted,
        // not silently detached with its panic lost.
        let mut live = Vec::with_capacity(sessions.len());
        for (handle, peer) in sessions {
            if handle.is_finished() {
                if handle.join().is_err() {
                    lock_ignoring_poison(&totals).panicked += 1;
                }
            } else {
                live.push((handle, peer));
            }
        }
        sessions = live;
    }
    // Drain: half-close live connections so their sessions see input EOF
    // (blocked reads return immediately), then wait for them to finish
    // writing.
    for (handle, peer) in sessions {
        if let Some(peer) = peer {
            let _ = peer.shutdown_side(Shutdown::Read);
        }
        if handle.join().is_err() {
            lock_ignoring_poison(&totals).panicked += 1;
        }
    }
    let summary = *lock_ignoring_poison(&totals);
    match accept_error {
        Some(e) => Err(e),
        None => Ok(summary),
    }
}

/// Arms process signals to trip a server shutdown: installs counting handlers
/// for every signal in `signals` (via the offline `signal` shim — handlers
/// only bump an atomic, nothing unsafe runs in signal context) and spawns a
/// detached watcher thread that polls the delivery flags and calls `trip`
/// once, with the first signal observed, as soon as any of them arrives.
///
/// This is how `qld serve --socket/--tcp` turns `kill -TERM` (or Ctrl-C) into
/// a graceful drain: `trip` captures the listener's shutdown handle, whose
/// `shutdown()` raises the stop flag and pokes the accept loop awake, after
/// which live connections are half-closed, drained, and joined as usual.
///
/// **Escalation:** a *further* signal delivery after `trip` has fired exits
/// the process immediately (with the conventional `128 + signum` status),
/// skipping the drain and any shutdown-time cache snapshot — an operator
/// whose daemon is stuck behind a long-running request can always force it
/// down with a second Ctrl-C / `kill -TERM` instead of reaching for
/// `SIGKILL`.
///
/// Errors if a handler cannot be installed (e.g. an unsupported platform);
/// callers should degrade to running without signal-driven shutdown.  The
/// watcher thread sleeps in ~25 ms intervals for the daemon's remaining
/// lifetime; if no signal ever arrives it parks until process exit.
pub fn trip_on_signals(
    signals: &[signal::Signal],
    trip: impl FnOnce(signal::Signal) + Send + 'static,
) -> std::io::Result<()> {
    let flags: Vec<signal::SignalFlag> = signals
        .iter()
        .map(|&s| signal::install(s))
        .collect::<std::io::Result<_>>()?;
    thread::spawn(move || {
        let poll = std::time::Duration::from_millis(25);
        let raised = loop {
            if let Some(raised) = flags.iter().find(|f| f.is_raised()) {
                break raised.signal();
            }
            thread::sleep(poll);
        };
        // Snapshot the per-signal counts before tripping: deliveries beyond
        // these mean the operator asked again and wants out *now*.
        let seen: Vec<u64> = flags.iter().map(signal::SignalFlag::deliveries).collect();
        trip(raised);
        loop {
            if let Some(again) = flags
                .iter()
                .zip(&seen)
                .find(|(flag, &seen)| flag.deliveries() > seen)
                .map(|(flag, _)| flag.signal())
            {
                eprintln!(
                    "received {} again during shutdown; exiting immediately without draining",
                    again.name()
                );
                std::process::exit(128 + again.number());
            }
            thread::sleep(poll);
        }
    });
    Ok(())
}

/// Cooperative shutdown switch for a running [`SocketServer`].
#[cfg(unix)]
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    path: PathBuf,
}

#[cfg(unix)]
impl ShutdownHandle {
    /// Asks the accept loop to stop.  Live connections are half-closed on
    /// their read side — responses already in flight are still written — and
    /// joined before [`SocketServer::run`] returns.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the (blocking) accept call with a throwaway connection; the
        // accept loop re-checks the flag after every accept.
        let _ = UnixStream::connect(&self.path);
    }
}

/// A Unix-domain-socket front end serving wire-format sessions.
#[cfg(unix)]
#[derive(Debug)]
pub struct SocketServer {
    listener: UnixListener,
    path: PathBuf,
    stop: Arc<AtomicBool>,
}

#[cfg(unix)]
impl SocketServer {
    /// Binds the listener at `path`.
    ///
    /// A stale socket file left behind by a crashed daemon is removed and
    /// rebound; a socket another process is still listening on is reported as
    /// `AddrInUse` instead (probed by connecting to it).  The probe-then-bind
    /// is not atomic: two daemons racing for the same stale path can both
    /// pass the probe, and the last binder wins — give concurrent daemons
    /// distinct paths.
    pub fn bind(path: impl AsRef<Path>) -> std::io::Result<SocketServer> {
        let path = path.as_ref().to_path_buf();
        if path.exists() {
            if UnixStream::connect(&path).is_ok() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!("{} is already being served", path.display()),
                ));
            }
            std::fs::remove_file(&path)?;
        }
        let listener = UnixListener::bind(&path)?;
        Ok(SocketServer {
            listener,
            path,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The filesystem path the listener is bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A switch that makes [`SocketServer::run`] return.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: Arc::clone(&self.stop),
            path: self.path.clone(),
        }
    }

    /// Serves sessions until shut down (epoll readiness loop where available,
    /// thread-per-session accept loop otherwise — see the module docs) and
    /// removes the socket file afterwards.
    pub fn run(
        self,
        engine: &Arc<Engine>,
        options: ServeOptions,
    ) -> std::io::Result<TransportSummary> {
        let result =
            match crate::readiness::serve_ready(&self.listener, &self.stop, engine, &options) {
                Err(e) if e.kind() == std::io::ErrorKind::Unsupported => {
                    run_accept_loop(engine, options, &self.stop, || {
                        self.listener.accept().map(|(stream, _addr)| stream)
                    })
                }
                outcome => outcome,
            };
        drop(self.listener);
        let _ = std::fs::remove_file(&self.path);
        result
    }

    /// Runs the accept loop with a caller-supplied per-connection handler
    /// instead of an engine session — same lifecycle as [`SocketServer::run`]
    /// (backoff, drain on shutdown, socket-file cleanup), different payload.
    /// This is how the fleet router serves proxy sessions.
    pub fn run_with<H>(self, handler: Arc<H>) -> std::io::Result<TransportSummary>
    where
        H: Fn(UnixStream) -> ServeSummary + Send + Sync + 'static,
    {
        let result = run_session_loop(
            &self.stop,
            || self.listener.accept().map(|(stream, _addr)| stream),
            handler,
        );
        drop(self.listener);
        let _ = std::fs::remove_file(&self.path);
        result
    }
}

/// Cooperative shutdown switch for a running [`TcpServer`].
#[derive(Debug, Clone)]
pub struct TcpShutdownHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl TcpShutdownHandle {
    /// Asks the accept loop to stop (same drain semantics as
    /// [`ShutdownHandle::shutdown`]).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // The wake-up connection must target a routable address: a listener
        // bound to a wildcard (0.0.0.0 / [::]) is not connectable by that
        // name on every platform, so aim at the matching loopback instead.
        let mut addr = self.addr;
        if addr.ip().is_unspecified() {
            addr.set_ip(match addr {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(addr);
    }
}

/// A TCP front end serving wire-format sessions — a drop-in next to
/// [`SocketServer`] for network clients (`qld serve --tcp ADDR`).
///
/// The wire protocol carries no authentication: bind loopback addresses
/// unless the network path is otherwise protected.
#[derive(Debug)]
pub struct TcpServer {
    listener: TcpListener,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl TcpServer {
    /// Binds the listener at `addr` (e.g. `"127.0.0.1:7878"`; port `0` picks
    /// a free port, see [`TcpServer::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(TcpServer {
            listener,
            addr,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address the listener is actually bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A switch that makes [`TcpServer::run`] return.
    pub fn shutdown_handle(&self) -> TcpShutdownHandle {
        TcpShutdownHandle {
            stop: Arc::clone(&self.stop),
            addr: self.addr,
        }
    }

    /// Serves sessions until shut down (same semantics as
    /// [`SocketServer::run`], minus the socket-file cleanup).
    pub fn run(
        self,
        engine: &Arc<Engine>,
        options: ServeOptions,
    ) -> std::io::Result<TransportSummary> {
        #[cfg(unix)]
        match crate::readiness::serve_ready(&self.listener, &self.stop, engine, &options) {
            Err(e) if e.kind() == std::io::ErrorKind::Unsupported => {}
            outcome => return outcome,
        }
        run_accept_loop(engine, options, &self.stop, || {
            self.listener.accept().map(|(stream, _addr)| stream)
        })
    }

    /// Runs the accept loop with a caller-supplied per-connection handler
    /// (see [`SocketServer::run_with`]).
    pub fn run_with<H>(self, handler: Arc<H>) -> std::io::Result<TransportSummary>
    where
        H: Fn(TcpStream) -> ServeSummary + Send + Sync + 'static,
    {
        run_session_loop(
            &self.stop,
            || self.listener.accept().map(|(stream, _addr)| stream),
            handler,
        )
    }
}

/// One connection's session: line-buffered reads from the stream, writes back
/// onto it, then a write-side shutdown so the client sees EOF.  Sessions that
/// die on an I/O error still report the responses that made it onto the wire
/// (counted by [`CountingWriter`]).
fn serve_connection<S: SessionStream>(
    engine: &Engine,
    stream: S,
    options: &ServeOptions,
) -> ServeSummary {
    let _connection = engine.track_connection();
    let reader = match stream.try_clone_stream() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return ServeSummary::default(),
    };
    let mut writer = CountingWriter::new(stream);
    let result = engine.serve_with(reader, &mut writer, options);
    let _ = writer.inner.shutdown_side(Shutdown::Write);
    match result {
        Ok(summary) => summary,
        Err(_) => writer.summary(),
    }
}

/// Counts the complete response lines (and error responses among them)
/// actually written to a client, as a fallback tally for sessions whose
/// `serve_with` call ends in an I/O error.
struct CountingWriter<W> {
    inner: W,
    line: Vec<u8>,
    summary: ServeSummary,
}

impl<W> CountingWriter<W> {
    fn new(inner: W) -> Self {
        CountingWriter {
            inner,
            line: Vec::new(),
            summary: ServeSummary::default(),
        }
    }

    fn summary(&self) -> ServeSummary {
        self.summary
    }
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let contains = |line: &[u8], needle: &[u8]| line.windows(needle.len()).any(|w| w == needle);
        let written = self.inner.write(buf)?;
        for &byte in &buf[..written] {
            if byte == b'\n' {
                // Chunk frames are pieces of one in-flight request, not
                // answered requests: only terminal lines are tallied.
                if !contains(&self.line, b"\"frame\":\"chunk\"") {
                    self.summary.requests += 1;
                    if contains(&self.line, b"\"ok\":false") {
                        self.summary.errors += 1;
                    }
                }
                self.line.clear();
            } else {
                self.line.push(byte);
            }
        }
        Ok(written)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use std::io::{BufRead, Write};

    #[cfg(unix)]
    fn temp_socket_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("qld-{}-{}.sock", tag, std::process::id()))
    }

    fn small_engine(workers: usize) -> Arc<Engine> {
        Arc::new(Engine::new(EngineConfig {
            workers,
            ..EngineConfig::default()
        }))
    }

    #[cfg(unix)]
    #[test]
    fn stale_socket_files_are_rebound() {
        let path = temp_socket_path("stale");
        let _ = std::fs::remove_file(&path);
        // Leave a stale file behind by binding and dropping without running.
        {
            let server = SocketServer::bind(&path).unwrap();
            drop(server);
        }
        assert!(path.exists(), "dropping a never-run server leaves the file");
        let server = SocketServer::bind(&path).unwrap();
        drop(server);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(unix)]
    #[test]
    fn live_sockets_are_not_stolen() {
        let path = temp_socket_path("live");
        let _ = std::fs::remove_file(&path);
        let engine = small_engine(1);
        let server = SocketServer::bind(&path).unwrap();
        let handle = server.shutdown_handle();
        let engine_ref = Arc::clone(&engine);
        let runner = thread::spawn(move || server.run(&engine_ref, ServeOptions::default()));
        // The listener is bound (connectable) from `bind` time, so a second
        // bind must refuse to steal the path.
        let err = SocketServer::bind(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
        handle.shutdown();
        let summary = runner.join().unwrap().unwrap();
        assert_eq!(summary.requests, 0);
        assert!(!path.exists(), "run() removes the socket file on shutdown");
    }

    #[cfg(unix)]
    #[test]
    fn one_connection_round_trips() {
        let path = temp_socket_path("round");
        let _ = std::fs::remove_file(&path);
        let engine = small_engine(2);
        let server = SocketServer::bind(&path).unwrap();
        let handle = server.shutdown_handle();
        let engine_ref = Arc::clone(&engine);
        let runner = thread::spawn(move || server.run(&engine_ref, ServeOptions::default()));

        let mut stream = UnixStream::connect(&path).unwrap();
        stream
            .write_all(b"check 0,1;2,3 0,2;0,3;1,2;1,3 id=one\nstats\n")
            .unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let reader = BufReader::new(stream);
        let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"dual\":true") && lines[0].contains("\"client_id\":\"one\""));
        assert!(lines[1].contains("\"kind\":\"stats\""));

        handle.shutdown();
        let summary = runner.join().unwrap().unwrap();
        assert_eq!(summary.connections, 1);
        assert_eq!(summary.requests, 2);
        assert_eq!(summary.errors, 0);
    }

    #[cfg(unix)]
    #[test]
    fn shutdown_drains_connections_that_stay_open() {
        let path = temp_socket_path("drain");
        let _ = std::fs::remove_file(&path);
        let engine = small_engine(2);
        let server = SocketServer::bind(&path).unwrap();
        let handle = server.shutdown_handle();
        let engine_ref = Arc::clone(&engine);
        let runner = thread::spawn(move || server.run(&engine_ref, ServeOptions::default()));

        // A client that answers one request and then just sits on the open
        // connection must not hang shutdown.
        let mut stream = UnixStream::connect(&path).unwrap();
        stream.write_all(b"check 0,1 0;1 id=live\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"client_id\":\"live\""), "{line}");

        handle.shutdown();
        let summary = runner.join().unwrap().unwrap();
        assert_eq!(summary.connections, 1);
        assert_eq!(summary.requests, 1);
        assert_eq!(summary.errors, 0);
        // The daemon half-closed the connection: the client now sees EOF.
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0);
    }

    #[test]
    fn tcp_connection_round_trips() {
        let engine = small_engine(2);
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let engine_ref = Arc::clone(&engine);
        let runner = thread::spawn(move || server.run(&engine_ref, ServeOptions::default()));

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"check 0,1;2,3 0,2;0,3;1,2;1,3 id=tcp\nstats\n")
            .unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let reader = BufReader::new(stream);
        let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"dual\":true") && lines[0].contains("\"client_id\":\"tcp\""));
        assert!(lines[1].contains("\"kind\":\"stats\""));

        handle.shutdown();
        let summary = runner.join().unwrap().unwrap();
        assert_eq!(summary.connections, 1);
        assert_eq!(summary.requests, 2);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn tcp_serves_concurrent_connections() {
        let engine = small_engine(2);
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let engine_ref = Arc::clone(&engine);
        let runner = thread::spawn(move || server.run(&engine_ref, ServeOptions::default()));

        let clients: Vec<_> = (0..3)
            .map(|c| {
                thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    writeln!(stream, "check 0,1 0;1 id=c{c}").unwrap();
                    stream.shutdown(Shutdown::Write).unwrap();
                    let mut lines = BufReader::new(stream).lines();
                    let line = lines.next().unwrap().unwrap();
                    assert!(line.contains(&format!("\"client_id\":\"c{c}\"")), "{line}");
                    assert!(line.contains("\"dual\":true"), "{line}");
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }

        handle.shutdown();
        let summary = runner.join().unwrap().unwrap();
        assert_eq!(summary.connections, 3);
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn tcp_shutdown_drains_open_connections() {
        let engine = small_engine(1);
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let engine_ref = Arc::clone(&engine);
        let runner = thread::spawn(move || server.run(&engine_ref, ServeOptions::default()));

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"check 0,1 0;1 id=open\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"client_id\":\"open\""), "{line}");

        handle.shutdown();
        let summary = runner.join().unwrap().unwrap();
        assert_eq!(summary.connections, 1);
        assert_eq!(summary.requests, 1);
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "client sees EOF");
    }

    #[test]
    fn tcp_wildcard_bind_still_shuts_down() {
        let engine = small_engine(1);
        let server = TcpServer::bind("0.0.0.0:0").unwrap();
        let addr = server.local_addr();
        assert!(addr.ip().is_unspecified());
        let handle = server.shutdown_handle();
        let engine_ref = Arc::clone(&engine);
        let runner = thread::spawn(move || server.run(&engine_ref, ServeOptions::default()));
        handle.shutdown();
        let summary = runner.join().unwrap().unwrap();
        assert_eq!(summary.requests, 0);
    }

    #[test]
    fn panicked_sessions_are_joined_and_counted() {
        // A stream whose reads panic kills its session thread mid-flight; the
        // accept loop must join the corpse and count the panic instead of
        // detaching the handle and losing it.
        struct PanicStream;
        impl Read for PanicStream {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                panic!("session I/O blew up");
            }
        }
        impl Write for PanicStream {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        impl SessionStream for PanicStream {
            fn try_clone_stream(&self) -> std::io::Result<Self> {
                Ok(PanicStream)
            }
            fn shutdown_side(&self, _how: Shutdown) -> std::io::Result<()> {
                Ok(())
            }
        }

        let engine = small_engine(1);
        let stop = Arc::new(AtomicBool::new(false));
        let mut handed_out = false;
        let summary = {
            let stop_inner = Arc::clone(&stop);
            run_accept_loop(&engine, ServeOptions::default(), &stop, move || {
                if handed_out {
                    // One doomed connection is enough: stop the loop (the
                    // error is transient, so the loop re-checks the flag).
                    stop_inner.store(true, Ordering::SeqCst);
                    Err(std::io::Error::other("no more connections"))
                } else {
                    handed_out = true;
                    Ok(PanicStream)
                }
            })
            .unwrap()
        };
        assert_eq!(summary.connections, 1);
        assert_eq!(summary.requests, 0);
        assert_eq!(summary.panicked, 1, "the session panic must be surfaced");
    }

    #[test]
    fn counting_writer_tallies_complete_lines_only() {
        let mut w = CountingWriter::new(Vec::new());
        w.write_all(b"{\"id\":0,\"ok\":true}\n").unwrap();
        w.write_all(b"{\"id\":1,\"ok\":false,\"code\":\"parse\"}\n")
            .unwrap();
        w.write_all(b"{\"id\":2,\"ok\":true").unwrap(); // incomplete line
        let summary = w.summary();
        assert_eq!(summary.requests, 2);
        assert_eq!(summary.errors, 1);
    }

    #[test]
    fn errored_sessions_still_count_answered_requests() {
        // Fabricate the error path directly: a session whose read side fails
        // after one good request.  `serve_connection` is private, so exercise
        // the fallback through `CountingWriter` + `serve_with` the way it
        // does.
        struct FailAfterFirstLine {
            line: &'static [u8],
            sent: bool,
        }
        impl std::io::Read for FailAfterFirstLine {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.sent {
                    return Err(std::io::Error::other("peer reset"));
                }
                self.sent = true;
                buf[..self.line.len()].copy_from_slice(self.line);
                Ok(self.line.len())
            }
        }
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let mut writer = CountingWriter::new(Vec::new());
        let reader = BufReader::new(FailAfterFirstLine {
            line: b"check 0,1 0;1\nfrobnicate\n",
            sent: false,
        });
        let result = engine.serve_with(reader, &mut writer, &ServeOptions::default());
        assert!(result.is_err());
        // Both responses were written before the read error surfaced, and the
        // fallback tally sees them.
        assert_eq!(writer.summary().requests, 2);
        assert_eq!(writer.summary().errors, 1);
    }
}
