//! The engine's canonical text wire format (see `docs/WIRE.md` for the full
//! specification).
//!
//! One request per line, whitespace-separated tokens, first token the request
//! kind:
//!
//! ```text
//! check <G> <H>
//! enumerate <G> [limit=K]
//! mine <REL> z=<Z> [g=<G>] [h=<H>] [full=BOOL]
//! keys <TABLE>
//! stats
//! cancel id=<N>
//! ```
//!
//! Every request line additionally accepts the **envelope keywords**
//! `id=<TOKEN>` (an opaque correlation token echoed back as `client_id`),
//! `order=input|arrival` (per-request override of the session's response
//! ordering, see [`crate::engine::Engine::serve_with`]),
//! `solver=<NAME>` (force a concrete solver for this request's duality calls,
//! any name accepted by [`crate::policy::SolverKind::from_name`]), and
//! `stream=BOOL` (answer with incremental `chunk` frames followed by a `done`
//! frame instead of one response line — protocol version 2, see
//! `docs/WIRE.md`), and `auth=<USER>` (the user id this request is accounted
//! to for per-user token-bucket admission; anonymous requests are never
//! throttled).  `mine … full=true` runs the full `dualize_and_advance`
//! identification loop server-side; `cancel id=<N>` asks the session to stop
//! the in-flight request whose sequence number is `N` (on a `cancel` line the
//! `id=` keyword names the *target*, so cancel requests carry no correlation
//! token of their own).
//!
//! Hypergraphs (`<G>`, `<H>`) and relations (`<REL>`) are written **inline**:
//! edges (rows) separated by `;`, vertex indices inside an edge separated by
//! `,`, with an optional `n=<N>:` prefix fixing the universe size.  The token
//! `-` denotes "no edges" and `.` denotes the empty edge, so `n=3:-` is the
//! edgeless hypergraph over three vertices and `n=3:.` is `{∅}` (the constant-
//! true DNF).  Key tables (`<TABLE>`) use the same row/field separators with
//! arbitrary `u32` attribute values per field.
//!
//! The inline edge list is the one-line form of the multi-line `.qld` file
//! syntax of [`qld_hypergraph::format`], and parsing is delegated to it: the
//! inline text is rewritten to the line-oriented form (`;` → newline, `,` →
//! space, `n=N:` → `# n=N` header) and handed to
//! [`qld_hypergraph::format::from_text`].
//!
//! Blank lines and lines starting with `#` are ignored by the request reader.

use crate::policy::SolverKind;
use crate::request::Request;
use qld_datamining::BooleanRelation;
use qld_hypergraph::{format, Hypergraph, VertexSet};
use qld_keys::RelationInstance;

/// Version of the wire protocol this engine speaks.  Reported by the `stats`
/// request; bumped only on breaking changes (see the versioning rules in
/// `docs/WIRE.md`).  Version 2 adds streaming (`stream=` requests answered as
/// `chunk`/`done` frames), the `cancel` control request, the `mine … full=`
/// full-border loop, and per-session quotas; version-1 one-shot traffic is
/// served unchanged.
pub const PROTOCOL_VERSION: u32 = 2;

/// Response emission discipline of a serve session (the `order=` keyword).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderMode {
    /// Responses are emitted in request order; a reorder buffer holds results
    /// that finish early.
    #[default]
    Input,
    /// Responses are emitted the moment they complete, possibly out of order;
    /// clients correlate via the `id` / `client_id` fields.
    Arrival,
}

impl OrderMode {
    /// The wire name of this mode.
    pub fn name(&self) -> &'static str {
        match self {
            OrderMode::Input => "input",
            OrderMode::Arrival => "arrival",
        }
    }

    /// Parses a wire/CLI mode name.
    pub fn from_name(name: &str) -> Option<OrderMode> {
        match name {
            "input" => Some(OrderMode::Input),
            "arrival" => Some(OrderMode::Arrival),
            _ => None,
        }
    }
}

/// The command part of a parsed wire line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// One of the typed solver queries.
    Query(Request),
    /// The `stats` control request: a snapshot of the engine counters.
    Stats,
    /// The `cancel id=N` control request: stop the in-flight request whose
    /// session sequence number is `N`.
    Cancel {
        /// The target request's sequence number (the `id` field of its
        /// responses).
        target: u64,
    },
}

/// One fully parsed wire line: the command plus its envelope options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedLine {
    /// The query or control command.
    pub command: Command,
    /// Client-supplied correlation token (`id=`), echoed in the response.
    pub id: Option<String>,
    /// Per-request response-ordering override (`order=`).
    pub order: Option<OrderMode>,
    /// Per-request solver override (`solver=`) applied to every duality call
    /// the request makes.
    pub solver: Option<SolverKind>,
    /// Whether the request asked for a streamed answer (`stream=` keyword):
    /// incremental `chunk` frames followed by a `done` frame.
    pub stream: bool,
    /// The user id this request is accounted to (`auth=` keyword) for
    /// per-user token-bucket admission; `None` means anonymous (never
    /// throttled).
    pub auth: Option<String>,
}

/// Splits an optional `n=<N>:` prefix off an inline family, returning the
/// declared universe size (if any) and the remaining body.
fn split_universe_prefix(token: &str) -> Result<(Option<usize>, &str), String> {
    if let Some(rest) = token.strip_prefix("n=") {
        let Some((num, body)) = rest.split_once(':') else {
            return Err(format!(
                "malformed universe prefix in `{token}` (expected `n=<N>:...`)"
            ));
        };
        let n: usize = num
            .parse()
            .map_err(|_| format!("invalid universe size `{num}` in `{token}`"))?;
        Ok((Some(n), body))
    } else {
        Ok((None, token))
    }
}

/// Parses an inline hypergraph token (see module docs for the syntax).
pub fn parse_hypergraph(token: &str) -> Result<Hypergraph, String> {
    let (declared_n, body) = split_universe_prefix(token)?;
    // Rewrite the inline form into the `.qld` line-oriented syntax and let
    // `qld_hypergraph::format` do the actual parsing; only empty edges (`.`)
    // need handling here, because a blank line is skipped by the file format.
    let mut text = String::new();
    if let Some(n) = declared_n {
        text.push_str(&format!("# n={n}\n"));
    }
    let mut empty_edges = 0usize;
    if !(body.is_empty() || body == "-") {
        for edge in body.split(';') {
            if edge == "." {
                empty_edges += 1;
                continue;
            }
            if edge.is_empty() {
                return Err(format!(
                    "empty edge in `{token}` (use `.` for the empty edge)"
                ));
            }
            text.push_str(&edge.replace(',', " "));
            text.push('\n');
        }
    }
    let mut hg =
        format::from_text(&text).map_err(|e| format!("invalid hypergraph `{token}`: {e}"))?;
    for _ in 0..empty_edges {
        hg.add_edge(VertexSet::empty(hg.num_vertices()));
    }
    Ok(hg)
}

/// Renders a hypergraph in the inline syntax (with universe prefix), the exact
/// inverse of [`parse_hypergraph`].
pub fn to_inline(h: &Hypergraph) -> String {
    let mut out = format!("n={}:", h.num_vertices());
    if h.is_empty() {
        out.push('-');
        return out;
    }
    for (i, e) in h.edges().iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        if e.is_empty() {
            out.push('.');
        } else {
            let idx: Vec<String> = e.to_indices().iter().map(|v| v.to_string()).collect();
            out.push_str(&idx.join(","));
        }
    }
    out
}

/// Parses an inline Boolean relation: same syntax as hypergraphs, but rows may
/// repeat (a relation is a multiset of rows), so this does not go through the
/// simple-hypergraph representation.
pub fn parse_relation(token: &str) -> Result<BooleanRelation, String> {
    let (declared_n, body) = split_universe_prefix(token)?;
    let mut rows: Vec<Vec<usize>> = Vec::new();
    if !(body.is_empty() || body == "-") {
        for row in body.split(';') {
            if row == "." {
                rows.push(Vec::new());
                continue;
            }
            if row.is_empty() {
                return Err(format!(
                    "empty row in `{token}` (use `.` for the empty row)"
                ));
            }
            let mut parsed = Vec::new();
            for field in row.split(',') {
                let idx: usize = field
                    .parse()
                    .map_err(|_| format!("invalid item index `{field}` in `{token}`"))?;
                parsed.push(idx);
            }
            rows.push(parsed);
        }
    }
    let needed_n = rows.iter().flatten().map(|&i| i + 1).max().unwrap_or(0);
    let n = match declared_n {
        Some(n) if n >= needed_n => n,
        Some(n) => {
            return Err(format!(
                "item index {} out of range for declared universe {n} in `{token}`",
                needed_n - 1
            ))
        }
        None => needed_n,
    };
    Ok(BooleanRelation::from_rows(
        n,
        rows.into_iter().map(|r| VertexSet::from_indices(n, r)),
    ))
}

/// Renders a relation in the inline syntax.
pub fn relation_to_inline(m: &BooleanRelation) -> String {
    let mut out = format!("n={}:", m.num_items());
    if m.rows().is_empty() {
        out.push('-');
        return out;
    }
    for (i, row) in m.rows().iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        if row.is_empty() {
            out.push('.');
        } else {
            let idx: Vec<String> = row.to_indices().iter().map(|v| v.to_string()).collect();
            out.push_str(&idx.join(","));
        }
    }
    out
}

/// Parses an inline key table: rows separated by `;`, `u32` attribute values
/// separated by `,`.  All rows must have the same width.
pub fn parse_key_table(token: &str) -> Result<RelationInstance, String> {
    let mut rows: Vec<Vec<u32>> = Vec::new();
    if !(token.is_empty() || token == "-") {
        for row in token.split(';') {
            let mut parsed = Vec::new();
            for field in row.split(',') {
                let v: u32 = field
                    .parse()
                    .map_err(|_| format!("invalid attribute value `{field}` in `{token}`"))?;
                parsed.push(v);
            }
            rows.push(parsed);
        }
    }
    let width = rows.first().map_or(0, Vec::len);
    if rows.iter().any(|r| r.len() != width) {
        return Err(format!(
            "ragged key table `{token}`: all rows must have the same width"
        ));
    }
    Ok(RelationInstance::from_rows(width, rows))
}

/// Renders a key table in the inline syntax.
pub fn key_table_to_inline(r: &RelationInstance) -> String {
    if r.rows().is_empty() {
        return "-".to_string();
    }
    r.rows()
        .iter()
        .map(|row| row.iter().map(u32::to_string).collect::<Vec<_>>().join(","))
        .collect::<Vec<_>>()
        .join(";")
}

/// Parses one wire-format line into its command and envelope options (see the
/// module docs and `docs/WIRE.md`).
pub fn parse_line(line: &str) -> Result<ParsedLine, String> {
    let mut tokens = line.split_whitespace();
    let kind = tokens
        .next()
        .ok_or_else(|| "empty request line".to_string())?;
    // Peel the envelope keywords off before kind-specific parsing; they are
    // valid on every request line.
    let mut id: Option<String> = None;
    let mut order: Option<OrderMode> = None;
    let mut solver: Option<SolverKind> = None;
    let mut stream = false;
    let mut auth: Option<String> = None;
    let mut rest: Vec<&str> = Vec::new();
    for t in tokens {
        if let Some(v) = t.strip_prefix("id=") {
            if v.is_empty() {
                return Err("empty correlation token in `id=`".to_string());
            }
            id = Some(v.to_string());
        } else if let Some(v) = t.strip_prefix("order=") {
            order = Some(
                OrderMode::from_name(v)
                    .ok_or_else(|| format!("unknown order `{v}` (expected input|arrival)"))?,
            );
        } else if let Some(v) = t.strip_prefix("solver=") {
            solver = Some(SolverKind::from_name(v).ok_or_else(|| format!("unknown solver `{v}`"))?);
        } else if let Some(v) = t.strip_prefix("auth=") {
            if v.is_empty() {
                return Err("empty user id in `auth=`".to_string());
            }
            auth = Some(v.to_string());
        } else if let Some(v) = t.strip_prefix("stream=") {
            stream = match v {
                "chunks" => true,
                other => parse_bool(other).ok_or_else(|| {
                    format!("invalid stream flag `{v}` (expected true|false|1|0|chunks)")
                })?,
            };
        } else {
            rest.push(t);
        }
    }
    let command = match kind {
        "check" => {
            let [g, h] = positional::<2>("check", &rest, &[])?;
            Command::Query(Request::DecideDuality {
                g: parse_hypergraph(g)?,
                h: parse_hypergraph(h)?,
            })
        }
        "enumerate" => {
            let [g] = positional::<1>("enumerate", &rest, &["limit"])?;
            let limit = match keyword(&rest, "limit") {
                Some(v) => Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid limit `{v}`"))?,
                ),
                None => None,
            };
            Command::Query(Request::EnumerateTransversals {
                g: parse_hypergraph(g)?,
                limit,
            })
        }
        "mine" => {
            let [rel] = positional::<1>("mine", &rest, &["z", "g", "h", "full"])?;
            let relation = parse_relation(rel)?;
            let z = keyword(&rest, "z").ok_or_else(|| "mine requires z=<threshold>".to_string())?;
            let threshold: usize = z.parse().map_err(|_| format!("invalid threshold `{z}`"))?;
            let full = match keyword(&rest, "full") {
                Some(v) => parse_bool(v)
                    .ok_or_else(|| format!("invalid full flag `{v}` (expected true|false|1|0)"))?,
                None => false,
            };
            let n = relation.num_items();
            let minimal_infrequent = match keyword(&rest, "g") {
                Some(v) => parse_hypergraph(v)?,
                None => Hypergraph::new(n),
            };
            let maximal_frequent = match keyword(&rest, "h") {
                Some(v) => parse_hypergraph(v)?,
                None => Hypergraph::new(n),
            };
            Command::Query(if full {
                Request::MineBorders {
                    relation,
                    threshold,
                    minimal_infrequent,
                    maximal_frequent,
                }
            } else {
                Request::IdentifyItemsetBorders {
                    relation,
                    threshold,
                    minimal_infrequent,
                    maximal_frequent,
                }
            })
        }
        "keys" => {
            let [table] = positional::<1>("keys", &rest, &[])?;
            Command::Query(Request::FindMinimalKeys {
                instance: parse_key_table(table)?,
            })
        }
        "stats" => {
            let [] = positional::<0>("stats", &rest, &[])?;
            Command::Stats
        }
        "cancel" => {
            let [] = positional::<0>("cancel", &rest, &[])?;
            // On a `cancel` line the `id=` keyword names the *target* request
            // (the session sequence number of its responses), so it is taken
            // out of the envelope rather than echoed as a correlation token.
            let target = id
                .take()
                .ok_or_else(|| "cancel requires id=<request-number>".to_string())?;
            let target: u64 = target
                .parse()
                .map_err(|_| format!("invalid cancel target `{target}` (expected a number)"))?;
            Command::Cancel { target }
        }
        other => {
            return Err(format!(
                "unknown request kind `{other}` (expected check|enumerate|mine|keys|stats|cancel)"
            ))
        }
    };
    Ok(ParsedLine {
        command,
        id,
        order,
        solver,
        stream,
        auth,
    })
}

/// Parses a wire boolean flag value (`stream=`, `full=`).
fn parse_bool(v: &str) -> Option<bool> {
    match v {
        "true" | "1" => Some(true),
        "false" | "0" => Some(false),
        _ => None,
    }
}

/// Best-effort recovery of the `id=` correlation token from a line that
/// failed to parse, so even error responses stay correlatable (essential for
/// `order=arrival` sessions, where clients match answers by id alone).
///
/// Duplicate `id=` tokens resolve exactly as [`parse_line`] resolves them —
/// the **last** one wins — so a malformed line's error response carries the
/// same `client_id` the line would have echoed had it parsed (empty `id=`
/// tokens, which [`parse_line`] rejects outright, are skipped here).
pub fn salvage_client_id(line: &str) -> Option<String> {
    line.split_whitespace()
        .filter_map(|t| t.strip_prefix("id="))
        .rfind(|v| !v.is_empty())
        .map(String::from)
}

/// Parses one wire-format line into a typed [`Request`], rejecting control
/// commands.  Envelope options (`id=`, `order=`, `solver=`) are accepted and
/// discarded; use [`parse_line`] to observe them.
pub fn parse_request(line: &str) -> Result<Request, String> {
    match parse_line(line)?.command {
        Command::Query(request) => Ok(request),
        Command::Stats => Err("`stats` is a control command, not a typed request".to_string()),
        Command::Cancel { .. } => {
            Err("`cancel` is a control command, not a typed request".to_string())
        }
    }
}

/// Renders a typed request as one wire line, the inverse of [`parse_request`]:
/// `parse_request(&render_request(r)) == Ok(r)` for every request.
pub fn render_request(request: &Request) -> String {
    match request {
        Request::DecideDuality { g, h } => {
            format!("check {} {}", to_inline(g), to_inline(h))
        }
        Request::EnumerateTransversals { g, limit } => match limit {
            Some(l) => format!("enumerate {} limit={l}", to_inline(g)),
            None => format!("enumerate {}", to_inline(g)),
        },
        Request::IdentifyItemsetBorders {
            relation,
            threshold,
            minimal_infrequent,
            maximal_frequent,
        } => format!(
            "mine {} z={} g={} h={}",
            relation_to_inline(relation),
            threshold,
            to_inline(minimal_infrequent),
            to_inline(maximal_frequent)
        ),
        Request::MineBorders {
            relation,
            threshold,
            minimal_infrequent,
            maximal_frequent,
        } => format!(
            "mine {} z={} g={} h={} full=true",
            relation_to_inline(relation),
            threshold,
            to_inline(minimal_infrequent),
            to_inline(maximal_frequent)
        ),
        Request::FindMinimalKeys { instance } => {
            format!("keys {}", key_table_to_inline(instance))
        }
    }
}

/// Extracts the `key=value` token for `key`, if present.
fn keyword<'a>(tokens: &[&'a str], key: &str) -> Option<&'a str> {
    tokens
        .iter()
        .find_map(|t| t.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
}

/// Collects exactly `N` positional (non-`key=value`) tokens, rejecting
/// unknown keywords.
fn positional<'a, const N: usize>(
    kind: &str,
    tokens: &[&'a str],
    allowed_keys: &[&str],
) -> Result<[&'a str; N], String> {
    let mut positional = Vec::new();
    for t in tokens {
        if let Some((key, _)) = t.split_once('=') {
            // `n=4:...` inline prefixes are positional, not keywords.
            let is_keyword = allowed_keys.contains(&key);
            let is_inline = key == "n" && t.contains(':');
            if is_keyword {
                continue;
            }
            if !is_inline {
                return Err(format!("unknown option `{t}` for `{kind}`"));
            }
        }
        positional.push(*t);
    }
    <[&str; N]>::try_from(positional).map_err(|v: Vec<&str>| {
        format!(
            "`{kind}` expects {N} positional argument(s), got {}",
            v.len()
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hypergraph_round_trip() {
        for s in ["0,1;2,3", "n=6:0,1;2,3", "n=3:-", "n=3:.", "n=4:.;0,1"] {
            let h = parse_hypergraph(s).unwrap();
            let back = parse_hypergraph(&to_inline(&h)).unwrap();
            assert!(h.same_edge_set(&back), "{s}");
            assert_eq!(h.num_vertices(), back.num_vertices(), "{s}");
        }
        let h = parse_hypergraph("0,1;2,3").unwrap();
        assert_eq!(h.num_vertices(), 4);
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn hypergraph_errors() {
        assert!(parse_hypergraph("0,x").is_err());
        assert!(parse_hypergraph("n=2:0,5").is_err());
        assert!(parse_hypergraph("0,1;;2").is_err());
        assert!(parse_hypergraph("n=z:0").is_err());
    }

    #[test]
    fn relation_keeps_duplicate_rows() {
        let m = parse_relation("0,1;0,1;2").unwrap();
        assert_eq!(m.num_rows(), 3);
        assert_eq!(m.num_items(), 3);
        let back = parse_relation(&relation_to_inline(&m)).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn key_table_round_trip() {
        let r = parse_key_table("1,2,3;1,2,4").unwrap();
        assert_eq!(r.num_attributes(), 3);
        assert_eq!(r.num_rows(), 2);
        let back = parse_key_table(&key_table_to_inline(&r)).unwrap();
        assert_eq!(r, back);
        assert!(parse_key_table("1,2;3").is_err());
    }

    #[test]
    fn request_lines_parse() {
        assert!(matches!(
            parse_request("check 0,1;2,3 0,2;0,3;1,2;1,3").unwrap(),
            Request::DecideDuality { .. }
        ));
        match parse_request("enumerate n=4:0,1;2,3 limit=3").unwrap() {
            Request::EnumerateTransversals { limit, .. } => assert_eq!(limit, Some(3)),
            other => panic!("{other:?}"),
        }
        match parse_request("mine 0,1;0,1;1,2 z=1 h=n=3:0,1").unwrap() {
            Request::IdentifyItemsetBorders {
                threshold,
                maximal_frequent,
                ..
            } => {
                assert_eq!(threshold, 1);
                assert_eq!(maximal_frequent.num_edges(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_request("keys 1,2;1,3").unwrap(),
            Request::FindMinimalKeys { .. }
        ));
        assert!(parse_request("frobnicate 1").is_err());
        assert!(parse_request("check 0,1").is_err());
        assert!(parse_request("enumerate 0,1 limit=x").is_err());
        assert!(parse_request("mine 0,1 z=1 bogus=2").is_err());
    }

    #[test]
    fn envelope_keywords_parse_on_every_kind() {
        let pl = parse_line("check 0,1 0;1 id=req-1 order=arrival solver=tree").unwrap();
        assert_eq!(pl.id.as_deref(), Some("req-1"));
        assert_eq!(pl.order, Some(OrderMode::Arrival));
        assert_eq!(pl.solver, Some(SolverKind::BmTree));
        assert!(!pl.stream);
        assert!(matches!(pl.command, Command::Query(_)));

        let pl = parse_line("enumerate 0,1;2,3 limit=2 solver=quadlog").unwrap();
        assert_eq!(pl.solver, Some(SolverKind::QuadChain));
        assert_eq!(pl.order, None);

        let pl = parse_line("stats id=s0").unwrap();
        assert_eq!(pl.command, Command::Stats);
        assert_eq!(pl.id.as_deref(), Some("s0"));

        assert!(parse_line("check 0,1 0;1 order=sideways").is_err());
        assert!(parse_line("check 0,1 0;1 solver=nope").is_err());
        assert!(parse_line("check 0,1 0;1 id=").is_err());
        assert!(parse_line("stats 0,1").is_err());
        assert!(parse_request("stats").is_err());
    }

    #[test]
    fn stream_flag_parses_on_every_kind() {
        for value in ["1", "true", "chunks"] {
            let pl = parse_line(&format!("enumerate 0,1;2,3 stream={value}")).unwrap();
            assert!(pl.stream, "stream={value}");
        }
        for value in ["0", "false"] {
            let pl = parse_line(&format!("enumerate 0,1;2,3 stream={value}")).unwrap();
            assert!(!pl.stream, "stream={value}");
        }
        let pl = parse_line("check 0,1 0;1 stream=1 id=x").unwrap();
        assert!(pl.stream);
        assert_eq!(pl.id.as_deref(), Some("x"));
        assert!(parse_line("enumerate 0,1 stream=sideways").is_err());
    }

    #[test]
    fn auth_keyword_parses_on_every_kind() {
        let pl = parse_line("check 0,1 0;1 auth=alice id=x").unwrap();
        assert_eq!(pl.auth.as_deref(), Some("alice"));
        assert_eq!(pl.id.as_deref(), Some("x"));
        let pl = parse_line("enumerate 0,1;2,3 stream=1 auth=bob").unwrap();
        assert_eq!(pl.auth.as_deref(), Some("bob"));
        assert!(pl.stream);
        let pl = parse_line("stats auth=carol").unwrap();
        assert_eq!(pl.auth.as_deref(), Some("carol"));
        // Absent auth means anonymous; empty auth is rejected outright.
        assert_eq!(parse_line("check 0,1 0;1").unwrap().auth, None);
        assert!(parse_line("check 0,1 0;1 auth=").is_err());
    }

    #[test]
    fn mine_full_parses_to_the_border_loop_request() {
        match parse_request("mine 0,1;0,1;1,2 z=1 full=true").unwrap() {
            Request::MineBorders {
                threshold,
                minimal_infrequent,
                maximal_frequent,
                ..
            } => {
                assert_eq!(threshold, 1);
                assert!(minimal_infrequent.is_empty());
                assert!(maximal_frequent.is_empty());
            }
            other => panic!("{other:?}"),
        }
        // full=false (and absence) keeps the one-shot identification kind.
        assert!(matches!(
            parse_request("mine 0,1;0,1;1,2 z=1 full=false").unwrap(),
            Request::IdentifyItemsetBorders { .. }
        ));
        // Seeds ride along in full mode.
        match parse_request("mine n=3:0,1;1,2 z=0 h=n=3:0,1 full=1").unwrap() {
            Request::MineBorders {
                maximal_frequent, ..
            } => assert_eq!(maximal_frequent.num_edges(), 1),
            other => panic!("{other:?}"),
        }
        assert!(parse_request("mine 0,1 z=1 full=maybe").is_err());
    }

    #[test]
    fn cancel_lines_parse_the_target_out_of_the_id_keyword() {
        let pl = parse_line("cancel id=7").unwrap();
        assert_eq!(pl.command, Command::Cancel { target: 7 });
        // The id= keyword named the target, not a correlation token.
        assert_eq!(pl.id, None);

        assert!(parse_line("cancel").is_err(), "missing target");
        assert!(parse_line("cancel id=abc").is_err(), "non-numeric target");
        assert!(parse_line("cancel 3").is_err(), "positional target");
        assert!(parse_request("cancel id=3").is_err(), "not a typed request");
    }

    #[test]
    fn client_ids_are_salvaged_from_malformed_lines() {
        assert_eq!(
            salvage_client_id("check bogus-( id=req-9").as_deref(),
            Some("req-9")
        );
        assert_eq!(salvage_client_id("frobnicate id=x").as_deref(), Some("x"));
        assert_eq!(salvage_client_id("check 0,1 0;1 id="), None);
        assert_eq!(salvage_client_id("check 0,1 0;1"), None);
    }

    #[test]
    fn duplicate_ids_resolve_last_wins_on_both_paths() {
        // Regression: `parse_line` let the last `id=` win while the salvage
        // path returned the first, so a malformed line's error response could
        // carry a different `client_id` than the same line would echo on
        // success.  Both paths must agree: last wins.
        let parsed = parse_line("check 0,1 0;1 id=first id=last").unwrap();
        assert_eq!(parsed.id.as_deref(), Some("last"));
        assert_eq!(
            salvage_client_id("check 0,1 0;1 id=first id=last").as_deref(),
            Some("last")
        );
        // The same duplicate envelope on a line that fails to parse salvages
        // the identical token.
        assert_eq!(
            salvage_client_id("check bogus-( id=first id=last").as_deref(),
            Some("last")
        );
        // An empty trailing `id=` is rejected by the parser and skipped by
        // the salvage (it can never be echoed as a client_id).
        assert!(parse_line("check 0,1 0;1 id=real id=").is_err());
        assert_eq!(
            salvage_client_id("check bogus-( id=real id=").as_deref(),
            Some("real")
        );
    }

    #[test]
    fn render_request_round_trips() {
        for line in [
            "check n=4:0,1;2,3 n=4:0,2;0,3;1,2;1,3",
            "enumerate n=4:0,1;2,3 limit=3",
            "enumerate n=3:.;0,1",
            "mine n=3:0,1;0,1;1,2 z=1 g=n=3:- h=n=3:0,1",
            "mine n=3:0,1;0,1;1,2 z=1 g=n=3:- h=n=3:- full=true",
            "keys 1,2;1,3",
            "keys -",
        ] {
            let request = parse_request(line).unwrap();
            let rendered = render_request(&request);
            assert_eq!(
                parse_request(&rendered).unwrap(),
                request,
                "render of `{line}` = `{rendered}` did not round-trip"
            );
        }
    }

    /// Strategy: arbitrary short strings over a wire-flavored alphabet (the
    /// interesting separators and keywords plus raw noise), for fuzzing the
    /// parser.
    fn arb_wire_noise() -> impl Strategy<Value = String> {
        prop::collection::vec(0u32..96, 0usize..=40).prop_map(|codes| {
            const ALPHABET: &[u8] = b"0123456789,;:=.- \tchecknumratmiskyzghidorvlwqp#\\\"";
            codes
                .into_iter()
                .map(|c| {
                    let i = c as usize;
                    if i < ALPHABET.len() {
                        ALPHABET[i] as char
                    } else {
                        // Sprinkle in raw control/unicode noise.
                        char::from_u32(c).unwrap_or('\u{fffd}')
                    }
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// The parser must never panic: every input is either parsed or
        /// rejected with an error message.
        #[test]
        fn malformed_frames_never_panic(noise in arb_wire_noise()) {
            let _ = parse_line(&noise);
            let _ = parse_line(&format!("check {noise}"));
            let _ = parse_line(&format!("mine {noise} z=1"));
            let _ = parse_hypergraph(&noise);
            let _ = parse_relation(&noise);
            let _ = parse_key_table(&noise);
        }

        /// Truncating or corrupting a valid frame must yield a clean error or
        /// a clean parse, never a panic.
        #[test]
        fn corrupted_valid_frames_never_panic(
            cut in 0usize..64,
            junk in 0u32..128,
        ) {
            for line in [
                "check n=4:0,1;2,3 n=4:0,2;0,3;1,2;1,3 id=x order=arrival solver=tree",
                "enumerate n=4:0,1;2,3 limit=3",
                "mine n=3:0,1;0,1;1,2 z=1 g=n=3:- h=n=3:0,1",
                "mine n=3:0,1;0,1;1,2 z=1 full=true stream=chunks",
                "keys 1,2;1,3",
                "stats",
                "cancel id=3",
            ] {
                let cut = cut.min(line.len());
                let _ = parse_line(&line[..cut]);
                let mut corrupted = String::with_capacity(line.len());
                corrupted.push_str(&line[..cut]);
                if let Some(c) = char::from_u32(junk) {
                    corrupted.push(c);
                }
                corrupted.push_str(&line[cut..]);
                let _ = parse_line(&corrupted);
            }
        }
    }
}
