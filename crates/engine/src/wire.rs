//! The engine's canonical text wire format.
//!
//! One request per line, whitespace-separated tokens, first token the request
//! kind:
//!
//! ```text
//! check <G> <H>
//! enumerate <G> [limit=K]
//! mine <REL> z=<Z> [g=<G>] [h=<H>]
//! keys <TABLE>
//! ```
//!
//! Hypergraphs (`<G>`, `<H>`) and relations (`<REL>`) are written **inline**:
//! edges (rows) separated by `;`, vertex indices inside an edge separated by
//! `,`, with an optional `n=<N>:` prefix fixing the universe size.  The token
//! `-` denotes "no edges" and `.` denotes the empty edge, so `n=3:-` is the
//! edgeless hypergraph over three vertices and `n=3:.` is `{∅}` (the constant-
//! true DNF).  Key tables (`<TABLE>`) use the same row/field separators with
//! arbitrary `u32` attribute values per field.
//!
//! The inline edge list is the one-line form of the multi-line `.qld` file
//! syntax of [`qld_hypergraph::format`], and parsing is delegated to it: the
//! inline text is rewritten to the line-oriented form (`;` → newline, `,` →
//! space, `n=N:` → `# n=N` header) and handed to
//! [`qld_hypergraph::format::from_text`].
//!
//! Blank lines and lines starting with `#` are ignored by the request reader.

use crate::request::Request;
use qld_datamining::BooleanRelation;
use qld_hypergraph::{format, Hypergraph, VertexSet};
use qld_keys::RelationInstance;

/// Splits an optional `n=<N>:` prefix off an inline family, returning the
/// declared universe size (if any) and the remaining body.
fn split_universe_prefix(token: &str) -> Result<(Option<usize>, &str), String> {
    if let Some(rest) = token.strip_prefix("n=") {
        let Some((num, body)) = rest.split_once(':') else {
            return Err(format!(
                "malformed universe prefix in `{token}` (expected `n=<N>:...`)"
            ));
        };
        let n: usize = num
            .parse()
            .map_err(|_| format!("invalid universe size `{num}` in `{token}`"))?;
        Ok((Some(n), body))
    } else {
        Ok((None, token))
    }
}

/// Parses an inline hypergraph token (see module docs for the syntax).
pub fn parse_hypergraph(token: &str) -> Result<Hypergraph, String> {
    let (declared_n, body) = split_universe_prefix(token)?;
    // Rewrite the inline form into the `.qld` line-oriented syntax and let
    // `qld_hypergraph::format` do the actual parsing; only empty edges (`.`)
    // need handling here, because a blank line is skipped by the file format.
    let mut text = String::new();
    if let Some(n) = declared_n {
        text.push_str(&format!("# n={n}\n"));
    }
    let mut empty_edges = 0usize;
    if !(body.is_empty() || body == "-") {
        for edge in body.split(';') {
            if edge == "." {
                empty_edges += 1;
                continue;
            }
            if edge.is_empty() {
                return Err(format!(
                    "empty edge in `{token}` (use `.` for the empty edge)"
                ));
            }
            text.push_str(&edge.replace(',', " "));
            text.push('\n');
        }
    }
    let mut hg =
        format::from_text(&text).map_err(|e| format!("invalid hypergraph `{token}`: {e}"))?;
    for _ in 0..empty_edges {
        hg.add_edge(VertexSet::empty(hg.num_vertices()));
    }
    Ok(hg)
}

/// Renders a hypergraph in the inline syntax (with universe prefix), the exact
/// inverse of [`parse_hypergraph`].
pub fn to_inline(h: &Hypergraph) -> String {
    let mut out = format!("n={}:", h.num_vertices());
    if h.is_empty() {
        out.push('-');
        return out;
    }
    for (i, e) in h.edges().iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        if e.is_empty() {
            out.push('.');
        } else {
            let idx: Vec<String> = e.to_indices().iter().map(|v| v.to_string()).collect();
            out.push_str(&idx.join(","));
        }
    }
    out
}

/// Parses an inline Boolean relation: same syntax as hypergraphs, but rows may
/// repeat (a relation is a multiset of rows), so this does not go through the
/// simple-hypergraph representation.
pub fn parse_relation(token: &str) -> Result<BooleanRelation, String> {
    let (declared_n, body) = split_universe_prefix(token)?;
    let mut rows: Vec<Vec<usize>> = Vec::new();
    if !(body.is_empty() || body == "-") {
        for row in body.split(';') {
            if row == "." {
                rows.push(Vec::new());
                continue;
            }
            if row.is_empty() {
                return Err(format!(
                    "empty row in `{token}` (use `.` for the empty row)"
                ));
            }
            let mut parsed = Vec::new();
            for field in row.split(',') {
                let idx: usize = field
                    .parse()
                    .map_err(|_| format!("invalid item index `{field}` in `{token}`"))?;
                parsed.push(idx);
            }
            rows.push(parsed);
        }
    }
    let needed_n = rows.iter().flatten().map(|&i| i + 1).max().unwrap_or(0);
    let n = match declared_n {
        Some(n) if n >= needed_n => n,
        Some(n) => {
            return Err(format!(
                "item index {} out of range for declared universe {n} in `{token}`",
                needed_n - 1
            ))
        }
        None => needed_n,
    };
    Ok(BooleanRelation::from_rows(
        n,
        rows.into_iter().map(|r| VertexSet::from_indices(n, r)),
    ))
}

/// Renders a relation in the inline syntax.
pub fn relation_to_inline(m: &BooleanRelation) -> String {
    let mut out = format!("n={}:", m.num_items());
    if m.rows().is_empty() {
        out.push('-');
        return out;
    }
    for (i, row) in m.rows().iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        if row.is_empty() {
            out.push('.');
        } else {
            let idx: Vec<String> = row.to_indices().iter().map(|v| v.to_string()).collect();
            out.push_str(&idx.join(","));
        }
    }
    out
}

/// Parses an inline key table: rows separated by `;`, `u32` attribute values
/// separated by `,`.  All rows must have the same width.
pub fn parse_key_table(token: &str) -> Result<RelationInstance, String> {
    let mut rows: Vec<Vec<u32>> = Vec::new();
    if !(token.is_empty() || token == "-") {
        for row in token.split(';') {
            let mut parsed = Vec::new();
            for field in row.split(',') {
                let v: u32 = field
                    .parse()
                    .map_err(|_| format!("invalid attribute value `{field}` in `{token}`"))?;
                parsed.push(v);
            }
            rows.push(parsed);
        }
    }
    let width = rows.first().map_or(0, Vec::len);
    if rows.iter().any(|r| r.len() != width) {
        return Err(format!(
            "ragged key table `{token}`: all rows must have the same width"
        ));
    }
    Ok(RelationInstance::from_rows(width, rows))
}

/// Renders a key table in the inline syntax.
pub fn key_table_to_inline(r: &RelationInstance) -> String {
    if r.rows().is_empty() {
        return "-".to_string();
    }
    r.rows()
        .iter()
        .map(|row| row.iter().map(u32::to_string).collect::<Vec<_>>().join(","))
        .collect::<Vec<_>>()
        .join(";")
}

/// Parses one wire-format request line (see module docs).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut tokens = line.split_whitespace();
    let kind = tokens
        .next()
        .ok_or_else(|| "empty request line".to_string())?;
    let rest: Vec<&str> = tokens.collect();
    match kind {
        "check" => {
            let [g, h] = positional::<2>("check", &rest, &[])?;
            Ok(Request::DecideDuality {
                g: parse_hypergraph(g)?,
                h: parse_hypergraph(h)?,
            })
        }
        "enumerate" => {
            let [g] = positional::<1>("enumerate", &rest, &["limit"])?;
            let limit = match keyword(&rest, "limit") {
                Some(v) => Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid limit `{v}`"))?,
                ),
                None => None,
            };
            Ok(Request::EnumerateTransversals {
                g: parse_hypergraph(g)?,
                limit,
            })
        }
        "mine" => {
            let [rel] = positional::<1>("mine", &rest, &["z", "g", "h"])?;
            let relation = parse_relation(rel)?;
            let z = keyword(&rest, "z").ok_or_else(|| "mine requires z=<threshold>".to_string())?;
            let threshold: usize = z.parse().map_err(|_| format!("invalid threshold `{z}`"))?;
            let n = relation.num_items();
            let minimal_infrequent = match keyword(&rest, "g") {
                Some(v) => parse_hypergraph(v)?,
                None => Hypergraph::new(n),
            };
            let maximal_frequent = match keyword(&rest, "h") {
                Some(v) => parse_hypergraph(v)?,
                None => Hypergraph::new(n),
            };
            Ok(Request::IdentifyItemsetBorders {
                relation,
                threshold,
                minimal_infrequent,
                maximal_frequent,
            })
        }
        "keys" => {
            let [table] = positional::<1>("keys", &rest, &[])?;
            Ok(Request::FindMinimalKeys {
                instance: parse_key_table(table)?,
            })
        }
        other => Err(format!(
            "unknown request kind `{other}` (expected check|enumerate|mine|keys)"
        )),
    }
}

/// Extracts the `key=value` token for `key`, if present.
fn keyword<'a>(tokens: &[&'a str], key: &str) -> Option<&'a str> {
    tokens
        .iter()
        .find_map(|t| t.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
}

/// Collects exactly `N` positional (non-`key=value`) tokens, rejecting
/// unknown keywords.
fn positional<'a, const N: usize>(
    kind: &str,
    tokens: &[&'a str],
    allowed_keys: &[&str],
) -> Result<[&'a str; N], String> {
    let mut positional = Vec::new();
    for t in tokens {
        if let Some((key, _)) = t.split_once('=') {
            // `n=4:...` inline prefixes are positional, not keywords.
            let is_keyword = allowed_keys.contains(&key);
            let is_inline = key == "n" && t.contains(':');
            if is_keyword {
                continue;
            }
            if !is_inline {
                return Err(format!("unknown option `{t}` for `{kind}`"));
            }
        }
        positional.push(*t);
    }
    <[&str; N]>::try_from(positional).map_err(|v: Vec<&str>| {
        format!(
            "`{kind}` expects {N} positional argument(s), got {}",
            v.len()
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypergraph_round_trip() {
        for s in ["0,1;2,3", "n=6:0,1;2,3", "n=3:-", "n=3:.", "n=4:.;0,1"] {
            let h = parse_hypergraph(s).unwrap();
            let back = parse_hypergraph(&to_inline(&h)).unwrap();
            assert!(h.same_edge_set(&back), "{s}");
            assert_eq!(h.num_vertices(), back.num_vertices(), "{s}");
        }
        let h = parse_hypergraph("0,1;2,3").unwrap();
        assert_eq!(h.num_vertices(), 4);
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn hypergraph_errors() {
        assert!(parse_hypergraph("0,x").is_err());
        assert!(parse_hypergraph("n=2:0,5").is_err());
        assert!(parse_hypergraph("0,1;;2").is_err());
        assert!(parse_hypergraph("n=z:0").is_err());
    }

    #[test]
    fn relation_keeps_duplicate_rows() {
        let m = parse_relation("0,1;0,1;2").unwrap();
        assert_eq!(m.num_rows(), 3);
        assert_eq!(m.num_items(), 3);
        let back = parse_relation(&relation_to_inline(&m)).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn key_table_round_trip() {
        let r = parse_key_table("1,2,3;1,2,4").unwrap();
        assert_eq!(r.num_attributes(), 3);
        assert_eq!(r.num_rows(), 2);
        let back = parse_key_table(&key_table_to_inline(&r)).unwrap();
        assert_eq!(r, back);
        assert!(parse_key_table("1,2;3").is_err());
    }

    #[test]
    fn request_lines_parse() {
        assert!(matches!(
            parse_request("check 0,1;2,3 0,2;0,3;1,2;1,3").unwrap(),
            Request::DecideDuality { .. }
        ));
        match parse_request("enumerate n=4:0,1;2,3 limit=3").unwrap() {
            Request::EnumerateTransversals { limit, .. } => assert_eq!(limit, Some(3)),
            other => panic!("{other:?}"),
        }
        match parse_request("mine 0,1;0,1;1,2 z=1 h=n=3:0,1").unwrap() {
            Request::IdentifyItemsetBorders {
                threshold,
                maximal_frequent,
                ..
            } => {
                assert_eq!(threshold, 1);
                assert_eq!(maximal_frequent.num_edges(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_request("keys 1,2;1,3").unwrap(),
            Request::FindMinimalKeys { .. }
        ));
        assert!(parse_request("frobnicate 1").is_err());
        assert!(parse_request("check 0,1").is_err());
        assert!(parse_request("enumerate 0,1 limit=x").is_err());
        assert!(parse_request("mine 0,1 z=1 bogus=2").is_err());
    }
}
