//! Brute-force duality testing over truth assignments.
//!
//! Checks the defining identity `f(x) ≡ ¬g(¬x)` on all `2ⁿ` assignments.  Exponential,
//! but completely independent of all the combinatorial machinery, which makes it the
//! most trustworthy cross-check for tiny instances.

use crate::counterexample::witness_from_assignment;
use qld_core::{DualError, DualInstance, DualityResult, DualitySolver};
use qld_hypergraph::{Hypergraph, VertexSet};

/// Maximum universe size accepted by the brute-force solver.
pub const MAX_BRUTE_VERTICES: usize = 24;

/// The brute-force assignment solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct AssignmentBruteSolver;

impl AssignmentBruteSolver {
    /// Creates the solver.
    pub fn new() -> Self {
        AssignmentBruteSolver
    }
}

impl DualitySolver for AssignmentBruteSolver {
    fn name(&self) -> &'static str {
        "brute-assignments"
    }

    fn decide(&self, g: &Hypergraph, h: &Hypergraph) -> Result<DualityResult, DualError> {
        let inst = DualInstance::new(g.clone(), h.clone())?;
        let n = inst.num_vertices();
        assert!(
            n <= MAX_BRUTE_VERTICES,
            "brute-force assignment solver limited to {MAX_BRUTE_VERTICES} vertices"
        );
        for t in VertexSet::all_subsets(n) {
            if let Some(witness) = witness_from_assignment(inst.g(), inst.h(), &t) {
                return Ok(DualityResult::NotDual(witness));
            }
        }
        Ok(DualityResult::Dual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_core::verify_witness;
    use qld_hypergraph::generators;

    #[test]
    fn agrees_with_known_labels() {
        let solver = AssignmentBruteSolver::new();
        for li in [
            generators::matching_instance(2),
            generators::matching_instance(3),
            generators::threshold_instance(5, 2),
            generators::self_dual_instance(1),
        ] {
            assert!(solver.is_dual(&li.g, &li.h).unwrap(), "{}", li.name);
            if let Some(broken) =
                generators::perturb(&li, generators::Perturbation::DropDualEdge, 0)
            {
                let r = solver.decide(&broken.g, &broken.h).unwrap();
                assert!(!r.is_dual());
                assert!(verify_witness(&broken.g, &broken.h, r.witness().unwrap()));
            }
        }
        assert_eq!(solver.name(), "brute-assignments");
    }

    #[test]
    fn rejects_non_simple_input() {
        let g = Hypergraph::from_index_edges(3, &[&[0], &[0, 1]]);
        let h = Hypergraph::from_index_edges(3, &[&[0]]);
        assert!(AssignmentBruteSolver::new().decide(&g, &h).is_err());
    }
}
