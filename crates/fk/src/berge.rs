//! The exact-dualization baseline.
//!
//! Computes `tr(G)` explicitly by Berge multiplication (from `qld-hypergraph`) and
//! compares it with `H`.  Output-exponential in the worst case, but exact, and the
//! natural "sequential method" baseline against which the decomposition solvers are
//! compared in experiment E4.

use qld_core::{DualError, DualInstance, DualityResult, DualitySolver, NonDualWitness};
use qld_hypergraph::transversal::minimal_transversals;
use qld_hypergraph::Hypergraph;

/// The explicit-dualization solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct BergeSolver;

impl BergeSolver {
    /// Creates the solver.
    pub fn new() -> Self {
        BergeSolver
    }
}

impl DualitySolver for BergeSolver {
    fn name(&self) -> &'static str {
        "berge-exact"
    }

    fn decide(&self, g: &Hypergraph, h: &Hypergraph) -> Result<DualityResult, DualError> {
        let inst = DualInstance::new(g.clone(), h.clone())?;
        let g = inst.g();
        let h = inst.h();
        let tr_g = minimal_transversals(g);
        if tr_g.same_edge_set(h) {
            return Ok(DualityResult::Dual);
        }
        // Produce a structural witness explaining the difference.
        // (a) An H-edge that is not a minimal transversal of G …
        for (hi, b) in h.edges().iter().enumerate() {
            if tr_g.contains_edge(b) {
                continue;
            }
            if !g.is_transversal(b) {
                // … because it misses some G-edge entirely.
                let gi = g
                    .edges()
                    .iter()
                    .position(|a| a.is_disjoint(b))
                    .expect("non-transversal must miss an edge");
                return Ok(DualityResult::NotDual(NonDualWitness::DisjointEdges {
                    g_index: gi,
                    h_index: hi,
                }));
            }
            // … or because it is a non-minimal transversal: shrinking it yields a
            // transversal of G that, by simplicity of H, contains no H-edge.
            let reduced = g.minimize_transversal(b);
            return Ok(DualityResult::NotDual(NonDualWitness::NewTransversalOfG(
                reduced,
            )));
        }
        // (b) Otherwise H ⊊ tr(G): some minimal transversal of G is missing from H; it
        // contains no H-edge (an H-edge inside it would be a smaller minimal
        // transversal, contradiction), so it is a new transversal.
        let missing = tr_g
            .edges()
            .iter()
            .find(|t| !h.contains_edge(t))
            .expect("families differ");
        Ok(DualityResult::NotDual(NonDualWitness::NewTransversalOfG(
            missing.clone(),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_core::verify_witness;
    use qld_hypergraph::generators;

    #[test]
    fn matches_labels_on_standard_corpus() {
        let solver = BergeSolver::new();
        for li in generators::standard_corpus() {
            let verdict = solver.decide(&li.g, &li.h).unwrap();
            assert_eq!(verdict.is_dual(), li.dual, "{}", li.name);
            if let DualityResult::NotDual(w) = &verdict {
                assert!(verify_witness(&li.g, &li.h, w), "{}: bad witness", li.name);
            }
        }
        assert_eq!(solver.name(), "berge-exact");
    }

    #[test]
    fn all_witness_shapes_are_reachable() {
        // DisjointEdges: H-edge missing a G-edge entirely.
        let g = Hypergraph::from_index_edges(4, &[&[0, 1]]);
        let h = Hypergraph::from_index_edges(4, &[&[2, 3]]);
        let r = BergeSolver::new().decide(&g, &h).unwrap();
        assert!(matches!(
            r.witness(),
            Some(NonDualWitness::DisjointEdges { .. })
        ));

        // Non-minimal H-edge → reduced new transversal.
        let g = Hypergraph::from_index_edges(3, &[&[0], &[1]]);
        let h = Hypergraph::from_index_edges(3, &[&[0, 1, 2]]);
        let r = BergeSolver::new().decide(&g, &h).unwrap();
        assert!(matches!(
            r.witness(),
            Some(NonDualWitness::NewTransversalOfG(_))
        ));
        assert!(verify_witness(&g, &h, r.witness().unwrap()));

        // Missing dual edge → new transversal.
        let li = generators::matching_instance(2);
        let mut partial = li.h.clone();
        partial.remove_edge(0);
        let r = BergeSolver::new().decide(&li.g, &partial).unwrap();
        assert!(matches!(
            r.witness(),
            Some(NonDualWitness::NewTransversalOfG(_))
        ));
        assert!(verify_witness(&li.g, &partial, r.witness().unwrap()));
    }
}
