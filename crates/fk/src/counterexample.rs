//! Counterexample assignments and their conversion to duality witnesses.
//!
//! The classical algorithms (Fredman–Khachiyan, brute force over assignments) refute
//! duality by exhibiting an assignment `x` with `f(x) = g(¬x)` — a point where the
//! defining identity of duality fails.  This module converts such assignments into the
//! structural witnesses used across the repository ([`NonDualWitness`]), and provides
//! the semantic evaluation helpers shared by the baseline solvers.

use qld_core::NonDualWitness;
use qld_hypergraph::{Hypergraph, VertexSet};

/// Evaluates the monotone DNF whose terms are the edges of `f` under the assignment
/// `true_vars` (the set of variables set to 1).
pub fn evaluate(f: &Hypergraph, true_vars: &VertexSet) -> bool {
    f.edges().iter().any(|t| t.is_subset(true_vars))
}

/// Whether the assignment `t` is a counterexample to the duality of `(g, h)`, i.e.
/// `g(t) = h(V − t)` (both true or both false).
pub fn is_counterexample(g: &Hypergraph, h: &Hypergraph, t: &VertexSet) -> bool {
    let n = g.num_vertices().max(h.num_vertices());
    let mut t = t.clone();
    t.grow(n);
    let co_t = t.complement(n);
    evaluate(g, &t) == evaluate(h, &co_t)
}

/// Converts a counterexample assignment into a structural [`NonDualWitness`].
///
/// * If `g(t) = h(¬t) = 1`, there are a `G`-edge inside `t` and an `H`-edge inside
///   `V − t`; those two edges are disjoint.
/// * If `g(t) = h(¬t) = 0`, the complement `V − t` meets every `G`-edge and contains no
///   `H`-edge: a new transversal of `G` w.r.t. `H`.
///
/// Returns `None` if `t` is not actually a counterexample.
pub fn witness_from_assignment(
    g: &Hypergraph,
    h: &Hypergraph,
    t: &VertexSet,
) -> Option<NonDualWitness> {
    let n = g.num_vertices().max(h.num_vertices());
    let mut t = t.clone();
    t.grow(n);
    let co_t = t.complement(n);
    let g_val = evaluate(g, &t);
    let h_val = evaluate(h, &co_t);
    if g_val != h_val {
        return None;
    }
    if g_val {
        let g_index = g.edges().iter().position(|e| e.is_subset(&t))?;
        let h_index = h.edges().iter().position(|e| e.is_subset(&co_t))?;
        Some(NonDualWitness::DisjointEdges { g_index, h_index })
    } else {
        Some(NonDualWitness::NewTransversalOfG(co_t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_core::verify_witness;
    use qld_hypergraph::vset;

    fn pair() -> (Hypergraph, Hypergraph) {
        let g = Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3]]);
        let h = Hypergraph::from_index_edges(4, &[&[0, 2], &[0, 3], &[1, 2], &[1, 3]]);
        (g, h)
    }

    #[test]
    fn evaluation() {
        let (g, _) = pair();
        assert!(evaluate(&g, &vset![4; 0, 1]));
        assert!(evaluate(&g, &vset![4; 0, 1, 2]));
        assert!(!evaluate(&g, &vset![4; 0, 2]));
        assert!(!evaluate(&g, &vset![4;]));
    }

    #[test]
    fn dual_pairs_have_no_counterexample() {
        let (g, h) = pair();
        for mask in 0u32..16 {
            let t = VertexSet::from_indices(4, (0..4).filter(|i| mask & (1 << i) != 0));
            assert!(!is_counterexample(&g, &h, &t), "t = {t}");
            assert!(witness_from_assignment(&g, &h, &t).is_none());
        }
    }

    #[test]
    fn both_false_counterexample_gives_new_transversal() {
        let (g, mut h) = pair();
        h.remove_edge(0); // drop {0,2}
                          // t = {1,3}: g(t) = 0, h complement = {0,2}: no remaining h-edge inside → 0.
        let t = vset![4; 1, 3];
        assert!(is_counterexample(&g, &h, &t));
        let w = witness_from_assignment(&g, &h, &t).unwrap();
        assert!(matches!(w, NonDualWitness::NewTransversalOfG(_)));
        assert!(verify_witness(&g, &h, &w));
    }

    #[test]
    fn both_true_counterexample_gives_disjoint_edges() {
        // g = {{0,1}}, h = {{2,3}}: t = {0,1} makes both sides true.
        let g = Hypergraph::from_index_edges(4, &[&[0, 1]]);
        let h = Hypergraph::from_index_edges(4, &[&[2, 3]]);
        let t = vset![4; 0, 1];
        assert!(is_counterexample(&g, &h, &t));
        let w = witness_from_assignment(&g, &h, &t).unwrap();
        assert_eq!(
            w,
            NonDualWitness::DisjointEdges {
                g_index: 0,
                h_index: 0
            }
        );
        assert!(verify_witness(&g, &h, &w));
    }

    #[test]
    fn non_counterexamples_are_rejected() {
        let (g, h) = pair();
        assert!(witness_from_assignment(&g, &h, &vset![4; 0, 1]).is_none());
    }
}
