//! Fredman–Khachiyan algorithm A.
//!
//! The classical `n^{O(log n)}` self-reduction for monotone duality (Fredman &
//! Khachiyan, *On the Complexity of Dualization of Monotone Disjunctive Normal Forms*,
//! J. Algorithms 1996), cited by the paper as the starting point of all later
//! decomposition methods.  Writing `f = x·f₁ ∨ f₀` and `g = x·g₁ ∨ g₀` for a chosen
//! variable `x`, the pair `(f, g)` is dual iff `(f₀, g₀ ∨ g₁)` and `(f₀ ∨ f₁, g₀)` are
//! both dual; splitting on a *frequent* variable bounds the recursion depth.
//!
//! The implementation refutes duality with a **counterexample assignment** `t` such
//! that `f(t) = g(¬t)`, propagated back up through the recursion, and converted into a
//! structural witness by [`crate::counterexample::witness_from_assignment`].  It also
//! implements the volume check `Σ 2^{−|A|} + Σ 2^{−|B|} ≥ 1` of the original paper; when
//! the check fails, a counterexample is constructed deterministically by the method of
//! conditional probabilities.

use crate::counterexample::witness_from_assignment;
#[cfg(feature = "std")]
use alloc::boxed::Box;
use alloc::vec;
use alloc::vec::Vec;
#[cfg(feature = "std")]
use qld_core::ParallelContext;
use qld_core::{DualError, DualInstance, DualityResult, DualitySolver};
use qld_hypergraph::{Hypergraph, Vertex, VertexSet};

/// The parallel-context handle threaded through the recursion.  Without `std`
/// no context can exist, so the stand-in is an uninhabited type and the
/// `Option` is always `None`.
#[cfg(feature = "std")]
type ParCtx = ParallelContext;
#[cfg(not(feature = "std"))]
type ParCtx = core::convert::Infallible;

/// Statistics of one Fredman–Khachiyan run (used by the experiment harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FkStats {
    /// Number of recursive calls (nodes of the recursion tree).
    pub calls: usize,
    /// Maximum recursion depth reached.
    pub max_depth: usize,
}

/// The Fredman–Khachiyan algorithm A as a [`DualitySolver`].
#[derive(Debug, Clone, Default)]
pub struct FkASolver {
    /// When set, the top-level self-duality split runs its two independent
    /// subproblems as pool subtasks (both to completion, results merged in
    /// subproblem order, so the counterexample and statistics are
    /// deterministic at any worker count).  Parallelism needs `std` (pools,
    /// channels); without the feature the recursion is purely sequential.
    #[cfg(feature = "std")]
    parallel: Option<ParallelContext>,
}

impl FkASolver {
    /// Creates the solver.
    pub fn new() -> Self {
        FkASolver::default()
    }

    /// Enables intra-query parallelism for the top-level split.
    #[cfg(feature = "std")]
    pub fn with_parallel(mut self, ctx: ParallelContext) -> Self {
        self.parallel = Some(ctx);
        self
    }

    /// Decides duality and also returns recursion statistics.
    pub fn decide_with_stats(
        &self,
        g: &Hypergraph,
        h: &Hypergraph,
    ) -> Result<(DualityResult, FkStats), DualError> {
        // Validation (simplicity, common universe) is shared with the other solvers.
        let inst = DualInstance::new(g.clone(), h.clone())?;
        let mut stats = FkStats::default();
        #[cfg(feature = "std")]
        let par = self.parallel.as_ref();
        #[cfg(not(feature = "std"))]
        let par = None;
        let counterexample = fk_counterexample(inst.g(), inst.h(), 0, &mut stats, par)?;
        let result = match counterexample {
            None => DualityResult::Dual,
            Some(t) => {
                let witness = witness_from_assignment(inst.g(), inst.h(), &t)
                    .expect("FK produced an assignment that is not a counterexample");
                DualityResult::NotDual(witness)
            }
        };
        Ok((result, stats))
    }
}

impl DualitySolver for FkASolver {
    fn name(&self) -> &'static str {
        "fk-a"
    }

    fn decide(&self, g: &Hypergraph, h: &Hypergraph) -> Result<DualityResult, DualError> {
        Ok(self.decide_with_stats(g, h)?.0)
    }
}

/// Core recursion: returns `Ok(None)` if `(f, g)` are dual, otherwise a counterexample
/// assignment `t` with `f(t) = g(¬t)`.
///
/// `par` is consulted only at depth 0: when set and the instance is large
/// enough, the two subproblems of the frequent-variable split run as pool
/// subtasks (see [`split_parallel`]); `Err(DualError::Interrupted)` means the
/// pool skipped them because the owning query was cancelled.  Recursive calls
/// always pass `None`, so the subtrees themselves are sequential and the
/// function is infallible below the root.
fn fk_counterexample(
    f: &Hypergraph,
    g: &Hypergraph,
    depth: usize,
    stats: &mut FkStats,
    par: Option<&ParCtx>,
) -> Result<Option<VertexSet>, DualError> {
    stats.calls += 1;
    stats.max_depth = stats.max_depth.max(depth);
    let n = f.num_vertices().max(g.num_vertices());
    let f = f.minimize();
    let g = g.minimize();

    // --- base cases on constants -------------------------------------------------
    if f.is_empty() {
        // f ≡ false is dual exactly to g ≡ true.
        return if g.has_empty_edge() {
            Ok(None)
        } else {
            Ok(Some(VertexSet::full(n))) // f(V)=0, g(∅)=0
        };
    }
    if g.is_empty() {
        return if f.has_empty_edge() {
            Ok(None)
        } else {
            Ok(Some(VertexSet::empty(n))) // f(∅)=0, g(V)=0
        };
    }
    if f.has_empty_edge() {
        // f ≡ true; dual iff g ≡ false, i.e. g empty — but g is non-empty here.
        return Ok(Some(VertexSet::empty(n))); // f(∅)=1, g(V)=1
    }
    if g.has_empty_edge() {
        return Ok(Some(VertexSet::full(n))); // f(V)=1, g(∅)=1
    }

    // --- cross-intersection ------------------------------------------------------
    // "Some f-edge is disjoint from some g-edge" is exactly "some f-edge is not a
    // transversal of g": answer it for all f-edges in one batched pass over g's
    // edge arena, then locate the first offending pair (same (a, b) order as the
    // nested scan this replaces).
    {
        let f_refs: Vec<&VertexSet> = f.edges().iter().collect();
        let meets_all = g.index().transversal_many(&f_refs);
        if let Some(i) = meets_all.iter().position(|&ok| !ok) {
            let b = g
                .index()
                .first_edge_disjoint(&f.edges()[i])
                .expect("batched probe found a non-transversal f-edge");
            // T = V − B: f(T) ⊇ A → 1, g(¬T) = g(B) ⊇ B → 1.
            let mut b_full = g.edge(b).clone();
            b_full.grow(n);
            return Ok(Some(b_full.complement(n)));
        }
    }

    // --- volume check (Fredman–Khachiyan Lemma) ------------------------------------
    let volume: f64 = f
        .edges()
        .iter()
        .chain(g.edges())
        .map(|e| pow_half(e.len()))
        .sum();
    if volume < 1.0 {
        return Ok(Some(conditional_probabilities_counterexample(&f, &g, n)));
    }

    // --- small base cases ----------------------------------------------------------
    if f.num_edges() <= 2 {
        return Ok(small_side_counterexample(&f, &g, n));
    }
    if g.num_edges() <= 2 {
        // Duality is symmetric; a counterexample for (g, f) complements into one for
        // (f, g): g(t) = f(¬t) implies f(¬t) = g(¬(¬t)).
        return Ok(small_side_counterexample(&g, &f, n).map(|t| t.complement(n)));
    }

    // --- split on the most frequent variable ---------------------------------------
    let x = most_frequent_variable(&f, &g, n);
    let (f0, f1) = split(&f, x, n);
    let (g0, g1) = split(&g, x, n);

    #[cfg(feature = "std")]
    if depth == 0 {
        if let Some(ctx) = par {
            let work = n * (f.num_edges() + g.num_edges());
            if ctx.should_split(work) {
                return split_parallel(ctx, n, x, f0, f1, g0, g1, stats);
            }
        }
    }
    #[cfg(not(feature = "std"))]
    let _ = (depth, par);

    // (i) f₀ dual to g₀ ∨ g₁ ?
    let g01 = union_minimized(&g0, &g1, n);
    if let Some(y) = fk_counterexample(&f0, &g01, depth + 1, stats, None)? {
        // lift: x := 0 (y never contains x because neither sub-formula mentions it).
        let mut z = y;
        z.remove(Vertex::from(x));
        return Ok(Some(z));
    }
    // (ii) f₀ ∨ f₁ dual to g₀ ?
    let f01 = union_minimized(&f0, &f1, n);
    if let Some(y) = fk_counterexample(&f01, &g0, depth + 1, stats, None)? {
        // lift: x := 1.
        let mut z = y;
        z.grow(n);
        z.insert(Vertex::from(x));
        return Ok(Some(z));
    }
    Ok(None)
}

/// Runs the two subproblems of the top-level frequent-variable split as pool
/// subtasks.  Both run to completion (no early abort), each on its own
/// statistics, and the merge prefers subproblem (i)'s counterexample — so the
/// returned assignment matches the sequential recursion and the merged
/// statistics are identical at any worker count.
#[cfg(feature = "std")]
#[allow(clippy::too_many_arguments)]
fn split_parallel(
    ctx: &ParallelContext,
    n: usize,
    x: usize,
    f0: Hypergraph,
    f1: Hypergraph,
    g0: Hypergraph,
    g1: Hypergraph,
    stats: &mut FkStats,
) -> Result<Option<VertexSet>, DualError> {
    let g01 = union_minimized(&g0, &g1, n);
    let f01 = union_minimized(&f0, &f1, n);
    type SubResult = (Option<VertexSet>, FkStats);
    let task = |a: Hypergraph, b: Hypergraph| -> Box<dyn FnOnce() -> SubResult + Send> {
        Box::new(move || {
            let mut sub = FkStats::default();
            let w = fk_counterexample(&a, &b, 1, &mut sub, None)
                .expect("sequential recursion cannot be interrupted");
            (w, sub)
        })
    };
    let slots = ctx.run(vec![task(f0, g01), task(f01, g0)]);
    let mut results = Vec::with_capacity(2);
    for slot in slots {
        match slot {
            Some(r) => results.push(r),
            None => return Err(DualError::Interrupted),
        }
    }
    let (w1, s1) = results.pop().expect("two subtasks");
    let (w0, s0) = results.pop().expect("two subtasks");
    stats.calls += s0.calls + s1.calls;
    stats.max_depth = stats.max_depth.max(s0.max_depth).max(s1.max_depth);
    if let Some(y) = w0 {
        // lift: x := 0.
        let mut z = y;
        z.remove(Vertex::from(x));
        return Ok(Some(z));
    }
    if let Some(y) = w1 {
        // lift: x := 1.
        let mut z = y;
        z.grow(n);
        z.insert(Vertex::from(x));
        return Ok(Some(z));
    }
    Ok(None)
}

/// Splits a DNF on variable `x`: returns `(f₀, f₁)` with `f = x·f₁ ∨ f₀`.
fn split(f: &Hypergraph, x: usize, n: usize) -> (Hypergraph, Hypergraph) {
    let xv = Vertex::from(x);
    let mut f0 = Hypergraph::new(n);
    let mut f1 = Hypergraph::new(n);
    for e in f.edges() {
        if e.contains(xv) {
            f1.add_edge(e.without(xv));
        } else {
            f0.add_edge(e.clone());
        }
    }
    (f0, f1)
}

/// The minimized union (disjunction) of two DNFs over a common universe.
fn union_minimized(a: &Hypergraph, b: &Hypergraph, n: usize) -> Hypergraph {
    let mut out = Hypergraph::new(n);
    for e in a.edges().iter().chain(b.edges()) {
        let mut e = e.clone();
        e.grow(n);
        out.add_edge(e);
    }
    out.minimize()
}

/// The variable with the highest total number of occurrences in `f` and `g`.
fn most_frequent_variable(f: &Hypergraph, g: &Hypergraph, n: usize) -> usize {
    let mut freq = vec![0usize; n];
    for e in f.edges().iter().chain(g.edges()) {
        for v in e.iter() {
            freq[v.index()] += 1;
        }
    }
    freq.iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// `2^{−k}` as an exact `f64` (powers of two are exactly representable all the
/// way into the subnormal range).  `f64::powi` lives in `std`, and building
/// the value from its bit pattern keeps the conditional-probabilities scores
/// bit-identical between the `std` and `no_std` builds.
fn pow_half(k: usize) -> f64 {
    if k <= 1022 {
        f64::from_bits((1023 - k as u64) << 52)
    } else if k <= 1074 {
        f64::from_bits(1u64 << (1074 - k))
    } else {
        0.0
    }
}

/// Constructs a counterexample when `Σ 2^{−|A|} + Σ 2^{−|B|} < 1` by the method of
/// conditional probabilities: assign variables one at a time, keeping the expected
/// number of "violated" terms (an `f`-term fully inside `T`, or a `g`-term fully
/// outside) below 1; the final assignment violates no term, so `f(T) = g(¬T) = 0`.
fn conditional_probabilities_counterexample(f: &Hypergraph, g: &Hypergraph, n: usize) -> VertexSet {
    let mut t = VertexSet::empty(n);
    let mut decided_false = VertexSet::empty(n);
    // Each side needs, for every edge, its intersection sizes with *both* partial
    // assignments: one joint arena pass per side instead of four edge-list scans.
    let expected = |t: &VertexSet, decided_false: &VertexSet| -> f64 {
        let mut total = 0.0;
        f.index()
            .for_each_intersection_pair(decided_false, t, |i, in_false, in_t| {
                // event: e ⊆ T.  Impossible if some vertex of e is decided false.
                if in_false == 0 {
                    let undecided = f.index().edge_size(i) - in_t as usize;
                    total += pow_half(undecided);
                }
            });
        g.index()
            .for_each_intersection_pair(t, decided_false, |i, in_t, in_false| {
                // event: e ⊆ V − T.  Impossible if some vertex of e is decided true.
                if in_t == 0 {
                    let undecided = g.index().edge_size(i) - in_false as usize;
                    total += pow_half(undecided);
                }
            });
        total
    };
    // Try each decision in place (insert, score, undo) instead of cloning the two
    // partial assignments once per variable.
    for i in 0..n {
        let v = Vertex::from(i);
        t.insert(v);
        let score_true = expected(&t, &decided_false);
        t.remove(v);
        decided_false.insert(v);
        let score_false = expected(&t, &decided_false);
        if score_true <= score_false {
            decided_false.remove(v);
            t.insert(v);
        }
    }
    t
}

/// Base case: `f` has at most two terms.  Its dual is computed exactly and compared
/// with `g`; on a mismatch a counterexample assignment is constructed from the
/// offending edge (see the case analysis in the module tests).
fn small_side_counterexample(f: &Hypergraph, g: &Hypergraph, n: usize) -> Option<VertexSet> {
    let tr_f = qld_hypergraph::transversal::minimal_transversals(f);
    if tr_f.same_edge_set(g) {
        return None;
    }
    // Some g-edge is not a minimal transversal of f.  Cross-intersection has already
    // been established, so it is a transversal; being absent from tr(f) it must be
    // non-minimal: shrink it and flip.
    for b in g.edges() {
        if !tr_f.contains_edge(b) {
            let reduced = f.minimize_transversal(b);
            let mut reduced_full = reduced;
            reduced_full.grow(n);
            // T = V − reduced: f(T) = 0 (reduced is a transversal of f), and no g-edge
            // fits inside `reduced` (it would contradict g's simplicity w.r.t. b, or be
            // b itself, which is strictly larger).
            return Some(reduced_full.complement(n));
        }
    }
    // Otherwise g ⊊ tr(f): some minimal transversal of f is missing from g.
    for t in tr_f.edges() {
        if !g.contains_edge(t) {
            let mut t_full = t.clone();
            t_full.grow(n);
            // T = V − t: f(T) = 0 and g(t) = 0 (no g-edge can sit inside a minimal
            // transversal other than itself).
            return Some(t_full.complement(n));
        }
    }
    unreachable!("tr(f) ≠ g but no discrepancy found")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counterexample::is_counterexample;
    use qld_core::verify_witness;
    use qld_hypergraph::generators;
    use qld_hypergraph::transversal::are_dual_exact;

    #[test]
    fn accepts_standard_dual_corpus() {
        let solver = FkASolver::new();
        for li in generators::standard_corpus() {
            let verdict = solver.decide(&li.g, &li.h).unwrap();
            assert_eq!(verdict.is_dual(), li.dual, "{}", li.name);
            if let DualityResult::NotDual(w) = &verdict {
                assert!(
                    verify_witness(&li.g, &li.h, w),
                    "{}: bad witness {w}",
                    li.name
                );
            }
        }
    }

    #[test]
    fn counterexamples_are_genuine() {
        for k in 2..=4 {
            let li = generators::matching_instance(k);
            for drop in 0..li.h.num_edges().min(3) {
                let broken =
                    generators::perturb(&li, generators::Perturbation::DropDualEdge, drop).unwrap();
                let mut stats = FkStats::default();
                let t = fk_counterexample(&broken.g, &broken.h, 0, &mut stats, None)
                    .unwrap()
                    .expect("perturbed instance must have a counterexample");
                assert!(is_counterexample(&broken.g, &broken.h, &t));
                assert!(stats.calls >= 1);
            }
        }
    }

    #[test]
    fn constants_and_degenerate_formulas() {
        let n = 3;
        let false_dnf = Hypergraph::new(n);
        let true_dnf = Hypergraph::from_edges(n, [VertexSet::empty(n)]);
        let solver = FkASolver::new();
        assert!(solver.is_dual(&false_dnf, &true_dnf).unwrap());
        assert!(solver.is_dual(&true_dnf, &false_dnf).unwrap());
        assert!(!solver.is_dual(&false_dnf, &false_dnf).unwrap());
        assert!(!solver.is_dual(&true_dnf, &true_dnf).unwrap());
        let k3 = Hypergraph::from_index_edges(3, &[&[0, 1], &[1, 2], &[0, 2]]);
        assert!(!solver.is_dual(&true_dnf, &k3).unwrap());
        assert!(!solver.is_dual(&k3, &false_dnf).unwrap());
    }

    #[test]
    fn volume_check_counterexample_is_valid() {
        // Large terms only: Σ 2^{-|E|} is tiny, so the volume check fires.
        let f = Hypergraph::from_index_edges(8, &[&[0, 1, 2, 3, 4]]);
        let g = Hypergraph::from_index_edges(8, &[&[0, 5, 6, 7]]);
        let t = conditional_probabilities_counterexample(&f, &g, 8);
        assert!(is_counterexample(&f, &g, &t));
        let mut stats = FkStats::default();
        let found = fk_counterexample(&f, &g, 0, &mut stats, None)
            .unwrap()
            .unwrap();
        assert!(is_counterexample(&f, &g, &found));
    }

    #[test]
    fn agrees_with_exact_duality_on_random_pairs() {
        for seed in 0..6 {
            let g = generators::random_simple_hypergraph(6, 5, 2..=3, seed);
            if g.is_empty() {
                continue;
            }
            let h = qld_hypergraph::transversal::minimal_transversals(&g);
            let solver = FkASolver::new();
            assert!(solver.is_dual(&g, &h).unwrap(), "seed {seed}");
            // perturb
            if h.num_edges() >= 2 {
                let mut broken = h.clone();
                broken.remove_edge(seed as usize % broken.num_edges());
                assert!(!solver.is_dual(&g, &broken).unwrap());
                assert!(!are_dual_exact(&broken, &g));
            }
        }
    }

    /// A scope that really runs each subtask on its own OS thread — test-only;
    /// the serving path injects subtasks into the engine's persistent pool.
    struct ThreadPool;
    struct ThreadScope {
        handles: Vec<std::thread::JoinHandle<()>>,
    }
    impl qld_core::SubtaskScope for ThreadScope {
        fn spawn(&mut self, task: Box<dyn FnOnce() + Send + 'static>) {
            self.handles.push(std::thread::spawn(task));
        }
        fn join(&mut self) {
            for h in self.handles.drain(..) {
                h.join().expect("subtask panicked");
            }
        }
    }
    impl qld_core::SubtaskPool for ThreadPool {
        fn scope(&self) -> Box<dyn qld_core::SubtaskScope + '_> {
            Box::new(ThreadScope {
                handles: Vec::new(),
            })
        }
        fn is_cancelled(&self) -> bool {
            false
        }
    }

    #[test]
    fn parallel_split_matches_sequential_answers() {
        let sequential = FkASolver::new();
        // Threshold 0 forces the split whenever the recursion reaches it; the
        // inline pool (1 worker) and a real thread pool must both reproduce the
        // sequential answer and witness, and agree on stats with each other.
        let inline = FkASolver::new().with_parallel(ParallelContext::inline(0));
        let threaded = FkASolver::new()
            .with_parallel(ParallelContext::new(std::sync::Arc::new(ThreadPool), 0));
        for li in generators::standard_corpus() {
            let seq = sequential.decide(&li.g, &li.h).unwrap();
            let (inl, inl_stats) = inline.decide_with_stats(&li.g, &li.h).unwrap();
            let (thr, thr_stats) = threaded.decide_with_stats(&li.g, &li.h).unwrap();
            assert_eq!(seq, inl, "inline split diverged on {}", li.name);
            assert_eq!(seq, thr, "threaded split diverged on {}", li.name);
            assert_eq!(inl_stats, thr_stats, "stats diverged on {}", li.name);
        }
        for k in 2..=4 {
            let li = generators::matching_instance(k);
            let broken =
                generators::perturb(&li, generators::Perturbation::DropDualEdge, 1).unwrap();
            let seq = sequential.decide(&broken.g, &broken.h).unwrap();
            let inl = inline.decide(&broken.g, &broken.h).unwrap();
            let thr = threaded.decide(&broken.g, &broken.h).unwrap();
            assert_eq!(seq, inl);
            assert_eq!(seq, thr);
        }
    }

    #[test]
    fn stats_reflect_recursion() {
        let li = generators::matching_instance(4);
        let solver = FkASolver::new();
        let (result, stats) = solver.decide_with_stats(&li.g, &li.h).unwrap();
        assert!(result.is_dual());
        assert!(
            stats.calls >= 3,
            "expected a non-trivial recursion, got {stats:?}"
        );
        assert!(stats.max_depth >= 1);
        assert_eq!(solver.name(), "fk-a");
    }
}
