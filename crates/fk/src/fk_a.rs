//! Fredman–Khachiyan algorithm A.
//!
//! The classical `n^{O(log n)}` self-reduction for monotone duality (Fredman &
//! Khachiyan, *On the Complexity of Dualization of Monotone Disjunctive Normal Forms*,
//! J. Algorithms 1996), cited by the paper as the starting point of all later
//! decomposition methods.  Writing `f = x·f₁ ∨ f₀` and `g = x·g₁ ∨ g₀` for a chosen
//! variable `x`, the pair `(f, g)` is dual iff `(f₀, g₀ ∨ g₁)` and `(f₀ ∨ f₁, g₀)` are
//! both dual; splitting on a *frequent* variable bounds the recursion depth.
//!
//! The implementation refutes duality with a **counterexample assignment** `t` such
//! that `f(t) = g(¬t)`, propagated back up through the recursion, and converted into a
//! structural witness by [`crate::counterexample::witness_from_assignment`].  It also
//! implements the volume check `Σ 2^{−|A|} + Σ 2^{−|B|} ≥ 1` of the original paper; when
//! the check fails, a counterexample is constructed deterministically by the method of
//! conditional probabilities.

use crate::counterexample::witness_from_assignment;
use qld_core::{DualError, DualInstance, DualityResult, DualitySolver};
use qld_hypergraph::{Hypergraph, Vertex, VertexSet};

/// Statistics of one Fredman–Khachiyan run (used by the experiment harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FkStats {
    /// Number of recursive calls (nodes of the recursion tree).
    pub calls: usize,
    /// Maximum recursion depth reached.
    pub max_depth: usize,
}

/// The Fredman–Khachiyan algorithm A as a [`DualitySolver`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FkASolver;

impl FkASolver {
    /// Creates the solver.
    pub fn new() -> Self {
        FkASolver
    }

    /// Decides duality and also returns recursion statistics.
    pub fn decide_with_stats(
        &self,
        g: &Hypergraph,
        h: &Hypergraph,
    ) -> Result<(DualityResult, FkStats), DualError> {
        // Validation (simplicity, common universe) is shared with the other solvers.
        let inst = DualInstance::new(g.clone(), h.clone())?;
        let mut stats = FkStats::default();
        let counterexample = fk_counterexample(inst.g(), inst.h(), 0, &mut stats);
        let result = match counterexample {
            None => DualityResult::Dual,
            Some(t) => {
                let witness = witness_from_assignment(inst.g(), inst.h(), &t)
                    .expect("FK produced an assignment that is not a counterexample");
                DualityResult::NotDual(witness)
            }
        };
        Ok((result, stats))
    }
}

impl DualitySolver for FkASolver {
    fn name(&self) -> &'static str {
        "fk-a"
    }

    fn decide(&self, g: &Hypergraph, h: &Hypergraph) -> Result<DualityResult, DualError> {
        Ok(self.decide_with_stats(g, h)?.0)
    }
}

/// Core recursion: returns `None` if `(f, g)` are dual, otherwise a counterexample
/// assignment `t` with `f(t) = g(¬t)`.
fn fk_counterexample(
    f: &Hypergraph,
    g: &Hypergraph,
    depth: usize,
    stats: &mut FkStats,
) -> Option<VertexSet> {
    stats.calls += 1;
    stats.max_depth = stats.max_depth.max(depth);
    let n = f.num_vertices().max(g.num_vertices());
    let f = f.minimize();
    let g = g.minimize();

    // --- base cases on constants -------------------------------------------------
    if f.is_empty() {
        // f ≡ false is dual exactly to g ≡ true.
        return if g.has_empty_edge() {
            None
        } else {
            Some(VertexSet::full(n)) // f(V)=0, g(∅)=0
        };
    }
    if g.is_empty() {
        return if f.has_empty_edge() {
            None
        } else {
            Some(VertexSet::empty(n)) // f(∅)=0, g(V)=0
        };
    }
    if f.has_empty_edge() {
        // f ≡ true; dual iff g ≡ false, i.e. g empty — but g is non-empty here.
        return Some(VertexSet::empty(n)); // f(∅)=1, g(V)=1
    }
    if g.has_empty_edge() {
        return Some(VertexSet::full(n)); // f(V)=1, g(∅)=1
    }

    // --- cross-intersection ------------------------------------------------------
    for a in f.edges() {
        for b in g.edges() {
            if a.is_disjoint(b) {
                // T = V − B: f(T) ⊇ A → 1, g(¬T) = g(B) ⊇ B → 1.
                let mut b_full = b.clone();
                b_full.grow(n);
                return Some(b_full.complement(n));
            }
        }
    }

    // --- volume check (Fredman–Khachiyan Lemma) ------------------------------------
    let volume: f64 = f
        .edges()
        .iter()
        .chain(g.edges())
        .map(|e| 0.5f64.powi(e.len() as i32))
        .sum();
    if volume < 1.0 {
        return Some(conditional_probabilities_counterexample(&f, &g, n));
    }

    // --- small base cases ----------------------------------------------------------
    if f.num_edges() <= 2 {
        return small_side_counterexample(&f, &g, n);
    }
    if g.num_edges() <= 2 {
        // Duality is symmetric; a counterexample for (g, f) complements into one for
        // (f, g): g(t) = f(¬t) implies f(¬t) = g(¬(¬t)).
        return small_side_counterexample(&g, &f, n).map(|t| t.complement(n));
    }

    // --- split on the most frequent variable ---------------------------------------
    let x = most_frequent_variable(&f, &g, n);
    let (f0, f1) = split(&f, x, n);
    let (g0, g1) = split(&g, x, n);

    // (i) f₀ dual to g₀ ∨ g₁ ?
    let g01 = union_minimized(&g0, &g1, n);
    if let Some(y) = fk_counterexample(&f0, &g01, depth + 1, stats) {
        // lift: x := 0 (y never contains x because neither sub-formula mentions it).
        let mut z = y;
        z.remove(Vertex::from(x));
        return Some(z);
    }
    // (ii) f₀ ∨ f₁ dual to g₀ ?
    let f01 = union_minimized(&f0, &f1, n);
    if let Some(y) = fk_counterexample(&f01, &g0, depth + 1, stats) {
        // lift: x := 1.
        let mut z = y;
        z.grow(n);
        z.insert(Vertex::from(x));
        return Some(z);
    }
    None
}

/// Splits a DNF on variable `x`: returns `(f₀, f₁)` with `f = x·f₁ ∨ f₀`.
fn split(f: &Hypergraph, x: usize, n: usize) -> (Hypergraph, Hypergraph) {
    let xv = Vertex::from(x);
    let mut f0 = Hypergraph::new(n);
    let mut f1 = Hypergraph::new(n);
    for e in f.edges() {
        if e.contains(xv) {
            f1.add_edge(e.without(xv));
        } else {
            f0.add_edge(e.clone());
        }
    }
    (f0, f1)
}

/// The minimized union (disjunction) of two DNFs over a common universe.
fn union_minimized(a: &Hypergraph, b: &Hypergraph, n: usize) -> Hypergraph {
    let mut out = Hypergraph::new(n);
    for e in a.edges().iter().chain(b.edges()) {
        let mut e = e.clone();
        e.grow(n);
        out.add_edge(e);
    }
    out.minimize()
}

/// The variable with the highest total number of occurrences in `f` and `g`.
fn most_frequent_variable(f: &Hypergraph, g: &Hypergraph, n: usize) -> usize {
    let mut freq = vec![0usize; n];
    for e in f.edges().iter().chain(g.edges()) {
        for v in e.iter() {
            freq[v.index()] += 1;
        }
    }
    freq.iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Constructs a counterexample when `Σ 2^{−|A|} + Σ 2^{−|B|} < 1` by the method of
/// conditional probabilities: assign variables one at a time, keeping the expected
/// number of "violated" terms (an `f`-term fully inside `T`, or a `g`-term fully
/// outside) below 1; the final assignment violates no term, so `f(T) = g(¬T) = 0`.
fn conditional_probabilities_counterexample(f: &Hypergraph, g: &Hypergraph, n: usize) -> VertexSet {
    let mut t = VertexSet::empty(n);
    let mut decided_false = VertexSet::empty(n);
    let expected = |t: &VertexSet, decided_false: &VertexSet| -> f64 {
        let mut total = 0.0;
        for e in f.edges() {
            // event: e ⊆ T.  Impossible if some vertex of e is decided false.
            if e.intersects(decided_false) {
                continue;
            }
            let undecided = e.len() - e.intersection_len(t);
            total += 0.5f64.powi(undecided as i32);
        }
        for e in g.edges() {
            // event: e ⊆ V − T.  Impossible if some vertex of e is decided true.
            if e.intersects(t) {
                continue;
            }
            let undecided = e.len() - e.intersection_len(decided_false);
            total += 0.5f64.powi(undecided as i32);
        }
        total
    };
    // Try each decision in place (insert, score, undo) instead of cloning the two
    // partial assignments once per variable.
    for i in 0..n {
        let v = Vertex::from(i);
        t.insert(v);
        let score_true = expected(&t, &decided_false);
        t.remove(v);
        decided_false.insert(v);
        let score_false = expected(&t, &decided_false);
        if score_true <= score_false {
            decided_false.remove(v);
            t.insert(v);
        }
    }
    t
}

/// Base case: `f` has at most two terms.  Its dual is computed exactly and compared
/// with `g`; on a mismatch a counterexample assignment is constructed from the
/// offending edge (see the case analysis in the module tests).
fn small_side_counterexample(f: &Hypergraph, g: &Hypergraph, n: usize) -> Option<VertexSet> {
    let tr_f = qld_hypergraph::transversal::minimal_transversals(f);
    if tr_f.same_edge_set(g) {
        return None;
    }
    // Some g-edge is not a minimal transversal of f.  Cross-intersection has already
    // been established, so it is a transversal; being absent from tr(f) it must be
    // non-minimal: shrink it and flip.
    for b in g.edges() {
        if !tr_f.contains_edge(b) {
            let reduced = f.minimize_transversal(b);
            let mut reduced_full = reduced;
            reduced_full.grow(n);
            // T = V − reduced: f(T) = 0 (reduced is a transversal of f), and no g-edge
            // fits inside `reduced` (it would contradict g's simplicity w.r.t. b, or be
            // b itself, which is strictly larger).
            return Some(reduced_full.complement(n));
        }
    }
    // Otherwise g ⊊ tr(f): some minimal transversal of f is missing from g.
    for t in tr_f.edges() {
        if !g.contains_edge(t) {
            let mut t_full = t.clone();
            t_full.grow(n);
            // T = V − t: f(T) = 0 and g(t) = 0 (no g-edge can sit inside a minimal
            // transversal other than itself).
            return Some(t_full.complement(n));
        }
    }
    unreachable!("tr(f) ≠ g but no discrepancy found")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counterexample::is_counterexample;
    use qld_core::verify_witness;
    use qld_hypergraph::generators;
    use qld_hypergraph::transversal::are_dual_exact;

    #[test]
    fn accepts_standard_dual_corpus() {
        let solver = FkASolver::new();
        for li in generators::standard_corpus() {
            let verdict = solver.decide(&li.g, &li.h).unwrap();
            assert_eq!(verdict.is_dual(), li.dual, "{}", li.name);
            if let DualityResult::NotDual(w) = &verdict {
                assert!(
                    verify_witness(&li.g, &li.h, w),
                    "{}: bad witness {w}",
                    li.name
                );
            }
        }
    }

    #[test]
    fn counterexamples_are_genuine() {
        for k in 2..=4 {
            let li = generators::matching_instance(k);
            for drop in 0..li.h.num_edges().min(3) {
                let broken =
                    generators::perturb(&li, generators::Perturbation::DropDualEdge, drop).unwrap();
                let mut stats = FkStats::default();
                let t = fk_counterexample(&broken.g, &broken.h, 0, &mut stats)
                    .expect("perturbed instance must have a counterexample");
                assert!(is_counterexample(&broken.g, &broken.h, &t));
                assert!(stats.calls >= 1);
            }
        }
    }

    #[test]
    fn constants_and_degenerate_formulas() {
        let n = 3;
        let false_dnf = Hypergraph::new(n);
        let true_dnf = Hypergraph::from_edges(n, [VertexSet::empty(n)]);
        let solver = FkASolver::new();
        assert!(solver.is_dual(&false_dnf, &true_dnf).unwrap());
        assert!(solver.is_dual(&true_dnf, &false_dnf).unwrap());
        assert!(!solver.is_dual(&false_dnf, &false_dnf).unwrap());
        assert!(!solver.is_dual(&true_dnf, &true_dnf).unwrap());
        let k3 = Hypergraph::from_index_edges(3, &[&[0, 1], &[1, 2], &[0, 2]]);
        assert!(!solver.is_dual(&true_dnf, &k3).unwrap());
        assert!(!solver.is_dual(&k3, &false_dnf).unwrap());
    }

    #[test]
    fn volume_check_counterexample_is_valid() {
        // Large terms only: Σ 2^{-|E|} is tiny, so the volume check fires.
        let f = Hypergraph::from_index_edges(8, &[&[0, 1, 2, 3, 4]]);
        let g = Hypergraph::from_index_edges(8, &[&[0, 5, 6, 7]]);
        let t = conditional_probabilities_counterexample(&f, &g, 8);
        assert!(is_counterexample(&f, &g, &t));
        let mut stats = FkStats::default();
        let found = fk_counterexample(&f, &g, 0, &mut stats).unwrap();
        assert!(is_counterexample(&f, &g, &found));
    }

    #[test]
    fn agrees_with_exact_duality_on_random_pairs() {
        for seed in 0..6 {
            let g = generators::random_simple_hypergraph(6, 5, 2..=3, seed);
            if g.is_empty() {
                continue;
            }
            let h = qld_hypergraph::transversal::minimal_transversals(&g);
            let solver = FkASolver::new();
            assert!(solver.is_dual(&g, &h).unwrap(), "seed {seed}");
            // perturb
            if h.num_edges() >= 2 {
                let mut broken = h.clone();
                broken.remove_edge(seed as usize % broken.num_edges());
                assert!(!solver.is_dual(&g, &broken).unwrap());
                assert!(!are_dual_exact(&broken, &g));
            }
        }
    }

    #[test]
    fn stats_reflect_recursion() {
        let li = generators::matching_instance(4);
        let solver = FkASolver::new();
        let (result, stats) = solver.decide_with_stats(&li.g, &li.h).unwrap();
        assert!(result.is_dual());
        assert!(
            stats.calls >= 3,
            "expected a non-trivial recursion, got {stats:?}"
        );
        assert!(stats.max_depth >= 1);
        assert_eq!(solver.name(), "fk-a");
    }
}
