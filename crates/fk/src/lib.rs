//! # qld-fk
//!
//! Classical baseline algorithms for the monotone duality problem, implementing the
//! same [`qld_core::DualitySolver`] interface as the decomposition-based solvers:
//!
//! * [`FkASolver`] — the Fredman–Khachiyan algorithm A (`n^{O(log n)}` self-reduction),
//!   with counterexample assignments propagated through the recursion;
//! * [`BergeSolver`] — explicit dualization by Berge multiplication and set comparison
//!   (output-exponential, exact);
//! * [`AssignmentBruteSolver`] — exhaustive check of `f(x) ≡ ¬g(¬x)` over all
//!   assignments (input-exponential, trivially correct).
//!
//! These are the comparison points of experiment E4 and the cross-validation oracles
//! used by the integration tests.

#![cfg_attr(all(not(feature = "std"), not(test)), no_std)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

extern crate alloc;

pub mod assignment;
pub mod berge;
pub mod counterexample;
pub mod fk_a;

pub use assignment::AssignmentBruteSolver;
pub use berge::BergeSolver;
pub use fk_a::{FkASolver, FkStats};
