//! `qld` — command-line front end of the batch query engine.
//!
//! ```text
//! qld check <G.qld> <H.qld>            decide duality of two hypergraph files
//! qld enumerate <G.qld> [--limit K]    enumerate minimal transversals
//! qld mine <REL.qld> --threshold Z     itemset-border identification
//!          [--g G.qld] [--h H.qld]
//! qld keys <TABLE.txt>                 enumerate minimal keys of a table
//! qld serve [--workers N] [...]        stream wire-format requests (stdin,
//!                                      --input FILE, or a --socket/--tcp
//!                                      daemon) to JSON-lines responses
//! qld front --shards N [...]           route wire requests across a
//!                                      supervised fleet of serve shards
//! ```
//!
//! All subcommands answer with JSON lines on stdout.  Common options:
//! `--workers N`, `--queue CAP`, `--no-cache`, `--cache-capacity N`,
//! `--cache-ttl SECS`, `--solver auto|bm|quadlog|quadlog-recompute`.  File
//! arguments use the line-oriented `.qld` syntax of `qld_hypergraph::format`
//! (relations: one row per line; key tables: one row of integer attribute
//! values per line); `-` reads the operand from stdin.  The wire protocol is
//! specified in `docs/WIRE.md`.

use qld_engine::{
    wire, Engine, EngineConfig, FixedPolicy, OrderMode, Request, ServeOptions, SizeThresholdPolicy,
    SolverKind, SolverPolicy, StreamEvent, StreamRunOptions,
};
use qld_hypergraph::{format, Hypergraph};
use std::io::{BufReader, Read, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
qld — batch query engine over the quadratic-logspace duality solvers

USAGE:
  qld check <G.qld> <H.qld> [options]       decide whether G and H are dual
  qld enumerate <G.qld> [--limit K] [--stream] [opts]
                                            enumerate minimal transversals of G
  qld mine <REL.qld> --threshold Z [--g G.qld] [--h H.qld] [--full] [--stream]
                                            frequent-itemset border identification
                                            (--full: run the whole
                                            dualize-and-advance loop)
  qld keys <TABLE.txt> [options]            enumerate minimal keys of a relation
  qld serve [--input FILE | --socket PATH | --tcp ADDR] [options]
                                            serve wire-format request lines
  qld front (--socket PATH | --tcp ADDR) [--shards N] [options]
                                            shard-fleet router: spawn and
                                            supervise N `qld serve` backends
                                            and route wire requests to them by
                                            consistent-hashed cache key

OPTIONS:
  --workers N          worker threads (default: available parallelism, cap 8)
  --parallel-threshold N
                       split a duality call into work-stealing subtasks on
                       the shared pool once its work size |V|*(|G|+|H|)
                       reaches N (default 32768; 0 = always split, a huge N
                       disables intra-query parallelism)
  --local-threshold N  answer a one-shot check request inline on its session
                       thread (no pool round-trip, no cache) when its work
                       size |V|*(|G|+|H|) is below N (default 0 = disabled)
  --queue CAP          bounded submission queue capacity (default 256)
  --no-cache           disable the result cache (also disables single-flight
                       request coalescing, which keys on cache keys)
  --no-coalesce        disable single-flight coalescing of concurrent
                       identical requests (each duplicate runs the solver)
  --cache-capacity N   LRU result-cache entry bound (default 65536)
  --cache-ttl SECS     expire cache entries SECS seconds after insertion
                       (0 = no TTL, the default)
  --cache-file PATH    persist the result cache across restarts: restore it
                       from PATH at startup (if the snapshot exists) and, for
                       `serve`, write it back on graceful shutdown
  --solver S           auto | bm | quadlog | quadlog-recompute  (default auto)
  --limit K            (enumerate) stop after K transversals
  --stream             (enumerate, mine --full) stream each result the moment
                       it is found: chunk frames, then a done frame; Ctrl-C
                       cancels the in-flight job at its next yield boundary
                       and still prints the done frame with the partial result
  --threshold Z        (mine) frequency threshold: frequent iff freq > Z
  --full               (mine) run the full dualize-and-advance loop: compute
                       both complete borders instead of one identification step
  --g FILE             (mine) known minimal infrequent itemsets
  --h FILE             (mine) known maximal frequent itemsets
  --input FILE         (serve) read request lines from FILE instead of stdin
  --socket PATH        (serve) run as a daemon on a Unix socket at PATH
  --tcp ADDR           (serve) run as a daemon on a TCP address, e.g.
                       127.0.0.1:7878 (the protocol is unauthenticated:
                       bind loopback unless the network is trusted)
  --order MODE         (serve) input (default: responses in request order) or
                       arrival (stream responses as they complete)
  --max-inflight N     (serve) per-session quota: reject (error code `quota`)
                       any request arriving while N of the session's requests
                       are still unanswered
  --max-items N        (serve) per-session quota: any single request stops
                       after yielding N result items (halted: max-items)
  --user-rate RATE     (serve, front) per-user admission quota: requests
                       carrying auth=<user> are admitted at RATE requests
                       per second per user (token bucket; may be fractional)
                       and rejected with a `quota` error beyond it
  --user-burst N       (serve, front) token-bucket burst: how many requests
                       a user may issue at once before the rate applies
                       (default: RATE rounded up, at least 1)
  --shards N           (front) number of backend serve shards (default 2)
  --dir DIR            (front) directory for the shard sockets and cache
                       snapshots (default: <socket>.shards; required with
                       --tcp)
  --policy P           (front) shard routing policy: hash (consistent-hash
                       cache affinity, the default) | least-loaded | sticky
  --shard-workers N    (front) worker threads per shard
  --shard-bin PATH     (front) qld binary to spawn shards from (default:
                       this executable)
  --probe-ms MS        (front) supervisor health-probe interval (default 200)
  --no-retry           (front) answer requests lost to a dying shard with an
                       `internal` error instead of retrying them once on a
                       surviving shard

A `--socket`/`--tcp` daemon shuts down gracefully on SIGINT or SIGTERM:
in-flight responses are drained, the cache snapshot is written (with
--cache-file), and the process exits 0 after printing a final summary.

A `front` daemon additionally treats SIGUSR1 as a rolling-restart request:
shards are drained and respawned one at a time (each writes its cache
snapshot on the way down, so it restarts hot), and with 2+ shards the fleet
keeps answering throughout.  SIGINT/SIGTERM stop the router and gracefully
terminate every shard.  Crashed shards are respawned automatically.

WIRE FORMAT (one request per line, for `serve`; full spec in docs/WIRE.md):
  check <G> <H>           e.g.  check 0,1;2,3 0,2;0,3;1,2;1,3
  enumerate <G> [limit=K]
  mine <REL> z=<Z> [g=<G>] [h=<H>] [full=true]
  keys <TABLE>            e.g.  keys 1,2;1,3
  stats                   engine/cache counters snapshot
  cancel id=<N>           stop the in-flight request with sequence number N
Every line also accepts id=<TOKEN> (echoed back as client_id),
order=input|arrival, solver=<NAME>, and stream=true (incremental chunk
frames + a done frame).  Inline families: edges `;`-separated, vertices
`,`-separated, optional `n=N:` prefix; `-` = no edges, `.` = the empty
edge.  Responses are JSON lines.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("qld: {message}");
            ExitCode::from(2)
        }
    }
}

/// Options shared by all subcommands.
struct Options {
    workers: Option<usize>,
    parallel_threshold: Option<usize>,
    local_threshold: Option<usize>,
    queue: usize,
    cache: bool,
    coalesce: bool,
    cache_capacity: Option<usize>,
    cache_ttl: Option<Duration>,
    cache_file: Option<String>,
    solver: Option<SolverKind>,
    limit: Option<usize>,
    stream: bool,
    threshold: Option<usize>,
    full: bool,
    g_file: Option<String>,
    h_file: Option<String>,
    input: Option<String>,
    socket: Option<String>,
    tcp: Option<String>,
    order: OrderMode,
    max_inflight: Option<usize>,
    max_items: Option<u64>,
    user_rate: Option<f64>,
    user_burst: Option<f64>,
    shards: Option<usize>,
    dir: Option<String>,
    shard_policy: Option<String>,
    shard_workers: Option<usize>,
    shard_bin: Option<String>,
    probe_ms: Option<u64>,
    no_retry: bool,
    positional: Vec<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workers: None,
        parallel_threshold: None,
        local_threshold: None,
        queue: 256,
        cache: true,
        coalesce: true,
        cache_capacity: None,
        cache_ttl: None,
        cache_file: None,
        solver: None,
        limit: None,
        stream: false,
        threshold: None,
        full: false,
        g_file: None,
        h_file: None,
        input: None,
        socket: None,
        tcp: None,
        order: OrderMode::Input,
        max_inflight: None,
        max_items: None,
        user_rate: None,
        user_burst: None,
        shards: None,
        dir: None,
        shard_policy: None,
        shard_workers: None,
        shard_bin: None,
        probe_ms: None,
        no_retry: false,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} requires a value"))
                .map(str::to_string)
        };
        match arg.as_str() {
            "--workers" => opts.workers = Some(parse_num(&value_of("--workers")?, "--workers")?),
            "--parallel-threshold" => {
                opts.parallel_threshold = Some(parse_num(
                    &value_of("--parallel-threshold")?,
                    "--parallel-threshold",
                )?)
            }
            "--local-threshold" => {
                opts.local_threshold = Some(parse_num(
                    &value_of("--local-threshold")?,
                    "--local-threshold",
                )?)
            }
            "--queue" => opts.queue = parse_num(&value_of("--queue")?, "--queue")?,
            "--no-cache" => opts.cache = false,
            "--no-coalesce" => opts.coalesce = false,
            "--cache-capacity" => {
                opts.cache_capacity = Some(parse_num(
                    &value_of("--cache-capacity")?,
                    "--cache-capacity",
                )?)
            }
            "--cache-ttl" => {
                let secs = parse_num(&value_of("--cache-ttl")?, "--cache-ttl")?;
                // 0 means "no TTL", not "everything already expired".
                opts.cache_ttl = (secs > 0).then(|| Duration::from_secs(secs as u64));
            }
            "--cache-file" => opts.cache_file = Some(value_of("--cache-file")?),
            "--socket" => opts.socket = Some(value_of("--socket")?),
            "--tcp" => opts.tcp = Some(value_of("--tcp")?),
            "--order" => {
                let name = value_of("--order")?;
                opts.order = OrderMode::from_name(&name)
                    .ok_or_else(|| format!("--order: unknown mode `{name}`"))?;
            }
            "--solver" => {
                let name = value_of("--solver")?;
                opts.solver = match name.as_str() {
                    "auto" => None,
                    other => Some(
                        SolverKind::from_name(other)
                            .ok_or_else(|| format!("unknown solver `{other}`"))?,
                    ),
                };
            }
            "--limit" => opts.limit = Some(parse_num(&value_of("--limit")?, "--limit")?),
            "--stream" => opts.stream = true,
            "--full" => opts.full = true,
            "--threshold" => {
                opts.threshold = Some(parse_num(&value_of("--threshold")?, "--threshold")?)
            }
            "--max-inflight" => {
                opts.max_inflight = Some(parse_num(&value_of("--max-inflight")?, "--max-inflight")?)
            }
            "--max-items" => {
                opts.max_items = Some(parse_num(&value_of("--max-items")?, "--max-items")? as u64)
            }
            "--user-rate" => {
                opts.user_rate = Some(parse_rate(&value_of("--user-rate")?, "--user-rate")?)
            }
            "--user-burst" => {
                opts.user_burst = Some(parse_rate(&value_of("--user-burst")?, "--user-burst")?)
            }
            "--shards" => opts.shards = Some(parse_num(&value_of("--shards")?, "--shards")?),
            "--dir" => opts.dir = Some(value_of("--dir")?),
            "--policy" => opts.shard_policy = Some(value_of("--policy")?),
            "--shard-workers" => {
                opts.shard_workers =
                    Some(parse_num(&value_of("--shard-workers")?, "--shard-workers")?)
            }
            "--shard-bin" => opts.shard_bin = Some(value_of("--shard-bin")?),
            "--probe-ms" => {
                opts.probe_ms = Some(parse_num(&value_of("--probe-ms")?, "--probe-ms")? as u64)
            }
            "--no-retry" => opts.no_retry = true,
            "--g" => opts.g_file = Some(value_of("--g")?),
            "--h" => opts.h_file = Some(value_of("--h")?),
            "--input" => opts.input = Some(value_of("--input")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            other => opts.positional.push(other.to_string()),
        }
    }
    Ok(opts)
}

fn parse_num(value: &str, flag: &str) -> Result<usize, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: invalid number `{value}`"))
}

fn parse_rate(value: &str, flag: &str) -> Result<f64, String> {
    let parsed: f64 = value
        .parse()
        .map_err(|_| format!("{flag}: invalid number `{value}`"))?;
    if parsed.is_finite() && parsed > 0.0 {
        Ok(parsed)
    } else {
        Err(format!("{flag}: must be a positive number, got `{value}`"))
    }
}

/// Builds the shared per-user admission buckets from `--user-rate` /
/// `--user-burst`.  `--user-burst` alone is rejected: a burst without a
/// refill rate would silently never throttle anyone.
fn user_quota_from(opts: &Options) -> Result<Option<Arc<qld_engine::UserBuckets>>, String> {
    match (opts.user_rate, opts.user_burst) {
        (Some(rate), burst) => {
            let burst = burst.unwrap_or_else(|| rate.ceil().max(1.0));
            Ok(Some(Arc::new(qld_engine::UserBuckets::new(rate, burst))))
        }
        (None, Some(_)) => Err("--user-burst requires --user-rate".to_string()),
        (None, None) => Ok(None),
    }
}

fn engine_from(opts: &Options) -> Engine {
    let policy: Arc<dyn SolverPolicy> = match opts.solver {
        Some(kind) => Arc::new(FixedPolicy(kind)),
        None => Arc::new(SizeThresholdPolicy::default()),
    };
    let defaults = EngineConfig::default();
    Engine::new(EngineConfig {
        workers: opts.workers.unwrap_or(defaults.workers),
        queue_capacity: opts.queue,
        cache: opts.cache,
        coalesce: opts.coalesce,
        cache_capacity: opts.cache_capacity.unwrap_or(defaults.cache_capacity),
        cache_ttl: opts.cache_ttl,
        policy,
        cache_file: opts.cache_file.as_ref().map(std::path::PathBuf::from),
        parallel_threshold: opts
            .parallel_threshold
            .unwrap_or(defaults.parallel_threshold),
        local_threshold: opts.local_threshold.unwrap_or(defaults.local_threshold),
    })
}

fn read_operand(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("stdin: {e}"))?;
        Ok(text)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    }
}

fn load_hypergraph(path: &str) -> Result<Hypergraph, String> {
    let text = read_operand(path)?;
    format::from_text(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_relation(path: &str) -> Result<qld_datamining::BooleanRelation, String> {
    // Relations reuse the `.qld` line syntax, but rows are a multiset: parse
    // line by line instead of going through the simple-hypergraph parser.
    let text = read_operand(path)?;
    let mut inline = String::new();
    let mut declared_n = None;
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            for token in rest.split_whitespace() {
                if let Some(v) = token.strip_prefix("n=") {
                    declared_n = v.parse::<usize>().ok();
                }
            }
            continue;
        }
        if !inline.is_empty() {
            inline.push(';');
        }
        inline.push_str(&line.split_whitespace().collect::<Vec<_>>().join(","));
    }
    let token = match declared_n {
        Some(n) => format!("n={n}:{}", if inline.is_empty() { "-" } else { &inline }),
        None if inline.is_empty() => "-".to_string(),
        None => inline,
    };
    wire::parse_relation(&token).map_err(|e| format!("{path}: {e}"))
}

fn load_key_table(path: &str) -> Result<qld_keys::RelationInstance, String> {
    let text = read_operand(path)?;
    let mut rows: Vec<Vec<u32>> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut row = Vec::new();
        for field in line.split_whitespace() {
            row.push(
                field
                    .parse::<u32>()
                    .map_err(|_| format!("{path}:{}: invalid value `{field}`", lineno + 1))?,
            );
        }
        rows.push(row);
    }
    let width = rows.first().map_or(0, Vec::len);
    if rows.iter().any(|r| r.len() != width) {
        return Err(format!("{path}: ragged table (rows must have equal width)"));
    }
    Ok(qld_keys::RelationInstance::from_rows(width, rows))
}

fn emit_one(engine: &Engine, request: Request) -> ExitCode {
    let response = engine.run_one(request);
    println!("{}", response.to_json_line());
    if response.is_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Runs one request in streaming mode: chunk frames are printed the moment
/// the job yields them, the done frame last.  Ctrl-C (SIGINT) cancels the
/// in-flight job cooperatively — the job stops at its next yield boundary
/// and the done frame still arrives, carrying the partial result with
/// `halted:"cancelled"` (a second Ctrl-C force-exits).
fn emit_streaming(engine: &Engine, request: Request) -> ExitCode {
    let handle = engine.run_streaming(request, StreamRunOptions::default());
    let cancel = handle.cancel_token();
    let armed = qld_engine::trip_on_signals(&[signal::Signal::Interrupt], move |_| {
        eprintln!("qld: cancelling the in-flight job (next yield boundary)");
        cancel.cancel();
    });
    if let Err(e) = armed {
        eprintln!("qld: warning: Ctrl-C cancellation unavailable: {e}");
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut ok = false;
    while let Some(event) = handle.next_event() {
        let (line, done_ok) = match &event {
            StreamEvent::Chunk(frame) => (frame.to_json_line(), None),
            StreamEvent::Done(response) => (response.to_json_line(), Some(response.is_ok())),
        };
        if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
            return ExitCode::from(1);
        }
        if let Some(done_ok) = done_ok {
            ok = done_ok;
            break;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first().map(String::as_str) else {
        print!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    let opts = parse_options(&args[1..])?;
    if command == "front" {
        // The router spawns the shard engines as child processes; it never
        // builds an in-process engine of its own.
        return run_front(&opts);
    }
    if command == "serve" {
        // Fail fast on an unwritable snapshot location: a daemon that only
        // discovers the problem at shutdown has already lost its cache.
        if let Some(path) = &opts.cache_file {
            qld_engine::probe_writable(path)
                .map_err(|e| format!("--cache-file {path}: not writable: {e}"))?;
        }
    }
    let engine = engine_from(&opts);
    report_cache_restore(&engine);
    match command {
        "check" => {
            let [g, h] = two_positional(&opts, "check <G.qld> <H.qld>")?;
            let request = Request::DecideDuality {
                g: load_hypergraph(&g)?,
                h: load_hypergraph(&h)?,
            };
            Ok(emit_one(&engine, request))
        }
        "enumerate" => {
            let g = one_positional(&opts, "enumerate <G.qld>")?;
            let request = Request::EnumerateTransversals {
                g: load_hypergraph(&g)?,
                limit: opts.limit,
            };
            Ok(if opts.stream {
                emit_streaming(&engine, request)
            } else {
                emit_one(&engine, request)
            })
        }
        "mine" => {
            let rel = one_positional(&opts, "mine <REL.qld> --threshold Z")?;
            let relation = load_relation(&rel)?;
            let threshold = opts
                .threshold
                .ok_or_else(|| "mine requires --threshold Z".to_string())?;
            let n = relation.num_items();
            let minimal_infrequent = match &opts.g_file {
                Some(path) => load_hypergraph(path)?,
                None => Hypergraph::new(n),
            };
            let maximal_frequent = match &opts.h_file {
                Some(path) => load_hypergraph(path)?,
                None => Hypergraph::new(n),
            };
            let request = if opts.full {
                Request::MineBorders {
                    relation,
                    threshold,
                    minimal_infrequent,
                    maximal_frequent,
                }
            } else {
                Request::IdentifyItemsetBorders {
                    relation,
                    threshold,
                    minimal_infrequent,
                    maximal_frequent,
                }
            };
            Ok(if opts.stream {
                emit_streaming(&engine, request)
            } else {
                emit_one(&engine, request)
            })
        }
        "keys" => {
            let table = one_positional(&opts, "keys <TABLE.txt>")?;
            let request = Request::FindMinimalKeys {
                instance: load_key_table(&table)?,
            };
            Ok(emit_one(&engine, request))
        }
        "serve" => {
            if !opts.positional.is_empty() {
                return Err(
                    "serve takes no positional arguments (use --input FILE, --socket PATH, or --tcp ADDR)"
                        .to_string(),
                );
            }
            let serve_options = ServeOptions {
                order: opts.order,
                max_inflight: opts.max_inflight,
                max_items: opts.max_items,
                user_quota: user_quota_from(&opts)?,
                ..ServeOptions::default()
            };
            let daemon_modes = [
                opts.socket.is_some(),
                opts.tcp.is_some(),
                opts.input.is_some(),
            ];
            if daemon_modes.iter().filter(|&&m| m).count() > 1 {
                return Err("--socket, --tcp, and --input are mutually exclusive".to_string());
            }
            if let Some(socket) = &opts.socket {
                return serve_socket(engine, socket, serve_options);
            }
            if let Some(addr) = &opts.tcp {
                return serve_tcp(engine, addr, serve_options);
            }
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            let summary = match &opts.input {
                Some(path) if path != "-" => {
                    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
                    engine
                        .serve_with(BufReader::new(file), &mut out, &serve_options)
                        .map_err(|e| format!("serve: {e}"))?
                }
                _ => engine
                    .serve_with(BufReader::new(std::io::stdin()), &mut out, &serve_options)
                    .map_err(|e| format!("serve: {e}"))?,
            };
            out.flush().map_err(|e| format!("serve: {e}"))?;
            let cache = engine.cache_stats();
            eprintln!(
                "qld serve: {} request(s), {} error(s), cache {} hit(s) / {} miss(es) / {} eviction(s), {} worker(s)",
                summary.requests,
                summary.errors,
                cache.hits,
                cache.misses,
                cache.evictions,
                engine.config().workers
            );
            save_cache_snapshot(&engine);
            Ok(ExitCode::SUCCESS)
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand `{other}` (see `qld --help`)")),
    }
}

/// Reports entries restored from the configured cache snapshot — or the
/// reason a configured warm start failed (the command still runs, cold).
/// Called for every subcommand: a corrupt `--cache-file` must never be
/// silently ignored, whichever way the engine was started.
fn report_cache_restore(engine: &Engine) {
    if let Some(reason) = engine.cache_restore_error() {
        eprintln!("qld: warning: cache snapshot not restored: {reason}");
    } else if engine.cache_restored() > 0 {
        eprintln!(
            "qld: restored {} cache entry(ies) from the snapshot",
            engine.cache_restored()
        );
    }
}

/// Writes the configured cache snapshot (if `--cache-file` was given).  A
/// failed write is reported but does not turn a clean shutdown into a failed
/// exit — the responses already served stay valid.
fn save_cache_snapshot(engine: &Engine) {
    match engine.save_configured_cache_snapshot() {
        Ok(Some(written)) => {
            eprintln!("qld serve: wrote cache snapshot ({written} entry(ies))");
        }
        Ok(None) => {}
        Err(e) => eprintln!("qld serve: warning: cache snapshot not written: {e}"),
    }
}

/// Arms SIGINT/SIGTERM to trip `shutdown` (a captured server shutdown
/// handle), so `kill -TERM` or Ctrl-C drains the daemon instead of killing it
/// mid-response.  On platforms without the signal shim backend the daemon
/// still runs; it just cannot be stopped gracefully from outside.
fn arm_shutdown_signals(shutdown: impl FnOnce() + Send + 'static) {
    use signal::Signal;
    let armed = qld_engine::trip_on_signals(&[Signal::Interrupt, Signal::Terminate], move |sig| {
        eprintln!(
            "qld serve: received {}, draining connections and shutting down",
            sig.name()
        );
        shutdown();
    });
    match armed {
        Ok(()) => eprintln!("qld serve: SIGINT/SIGTERM will drain connections and exit cleanly"),
        Err(e) => eprintln!("qld serve: warning: signal-driven shutdown unavailable: {e}"),
    }
}

/// Prints the final daemon summary and writes the cache snapshot.
fn finish_daemon(engine: &Engine, summary: qld_engine::TransportSummary) {
    eprintln!(
        "qld serve: {} connection(s), {} request(s), {} error(s), {} panicked session(s)",
        summary.connections, summary.requests, summary.errors, summary.panicked
    );
    save_cache_snapshot(engine);
}

/// Runs the persistent daemon: bind the Unix socket and serve connections
/// until a SIGINT/SIGTERM (or the shutdown handle) drains the accept loop.
#[cfg(unix)]
fn serve_socket(engine: Engine, socket: &str, options: ServeOptions) -> Result<ExitCode, String> {
    let engine = Arc::new(engine);
    let server = qld_engine::SocketServer::bind(socket).map_err(|e| format!("{socket}: {e}"))?;
    eprintln!(
        "qld serve: listening on {} ({} worker(s), order={})",
        server.path().display(),
        engine.config().workers,
        options.order.name()
    );
    let handle = server.shutdown_handle();
    arm_shutdown_signals(move || handle.shutdown());
    let summary = server
        .run(&engine, options)
        .map_err(|e| format!("serve: {e}"))?;
    finish_daemon(&engine, summary);
    Ok(ExitCode::SUCCESS)
}

#[cfg(not(unix))]
fn serve_socket(
    _engine: Engine,
    _socket: &str,
    _options: ServeOptions,
) -> Result<ExitCode, String> {
    Err("--socket requires a Unix platform (use --tcp ADDR instead)".to_string())
}

/// Runs the persistent TCP daemon: bind the address and serve connections
/// until a SIGINT/SIGTERM (or the shutdown handle) drains the accept loop.
fn serve_tcp(engine: Engine, addr: &str, options: ServeOptions) -> Result<ExitCode, String> {
    let engine = Arc::new(engine);
    let server = qld_engine::TcpServer::bind(addr).map_err(|e| format!("{addr}: {e}"))?;
    eprintln!(
        "qld serve: listening on tcp://{} ({} worker(s), order={})",
        server.local_addr(),
        engine.config().workers,
        options.order.name()
    );
    let handle = server.shutdown_handle();
    arm_shutdown_signals(move || handle.shutdown());
    let summary = server
        .run(&engine, options)
        .map_err(|e| format!("serve: {e}"))?;
    finish_daemon(&engine, summary);
    Ok(ExitCode::SUCCESS)
}

/// Runs the fleet router daemon: spawn and supervise the shards, then serve
/// the router's own socket until SIGINT/SIGTERM drains it.  SIGUSR1 rolls
/// the fleet (drain + respawn one shard at a time).
#[cfg(unix)]
fn run_front(opts: &Options) -> Result<ExitCode, String> {
    use qld_front::{policy_from_name, Fleet, FleetConfig, Router};

    if !opts.positional.is_empty() {
        return Err("front takes no positional arguments".to_string());
    }
    if opts.socket.is_some() && opts.tcp.is_some() {
        return Err("--socket and --tcp are mutually exclusive".to_string());
    }
    if opts.socket.is_none() && opts.tcp.is_none() {
        return Err("front requires --socket PATH or --tcp ADDR".to_string());
    }
    let shards = opts.shards.unwrap_or(2);
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let dir = match (&opts.dir, &opts.socket) {
        (Some(dir), _) => std::path::PathBuf::from(dir),
        (None, Some(socket)) => std::path::PathBuf::from(format!("{socket}.shards")),
        (None, None) => {
            return Err("front --tcp requires --dir DIR for the shard sockets".to_string())
        }
    };
    let binary = match &opts.shard_bin {
        Some(path) => std::path::PathBuf::from(path),
        None => std::env::current_exe()
            .map_err(|e| format!("cannot locate the qld binary for shard spawning: {e}"))?,
    };
    let policy_name = opts.shard_policy.as_deref().unwrap_or("hash");
    let policy = policy_from_name(policy_name, shards).ok_or_else(|| {
        format!("--policy: unknown policy `{policy_name}` (hash | least-loaded | sticky)")
    })?;
    let mut config = FleetConfig::new(shards, binary, dir.clone());
    config.spec.workers = opts.shard_workers;
    if let Some(ms) = opts.probe_ms {
        config.probe_interval = Duration::from_millis(ms.max(10));
    }
    let fleet = Fleet::start(config).map_err(|e| format!("front: {e}"))?;
    eprintln!(
        "qld front: supervising {} shard(s) under {} (policy={}, retry={})",
        shards,
        dir.display(),
        policy.name(),
        !opts.no_retry
    );
    let user_quota = user_quota_from(opts)?;
    if let Some(quota) = &user_quota {
        eprintln!(
            "qld front: per-user admission at {} req/s (burst {})",
            quota.rate_per_sec(),
            quota.burst()
        );
    }
    let router = Router::with_user_quota(Arc::clone(&fleet), policy, !opts.no_retry, user_quota);
    arm_rolling_restart(&fleet);
    let summary = if let Some(socket) = &opts.socket {
        let server =
            qld_engine::SocketServer::bind(socket).map_err(|e| format!("{socket}: {e}"))?;
        eprintln!("qld front: listening on {}", server.path().display());
        let handle = server.shutdown_handle();
        arm_shutdown_signals(move || handle.shutdown());
        server
            .run_with(Arc::new(qld_front::session_handler(router)))
            .map_err(|e| format!("front: {e}"))?
    } else {
        let addr = opts.tcp.as_deref().expect("checked above");
        let server = qld_engine::TcpServer::bind(addr).map_err(|e| format!("{addr}: {e}"))?;
        eprintln!("qld front: listening on tcp://{}", server.local_addr());
        let handle = server.shutdown_handle();
        arm_shutdown_signals(move || handle.shutdown());
        server
            .run_with(Arc::new(qld_front::session_handler(router)))
            .map_err(|e| format!("front: {e}"))?
    };
    eprintln!(
        "qld front: {} connection(s), {} request(s), {} error(s), {} panicked session(s), {} shard respawn(s)",
        summary.connections, summary.requests, summary.errors, summary.panicked,
        fleet.total_respawns()
    );
    fleet.shutdown();
    Ok(ExitCode::SUCCESS)
}

#[cfg(not(unix))]
fn run_front(_opts: &Options) -> Result<ExitCode, String> {
    Err("front requires a Unix platform (shards are supervised child processes)".to_string())
}

/// Arms SIGUSR1 to trigger a rolling restart of the fleet: each delivery
/// drains and respawns the shards one at a time.  Unlike the shutdown
/// signals, repeated deliveries are welcome — every one rolls the fleet
/// again.
#[cfg(unix)]
fn arm_rolling_restart(fleet: &Arc<qld_front::Fleet>) {
    let flag = match signal::install(signal::Signal::User1) {
        Ok(flag) => flag,
        Err(e) => {
            eprintln!("qld front: warning: SIGUSR1 rolling restart unavailable: {e}");
            return;
        }
    };
    eprintln!("qld front: SIGUSR1 triggers a rolling restart of the shards");
    let fleet = Arc::clone(fleet);
    std::thread::spawn(move || {
        let mut seen = 0u64;
        loop {
            let deliveries = flag.deliveries();
            if deliveries > seen {
                seen = deliveries;
                eprintln!("qld front: SIGUSR1 received, rolling the shards");
                match fleet.rolling_restart() {
                    Ok(()) => eprintln!("qld front: rolling restart complete"),
                    Err(e) => eprintln!("qld front: rolling restart failed: {e}"),
                }
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    });
}

fn one_positional(opts: &Options, usage: &str) -> Result<String, String> {
    match opts.positional.as_slice() {
        [one] => Ok(one.clone()),
        _ => Err(format!("usage: qld {usage}")),
    }
}

fn two_positional(opts: &Options, usage: &str) -> Result<[String; 2], String> {
    match opts.positional.as_slice() {
        [a, b] => Ok([a.clone(), b.clone()]),
        _ => Err(format!("usage: qld {usage}")),
    }
}
