//! Router-level single-flight coalescing: duplicate one-shot misses from
//! different client sessions reach a shard exactly once.
//!
//! The engine already coalesces duplicates *within* one shard process (see
//! `qld-engine`'s flight layer), and the router's hash-affinity policy sends
//! identical keys to the same shard — but every forwarded duplicate still
//! costs a shard round trip, an upstream write, and a shard-session slot.
//! This registry closes that gap at the router: the first one-shot query for
//! a key (across **all** client sessions of the daemon) is forwarded as the
//! flight's *leader*; concurrent duplicates enroll as *followers* and are
//! answered from the leader's terminal frame, with only the `id` /
//! `client_id` envelope rewritten per follower.
//!
//! Streamed queries never coalesce at the router (replaying a partially
//! relayed stream per follower would need the full chunk history; the
//! engine's on-shard fan-out already dedups them), and neither do control
//! lines (`stats`, `cancel`) or unparseable lines.
//!
//! Leader loss does not kill a flight: when the leader's terminal says
//! `halted:"cancelled"` (its client cancelled it) or its shard connection
//! dies with retries exhausted, one live follower is **promoted** — its own
//! session forwards its original line as the flight's new leader, and the
//! remaining followers keep waiting on the same flight.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::lock_ignoring_poison as lock;

/// The follower half of the router↔session interface: how a flight delivers
/// a terminal line to (or re-dispatches a promoted leader on) a client
/// session other than the one that forwarded the leader.
pub(crate) trait CoalesceSession: Send + Sync {
    /// Whether the session's client is gone (deliveries would be dropped).
    fn is_aborted(&self) -> bool;
    /// Writes one fully rendered response line to the session's client,
    /// counts it in the session summary, and releases the pending slot the
    /// follower held.
    fn deliver(&self, line: &str, error: bool);
    /// Releases a follower's pending slot without delivering anything (the
    /// follower was promoted away or its session already aborted).
    fn release(&self);
    /// Promotion: forward `raw` on this session as the new leader of the
    /// flight keyed `key`, then release the pending slot.  The forwarded
    /// route keeps the flight key, so its terminal settles the remaining
    /// followers.
    fn redispatch(self: Arc<Self>, seq: u64, raw: String, key: String, client_id: Option<String>);
}

/// One enrolled duplicate, waiting on another request's terminal frame.
pub(crate) struct FrontFollower {
    pub(crate) session: Arc<dyn CoalesceSession>,
    /// The owning session's router-wide token (identity for cancel lookup).
    pub(crate) token: u64,
    /// The request's sequence number within its own client session.
    pub(crate) seq: u64,
    /// The follower's own correlation token (spliced into its terminal).
    pub(crate) client_id: Option<String>,
    /// The original wire line, verbatim, in case this follower is promoted.
    pub(crate) raw: String,
}

/// The daemon-wide registry of router-coalesced flights, keyed by the same
/// canonical cache key the engine's flight table uses.  Shared by every
/// client session of a `qld front` daemon — coalescing works *across*
/// sessions, which is exactly what a per-shard layer cannot do.
#[derive(Default)]
pub(crate) struct FrontFlights {
    inner: Mutex<HashMap<String, Vec<FrontFollower>>>,
    /// Flights led (coalescible forwards) since startup.
    led: AtomicU64,
    /// Followers enrolled (shard round trips avoided) since startup.
    coalesced: AtomicU64,
}

impl FrontFlights {
    /// Flights led since startup (the front `stats` `flights` field).
    pub(crate) fn led(&self) -> u64 {
        self.led.load(Ordering::Relaxed)
    }

    /// Followers enrolled since startup (the front `coalesced` field).
    pub(crate) fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Registers interest in `key`: `true` means the caller leads a fresh
    /// flight and must forward the line; `false` means the request enrolled
    /// as a follower of an in-flight leader (`make` is called only then).
    pub(crate) fn lead_or_join(&self, key: &str, make: impl FnOnce() -> FrontFollower) -> bool {
        let mut map = lock(&self.inner);
        match map.entry(key.to_string()) {
            Entry::Occupied(mut entry) => {
                entry.get_mut().push(make());
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                false
            }
            Entry::Vacant(slot) => {
                slot.insert(Vec::new());
                self.led.fetch_add(1, Ordering::Relaxed);
                true
            }
        }
    }

    /// Ends the flight, returning every enrolled follower for settlement.
    pub(crate) fn take(&self, key: &str) -> Vec<FrontFollower> {
        lock(&self.inner).remove(key).unwrap_or_default()
    }

    /// Pops the oldest live follower to become the flight's new leader,
    /// releasing (and dropping) aborted ones along the way.  `None` means no
    /// follower could take over — the flight is dissolved.  On success the
    /// flight entry stays registered: the remaining followers (and any new
    /// duplicates) keep waiting on the promoted leader's terminal.
    pub(crate) fn promote(&self, key: &str) -> Option<FrontFollower> {
        let (promoted, released) = {
            let mut map = lock(&self.inner);
            let followers = map.get_mut(key)?;
            let mut released = Vec::new();
            let mut promoted = None;
            while !followers.is_empty() {
                let follower = followers.remove(0);
                if follower.session.is_aborted() {
                    released.push(follower);
                } else {
                    promoted = Some(follower);
                    break;
                }
            }
            if promoted.is_none() {
                map.remove(key);
            }
            (promoted, released)
        };
        for follower in released {
            follower.session.release();
        }
        promoted
    }

    /// Removes the follower enrolled by session `token` under sequence
    /// number `seq`, whatever flight it waits on — the lookup behind
    /// `cancel id=N` for a request that was never forwarded.
    pub(crate) fn remove_follower(&self, token: u64, seq: u64) -> Option<FrontFollower> {
        let mut map = lock(&self.inner);
        for followers in map.values_mut() {
            if let Some(at) = followers
                .iter()
                .position(|f| f.token == token && f.seq == seq)
            {
                return Some(followers.remove(at));
            }
        }
        None
    }
}

/// Strips the leader's `,"client_id":...` field off a terminal frame's
/// post-`id` remainder, so a follower's own correlation token can take its
/// place.  The leader's token is known exactly (it was parsed at dispatch),
/// so the prefix to strip is rendered — not scanned — with the engine's own
/// escaper.
pub(crate) fn strip_leader_client_id<'a>(rest: &'a str, leader_id: Option<&str>) -> &'a str {
    match leader_id {
        None => rest,
        Some(id) => {
            let prefix = format!(",\"client_id\":{}", qld_engine::json::string(id));
            rest.strip_prefix(prefix.as_str()).unwrap_or(rest)
        }
    }
}

/// Assembles a follower's terminal line from its own envelope and the
/// leader's (client-id-stripped) terminal remainder: byte-identical to the
/// leader's frame modulo `id`/`client_id`.
pub(crate) fn follower_line(seq: u64, client_id: Option<&str>, stripped_rest: &str) -> String {
    match client_id {
        None => format!("{{\"id\":{seq}{stripped_rest}"),
        Some(id) => format!(
            "{{\"id\":{seq},\"client_id\":{}{stripped_rest}",
            qld_engine::json::string(id)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_client_id_is_stripped_exactly() {
        let rest = r#","client_id":"a b","ok":true,"kind":"duality"}"#;
        assert_eq!(
            strip_leader_client_id(rest, Some("a b")),
            r#","ok":true,"kind":"duality"}"#
        );
        // No leader token: nothing to strip.
        let bare = r#","ok":true}"#;
        assert_eq!(strip_leader_client_id(bare, None), bare);
        // A mismatched token (never happens in practice) leaves the frame
        // intact rather than corrupting it.
        assert_eq!(strip_leader_client_id(rest, Some("other")), rest);
    }

    #[test]
    fn follower_lines_splice_their_own_envelope() {
        let stripped = r#","ok":true,"kind":"duality"}"#;
        assert_eq!(
            follower_line(7, None, stripped),
            r#"{"id":7,"ok":true,"kind":"duality"}"#
        );
        assert_eq!(
            follower_line(9, Some("x\"y"), stripped),
            r#"{"id":9,"client_id":"x\"y","ok":true,"kind":"duality"}"#
        );
    }
}
