//! The shard fleet: spawning, health probing, crash respawn, rolling
//! restarts, and graceful shutdown.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::lock_ignoring_poison;
use crate::shard::{Shard, ShardSpec};

/// Configuration of [`Fleet::start`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of backend shards to run.
    pub shards: usize,
    /// How to spawn each shard.
    pub spec: ShardSpec,
    /// Delay between supervisor ticks (health probes + crash respawn).
    pub probe_interval: Duration,
    /// How long a draining shard may take to exit on SIGTERM before the
    /// supervisor escalates to SIGKILL (rolling restarts, shutdown).
    pub drain_timeout: Duration,
}

impl FleetConfig {
    /// A config with default timings: 200 ms probes, 10 s ready/drain grace.
    pub fn new(shards: usize, binary: PathBuf, dir: PathBuf) -> FleetConfig {
        FleetConfig {
            shards,
            spec: ShardSpec {
                binary,
                dir,
                workers: None,
                ready_timeout: Duration::from_secs(10),
            },
            probe_interval: Duration::from_millis(200),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// A running fleet of supervised `qld serve` shards.
pub struct Fleet {
    shards: Vec<Arc<Shard>>,
    spec: ShardSpec,
    probe_interval: Duration,
    drain_timeout: Duration,
    stop: AtomicBool,
    /// Serializes fleet mutations (respawn, rolling restart, shutdown)
    /// against the supervisor tick.
    admin: Mutex<()>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
}

impl Fleet {
    /// Spawns all shards, waits until each accepts connections, and starts
    /// the supervisor thread.  On any spawn failure the already-started
    /// shards are torn down before the error is returned.
    pub fn start(config: FleetConfig) -> io::Result<Arc<Fleet>> {
        assert!(config.shards > 0, "a fleet needs at least one shard");
        std::fs::create_dir_all(&config.spec.dir)?;
        let shards: Vec<Arc<Shard>> = (0..config.shards)
            .map(|i| Arc::new(Shard::new(i, &config.spec.dir)))
            .collect();
        for shard in &shards {
            if let Err(err) = shard.spawn(&config.spec) {
                for started in &shards {
                    started.terminate(Duration::from_millis(200));
                }
                return Err(err);
            }
        }
        let fleet = Arc::new(Fleet {
            shards,
            spec: config.spec,
            probe_interval: config.probe_interval,
            drain_timeout: config.drain_timeout,
            stop: AtomicBool::new(false),
            admin: Mutex::new(()),
            supervisor: Mutex::new(None),
        });
        let worker = Arc::clone(&fleet);
        let handle = std::thread::Builder::new()
            .name("fleet-supervisor".into())
            .spawn(move || worker.supervise())
            .expect("spawn supervisor thread");
        *lock_ignoring_poison(&fleet.supervisor) = Some(handle);
        Ok(fleet)
    }

    /// Number of shards (fixed for the fleet's lifetime).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard slots, for direct inspection (tests, stats).
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// Per-shard availability snapshot.
    pub fn availability(&self) -> Vec<bool> {
        self.shards.iter().map(|s| s.is_available()).collect()
    }

    /// Per-shard load snapshot (in-flight jobs at the last probe).
    pub fn loads(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.load()).collect()
    }

    /// Total successful crash respawns across the fleet.
    pub fn total_respawns(&self) -> u64 {
        self.shards.iter().map(|s| s.respawns()).sum()
    }

    /// Connects to shard `index`.
    pub fn connect(&self, index: usize) -> io::Result<UnixStream> {
        self.shards[index].connect()
    }

    /// SIGKILLs shard `index` (no snapshot write; simulates a crash).  The
    /// supervisor respawns it within a probe interval or two.
    pub fn kill_shard(&self, index: usize) -> io::Result<()> {
        let _guard = lock_ignoring_poison(&self.admin);
        self.shards[index].kill_now()
    }

    /// Restarts every shard, one at a time: marks it unavailable (routers
    /// stop picking it), SIGTERMs it so it drains and writes its cache
    /// snapshot, respawns it, and waits until it is ready before moving on.
    /// With ≥ 2 shards the fleet keeps serving throughout.
    pub fn rolling_restart(&self) -> io::Result<()> {
        for shard in &self.shards {
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            let _guard = lock_ignoring_poison(&self.admin);
            shard.terminate(self.drain_timeout);
            shard.spawn(&self.spec)?;
        }
        Ok(())
    }

    /// Blocks until shard `index` is available (respawned) or the timeout
    /// elapses; returns whether it became available.
    pub fn wait_available(&self, index: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.shards[index].is_available() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.shards[index].is_available()
    }

    /// Stops the supervisor and gracefully terminates every shard (SIGTERM →
    /// snapshot write → exit).  Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        let supervisor = lock_ignoring_poison(&self.supervisor).take();
        if let Some(handle) = supervisor {
            let _ = handle.join();
        }
        let _guard = lock_ignoring_poison(&self.admin);
        for shard in &self.shards {
            shard.terminate(self.drain_timeout);
        }
    }

    /// The supervisor loop: every `probe_interval`, reap-and-respawn dead
    /// shards and health-probe the live ones (three failed probes in a row
    /// force a restart).
    fn supervise(self: Arc<Fleet>) {
        while !self.stop.load(Ordering::Acquire) {
            // Sleep in small slices so shutdown is prompt.
            let wake = Instant::now() + self.probe_interval;
            while Instant::now() < wake {
                if self.stop.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            let _guard = lock_ignoring_poison(&self.admin);
            if self.stop.load(Ordering::Acquire) {
                return;
            }
            for shard in &self.shards {
                if shard.reap_if_dead() {
                    shard.set_available(false);
                    if shard.spawn(&self.spec).is_ok() {
                        shard.note_respawn();
                    }
                    // On failure the next tick tries again.
                    continue;
                }
                if !shard.is_available() {
                    continue;
                }
                // Ticket drawn before the stats round trip: if the shard is
                // respawned while this probe is in flight, the sample loses
                // to the respawn's load reset instead of resurrecting the
                // dead child's reading.
                let ticket = shard.next_probe_seq();
                match probe_inflight(shard) {
                    Some(load) => {
                        shard.apply_load_sample(ticket, load);
                        shard.clear_strikes();
                    }
                    None => {
                        if shard.strike() {
                            // Unresponsive: force a crash-restart.  The next
                            // tick reaps and respawns it.
                            let _ = shard.kill_now();
                        }
                    }
                }
            }
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One health probe: a throwaway `stats` session against the shard's socket.
/// Returns the reported `inflight` count, or `None` when the shard does not
/// answer within a second.
fn probe_inflight(shard: &Shard) -> Option<u64> {
    let stream = shard.connect().ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(1))).ok()?;
    stream
        .set_write_timeout(Some(Duration::from_secs(1)))
        .ok()?;
    let mut writer = stream.try_clone().ok()?;
    writer.write_all(b"stats\n").ok()?;
    writer.flush().ok()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).ok()?;
    parse_uint_field(&line, "\"inflight\":")
}

/// Extracts an unsigned JSON number field by textual scan (the probe avoids
/// pulling a JSON parser into the hot supervisor loop).
pub(crate) fn parse_uint_field(line: &str, marker: &str) -> Option<u64> {
    let start = line.find(marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_fields_parse_out_of_json_lines() {
        let line = r#"{"id":0,"ok":true,"kind":"stats","inflight":7,"sessions":2}"#;
        assert_eq!(parse_uint_field(line, "\"inflight\":"), Some(7));
        assert_eq!(parse_uint_field(line, "\"sessions\":"), Some(2));
        assert_eq!(parse_uint_field(line, "\"absent\":"), None);
        assert_eq!(parse_uint_field(r#"{"inflight":}"#, "\"inflight\":"), None);
    }
}
