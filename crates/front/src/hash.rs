//! Consistent hashing for cache affinity.
//!
//! The router must send every request whose canonical cache key is `K` to the
//! same shard, so that shard's result cache (and its snapshot across
//! restarts) accumulates all the hits for `K`.  A consistent-hash ring with
//! virtual nodes gives that affinity while keeping the remap small when a
//! shard leaves (crashes) or rejoins (respawns): only the keys owned by the
//! affected shard move, everything else keeps its owner.

/// 64-bit FNV-1a.  Deterministic across processes and platforms (unlike
/// `DefaultHasher`, whose seed is randomized per process) — shard ownership
/// must agree between router restarts and test assertions.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Number of virtual nodes per shard.  Enough to smooth the key distribution
/// across a handful of shards without making ring construction or lookup
/// noticeable.
pub const VNODES_PER_SHARD: usize = 128;

/// A consistent-hash ring over `shards` shard indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard)` pairs sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Builds the ring with [`VNODES_PER_SHARD`] virtual nodes per shard.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a ring needs at least one shard");
        let mut points = Vec::with_capacity(shards * VNODES_PER_SHARD);
        for shard in 0..shards {
            for vnode in 0..VNODES_PER_SHARD {
                let label = format!("shard-{shard}/vnode-{vnode}");
                points.push((fnv1a(label.as_bytes()), shard));
            }
        }
        // Ties (vanishingly unlikely) break deterministically by shard index.
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards the ring was built over.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`, ignoring availability.
    pub fn route(&self, key: &str) -> usize {
        self.route_available(key, |_| true)
            .expect("ring is never empty")
    }

    /// The first shard at or after `key`'s point (clockwise) for which
    /// `available` holds.  Returns `None` when no shard is available.
    pub fn route_available(&self, key: &str, available: impl Fn(usize) -> bool) -> Option<usize> {
        let point = fnv1a(key.as_bytes());
        let start = self.points.partition_point(|&(p, _)| p < point);
        for offset in 0..self.points.len() {
            let (_, shard) = self.points[(start + offset) % self.points.len()];
            if available(shard) {
                return Some(shard);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = HashRing::new(3);
        for key in ["alpha", "beta", "gamma", "delta"] {
            let first = ring.route(key);
            assert!(first < 3);
            assert_eq!(first, ring.route(key));
        }
    }

    #[test]
    fn keys_spread_over_all_shards() {
        let ring = HashRing::new(4);
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            counts[ring.route(&format!("key-{i}"))] += 1;
        }
        // Virtual nodes give a rough split, not a perfect one; the bound
        // only rules out a starving or hoarding shard (fair share is 250).
        for &c in &counts {
            assert!(c > 100, "unbalanced ring: {counts:?}");
            assert!(c < 500, "unbalanced ring: {counts:?}");
        }
    }

    #[test]
    fn losing_a_shard_only_remaps_its_own_keys() {
        let ring = HashRing::new(3);
        for i in 0..500 {
            let key = format!("key-{i}");
            let owner = ring.route(&key);
            let down = (owner + 1) % 3; // some *other* shard goes down
            let rerouted = ring.route_available(&key, |s| s != down).unwrap();
            assert_eq!(
                rerouted, owner,
                "key {key} moved although its owner {owner} stayed up"
            );
        }
    }

    #[test]
    fn all_shards_down_routes_nowhere() {
        let ring = HashRing::new(2);
        assert_eq!(ring.route_available("k", |_| false), None);
    }
}
