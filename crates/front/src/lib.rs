//! # qld-front
//!
//! The shard-fleet router: `qld front` runs a router daemon that spawns and
//! supervises N backend `qld serve` shard processes (each with its own Unix
//! socket and cache snapshot file) and speaks the same wire protocol on its
//! own socket, so clients cannot tell a fleet from a single daemon.
//!
//! * [`hash`] — deterministic FNV-1a consistent hashing with virtual nodes;
//! * [`policy`] — the pluggable [`ShardPolicy`]
//!   (mirroring the engine's `SolverPolicy`): consistent-hash cache affinity
//!   (the default), least-loaded, or sticky-session routing;
//! * [`shard`] / [`fleet`] — process supervision: spawn, periodic `stats`
//!   health probes, automatic respawn of crashed shards (hot, thanks to
//!   per-shard cache snapshots), rolling restarts that drain one shard at a
//!   time, graceful shutdown;
//! * [`router`] — the protocol-transparent proxy session: per-request shard
//!   routing by the engine's canonical cache key, streamed chunk relay with
//!   `id` remapping, `cancel` forwarding to the owning shard, and
//!   retry-once-on-reroute for requests lost to a dying shard.
//!
//! The `qld` binary itself lives in this crate (`src/bin/qld.rs`) so the
//! `front` subcommand can sit next to `serve` without a dependency cycle:
//! `qld-front` depends on `qld-engine`, never the other way around.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hash;
pub mod policy;

#[cfg(unix)]
pub(crate) mod coalesce;
#[cfg(unix)]
pub mod fleet;
#[cfg(unix)]
pub mod router;
#[cfg(unix)]
pub mod shard;

pub use hash::{fnv1a, HashRing, VNODES_PER_SHARD};
pub use policy::{
    policy_from_name, FleetView, HashAffinityPolicy, LeastLoadedPolicy, ShardPolicy,
    StickySessionPolicy,
};

#[cfg(unix)]
pub use fleet::{Fleet, FleetConfig};
#[cfg(unix)]
pub use router::{session_handler, Router};
#[cfg(unix)]
pub use shard::{Shard, ShardSpec};

/// Locks a mutex, recovering the guard if a previous holder panicked: a
/// panicking relay thread must not wedge the whole session or fleet.
pub(crate) fn lock_ignoring_poison<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}
