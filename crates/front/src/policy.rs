//! Pluggable shard-selection policies.
//!
//! Mirrors the engine's `SolverPolicy`: the router consults one
//! [`ShardPolicy`] per request line, handing it the request's canonical cache
//! key and a [`FleetView`] snapshot of shard availability and load.  The
//! default [`HashAffinityPolicy`] maximizes cache hits; [`LeastLoadedPolicy`]
//! trades affinity for load balance; [`StickySessionPolicy`] pins each client
//! session to one shard so per-session ordering spans all its requests.

use std::sync::Arc;

use crate::hash::{fnv1a, HashRing};

/// A point-in-time snapshot of the fleet, as seen by a routing decision.
#[derive(Debug, Clone, Copy)]
pub struct FleetView<'a> {
    /// Per-shard liveness: `false` while a shard is down, draining, or being
    /// restarted.  Policies must never pick an unavailable shard.
    pub available: &'a [bool],
    /// Per-shard in-flight job counts from the supervisor's last `stats`
    /// probe (stale by up to one probe interval).
    pub load: &'a [u64],
    /// An opaque token identifying the client session the request arrived
    /// on; stable for the session's lifetime.
    pub session: u64,
}

/// Picks the shard to answer a request.
pub trait ShardPolicy: Send + Sync {
    /// Chooses an available shard for the request whose canonical cache key
    /// is `key`, or `None` when no shard is available.
    fn choose(&self, key: &str, view: &FleetView<'_>) -> Option<usize>;

    /// Short name for logs and `--policy` matching.
    fn name(&self) -> &'static str;
}

/// Consistent-hash cache affinity (the default): every request with the same
/// canonical cache key lands on the same shard, so that shard's cache and
/// snapshot own the key.
#[derive(Debug)]
pub struct HashAffinityPolicy {
    ring: HashRing,
}

impl HashAffinityPolicy {
    /// Builds the ring over `shards` shards.
    pub fn new(shards: usize) -> Self {
        HashAffinityPolicy {
            ring: HashRing::new(shards),
        }
    }
}

impl ShardPolicy for HashAffinityPolicy {
    fn choose(&self, key: &str, view: &FleetView<'_>) -> Option<usize> {
        self.ring
            .route_available(key, |s| view.available.get(s).copied().unwrap_or(false))
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Sends each request to the available shard with the fewest in-flight jobs
/// (ties break to the lowest index).  No cache affinity — use when the
/// workload is uncacheable and latency balance matters more.
#[derive(Debug, Default)]
pub struct LeastLoadedPolicy;

impl ShardPolicy for LeastLoadedPolicy {
    fn choose(&self, _key: &str, view: &FleetView<'_>) -> Option<usize> {
        (0..view.available.len())
            .filter(|&s| view.available[s])
            .min_by_key(|&s| view.load.get(s).copied().unwrap_or(0))
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

/// Pins every request of a client session to one shard (hashed from the
/// session token over the same ring).  All of a session's requests share one
/// upstream connection, so `order=input` holds across the whole session, at
/// the cost of key-level affinity.
#[derive(Debug)]
pub struct StickySessionPolicy {
    ring: HashRing,
}

impl StickySessionPolicy {
    /// Builds the ring over `shards` shards.
    pub fn new(shards: usize) -> Self {
        StickySessionPolicy {
            ring: HashRing::new(shards),
        }
    }
}

impl ShardPolicy for StickySessionPolicy {
    fn choose(&self, _key: &str, view: &FleetView<'_>) -> Option<usize> {
        let token = format!("session-{:016x}", fnv1a(&view.session.to_le_bytes()));
        self.ring
            .route_available(&token, |s| view.available.get(s).copied().unwrap_or(false))
    }

    fn name(&self) -> &'static str {
        "sticky"
    }
}

/// Resolves a `--policy NAME` flag to a policy over `shards` shards.
pub fn policy_from_name(name: &str, shards: usize) -> Option<Arc<dyn ShardPolicy>> {
    match name {
        "hash" => Some(Arc::new(HashAffinityPolicy::new(shards))),
        "least-loaded" => Some(Arc::new(LeastLoadedPolicy)),
        "sticky" => Some(Arc::new(StickySessionPolicy::new(shards))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(available: &'a [bool], load: &'a [u64], session: u64) -> FleetView<'a> {
        FleetView {
            available,
            load,
            session,
        }
    }

    #[test]
    fn hash_policy_is_stable_and_skips_unavailable_shards() {
        let p = HashAffinityPolicy::new(3);
        let up = [true, true, true];
        let load = [0, 0, 0];
        let owner = p.choose("check 0,1 0;1", &view(&up, &load, 7)).unwrap();
        assert_eq!(
            owner,
            p.choose("check 0,1 0;1", &view(&up, &load, 99)).unwrap(),
            "hash affinity must not depend on the session"
        );
        let mut partial = [true, true, true];
        partial[owner] = false;
        let fallback = p
            .choose("check 0,1 0;1", &view(&partial, &load, 7))
            .unwrap();
        assert_ne!(fallback, owner);
        assert_eq!(p.choose("k", &view(&[false, false, false], &load, 7)), None);
    }

    #[test]
    fn least_loaded_picks_the_idle_shard() {
        let p = LeastLoadedPolicy;
        let up = [true, true, true];
        assert_eq!(p.choose("k", &view(&up, &[5, 1, 9], 0)), Some(1));
        // Ties break low; unavailable shards never win.
        assert_eq!(p.choose("k", &view(&up, &[2, 2, 2], 0)), Some(0));
        assert_eq!(
            p.choose("k", &view(&[false, true, true], &[0, 4, 4], 0)),
            Some(1)
        );
    }

    #[test]
    fn sticky_policy_follows_the_session_not_the_key() {
        let p = StickySessionPolicy::new(4);
        let up = [true; 4];
        let load = [0; 4];
        let home = p.choose("key-a", &view(&up, &load, 42)).unwrap();
        assert_eq!(Some(home), p.choose("key-b", &view(&up, &load, 42)));
        assert_eq!(Some(home), p.choose("stats", &view(&up, &load, 42)));
        // Different sessions spread over shards (at least one of a handful
        // must land elsewhere).
        let spread = (0..32).any(|s| p.choose("key-a", &view(&up, &load, s)) != Some(home));
        assert!(spread, "all sessions pinned to shard {home}");
    }

    #[test]
    fn names_resolve_and_unknown_names_do_not() {
        for name in ["hash", "least-loaded", "sticky"] {
            let p = policy_from_name(name, 2).expect(name);
            assert_eq!(p.name(), name);
        }
        assert!(policy_from_name("round-robin", 2).is_none());
    }
}
