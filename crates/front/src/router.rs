//! The protocol-transparent proxy session.
//!
//! One [`Router::serve_session`] call handles one client connection: it reads
//! wire lines exactly like an engine serve session would (same blank-line and
//! comment skipping, so the client-visible `id` numbering is identical),
//! routes each line to a shard chosen by the [`ShardPolicy`], and relays the
//! shard's JSON frames back with only the `id` field rewritten from the
//! shard-session numbering to the client-session numbering.
//!
//! Per-request bookkeeping (`Route`) remembers which shard owns each
//! in-flight request so `cancel id=N` can be forwarded to the right shard
//! (with `N` rewritten to that shard's numbering), and so requests lost to a
//! dying shard can be retried once on a surviving shard — but only when no
//! chunk frame was relayed yet, because a partially streamed answer cannot be
//! restarted without duplicating chunks the client already consumed.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use qld_engine::wire::{self, Command, ParsedLine};
use qld_engine::{
    EngineError, Outcome, RequestStats, Response, ServeSummary, SessionStream, StopReason,
    UserBuckets,
};

use crate::coalesce::{
    follower_line, strip_leader_client_id, CoalesceSession, FrontFlights, FrontFollower,
};
use crate::fleet::Fleet;
use crate::lock_ignoring_poison as lock;
use crate::policy::{FleetView, ShardPolicy};

/// The fleet router: shared by every client session of a `qld front` daemon.
pub struct Router {
    fleet: Arc<Fleet>,
    policy: Arc<dyn ShardPolicy>,
    /// Whether a request lost to a dying shard is retried once on a
    /// surviving shard (`--no-retry` clears it).
    retry: bool,
    /// Per-user admission buckets, shared across every client session of
    /// the daemon: an `auth=<user>` flood is throttled at the router, before
    /// it ever reaches a shard.
    user_quota: Option<Arc<UserBuckets>>,
    session_tokens: AtomicU64,
    /// Router-level single-flight registry, shared by every client session:
    /// duplicate one-shot misses reach a shard exactly once (see
    /// [`crate::coalesce`]).
    flights: Arc<FrontFlights>,
}

impl Router {
    /// Builds a router over a running fleet.
    pub fn new(fleet: Arc<Fleet>, policy: Arc<dyn ShardPolicy>, retry: bool) -> Arc<Router> {
        Router::with_user_quota(fleet, policy, retry, None)
    }

    /// Builds a router that additionally enforces per-user admission: a
    /// query carrying `auth=<user>` is rejected with a `quota` error —
    /// synthesized locally, never forwarded — once the user's token bucket
    /// is empty.  Requests without `auth=` are never throttled.
    pub fn with_user_quota(
        fleet: Arc<Fleet>,
        policy: Arc<dyn ShardPolicy>,
        retry: bool,
        user_quota: Option<Arc<UserBuckets>>,
    ) -> Arc<Router> {
        Arc::new(Router {
            fleet,
            policy,
            retry,
            user_quota,
            session_tokens: AtomicU64::new(0),
            flights: Arc::new(FrontFlights::default()),
        })
    }

    /// The fleet this router serves.
    pub fn fleet(&self) -> &Arc<Fleet> {
        &self.fleet
    }

    /// Router-level coalescing counters `(flights_led, followers_enrolled)`,
    /// also spliced into relayed `stats` responses as the `front` object.
    pub fn coalesce_stats(&self) -> (u64, u64) {
        (self.flights.led(), self.flights.coalesced())
    }

    /// Serves one client connection to completion (mirrors
    /// `Engine::serve_with` semantics through the fleet).
    pub fn serve_session<S: SessionStream>(&self, stream: S) -> ServeSummary {
        let Ok(writer) = stream.try_clone_stream() else {
            return ServeSummary::default();
        };
        let core = Arc::new(Core {
            fleet: Arc::clone(&self.fleet),
            policy: Arc::clone(&self.policy),
            retry: self.retry,
            user_quota: self.user_quota.clone(),
            session: self.session_tokens.fetch_add(1, Ordering::Relaxed),
            client: Mutex::new(writer),
            abort: AtomicBool::new(false),
            routes: Mutex::new(HashMap::new()),
            upstreams: Mutex::new(HashMap::new()),
            readers: Mutex::new(Vec::new()),
            summary: Mutex::new(ServeSummary::default()),
            flights: Arc::clone(&self.flights),
            pending: Mutex::new(0),
            pending_cv: Condvar::new(),
        });
        let mut reader = BufReader::new(stream);
        let mut seq: u64 = 0;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {}
                Err(_) => {
                    core.abort.store(true, Ordering::Release);
                    break;
                }
            }
            if core.abort.load(Ordering::Acquire) {
                break;
            }
            let trimmed = line.trim();
            // Same skip rule as the engine's feeder: the client-visible
            // sequence numbering must be byte-identical through the router.
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            core.dispatch(seq, trimmed);
            seq += 1;
        }
        core.finish()
    }
}

/// Builds the per-connection handler closure for
/// [`qld_engine::run_session_loop`] / `SocketServer::run_with`.
pub fn session_handler<S: SessionStream>(
    router: Arc<Router>,
) -> impl Fn(S) -> ServeSummary + Send + Sync + 'static {
    move |stream| router.serve_session(stream)
}

/// Where one in-flight client request currently lives.
struct Route {
    /// Owning shard index.
    shard: usize,
    /// The request's sequence number within the shard session (`None` until
    /// the forwarding write completes).
    upstream_seq: Option<u64>,
    /// The original wire line, verbatim, for retry-on-reroute.
    raw: String,
    /// Correlation token to echo on synthesized responses.
    client_id: Option<String>,
    /// Whether the client asked for streamed framing.
    stream: bool,
    /// Chunk frames already relayed to the client; a non-zero count disables
    /// retry (the stream cannot restart without duplicating them).
    chunks_relayed: u64,
    /// Whether this request already used its one reroute.
    retried: bool,
    /// `Some(target)` when the line is a forwarded `cancel` (the target in
    /// client numbering, for the synthesized response if the shard dies).
    cancel_target: Option<u64>,
    /// `Some(key)` when this request leads a router-coalesced flight: its
    /// terminal frame settles the flight's followers, and losing it promotes
    /// one of them.
    flight: Option<String>,
    /// Whether this is a `stats` line: its terminal frame gets the router's
    /// own `front` counters spliced in before relay.
    is_stats: bool,
}

/// One live connection to a shard, shared by the session's writer (the
/// dispatch path) and its dedicated relay thread.
struct Upstream {
    shard: usize,
    writer: Mutex<UpstreamWriter>,
    /// Shard-session sequence number → client-session sequence number, for
    /// every request still awaiting its terminal frame.
    map: Mutex<HashMap<u64, u64>>,
}

struct UpstreamWriter {
    stream: UnixStream,
    /// Next sequence number the shard's feeder will assign: one per
    /// forwarded line, mirroring the engine's numbering exactly.
    seq: u64,
    broken: bool,
}

/// Per-client-session state shared with the relay threads.
struct Core<S: SessionStream> {
    fleet: Arc<Fleet>,
    policy: Arc<dyn ShardPolicy>,
    retry: bool,
    user_quota: Option<Arc<UserBuckets>>,
    session: u64,
    client: Mutex<S>,
    /// The client vanished mid-session: stop relaying, cancel shard work,
    /// no more retries or new upstreams.  A mere write-side close is NOT an
    /// abort: the client still waits for its in-flight answers, and those
    /// may legitimately need a retry on a surviving shard.
    abort: AtomicBool,
    routes: Mutex<HashMap<u64, Route>>,
    upstreams: Mutex<HashMap<usize, Arc<Upstream>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    summary: Mutex<ServeSummary>,
    /// The daemon-wide single-flight registry (shared with every session).
    flights: Arc<FrontFlights>,
    /// Followers this session enrolled in other sessions' flights and has
    /// not yet had settled: teardown must wait for them, or a leader's
    /// delivery would race this session's closing client socket.
    pending: Mutex<u64>,
    pending_cv: Condvar,
}

impl<S: SessionStream> Core<S> {
    /// Routes one non-blank, non-comment client line.
    fn dispatch(self: &Arc<Self>, seq: u64, line: &str) {
        match wire::parse_line(line) {
            Ok(ParsedLine {
                command,
                id,
                solver,
                stream,
                auth,
                ..
            }) => match command {
                Command::Cancel { target } => self.forward_cancel(seq, line, target, stream),
                Command::Query(request) => {
                    if let Some(rejection) = self.admit_user(auth.as_deref()) {
                        // Throttled at the router: the shard never sees the
                        // line, but the rejection still consumes this `id`.
                        self.emit_response(Response {
                            id: seq,
                            client_id: id,
                            outcome: Err(rejection),
                            halted: None,
                            chunks: stream.then_some(0),
                            stats: control_stats(),
                        });
                        return;
                    }
                    // The affinity key is the engine's own canonical cache
                    // key (including the solver-override suffix the engine
                    // appends), so "same cache entry" implies "same shard".
                    let mut key = request.cache_key();
                    if let Some(kind) = solver {
                        key.push_str(" solver=");
                        key.push_str(kind.name());
                    }
                    if !stream {
                        // One-shot queries coalesce across sessions: the
                        // first miss leads, duplicates enroll as followers
                        // and never reach a shard.  Streamed queries pass
                        // through — the engine's on-shard fan-out dedups
                        // them (hash affinity lands duplicates together),
                        // and the router never buffers chunk history.
                        let lead = self.flights.lead_or_join(&key, || {
                            self.pending_inc();
                            FrontFollower {
                                session: Arc::clone(self) as Arc<dyn CoalesceSession>,
                                token: self.session,
                                seq,
                                client_id: id.clone(),
                                raw: line.to_string(),
                            }
                        });
                        if !lead {
                            return;
                        }
                        let flight = Some(key.clone());
                        self.forward(seq, line, &key, id, stream, None, flight);
                        return;
                    }
                    self.forward(seq, line, &key, id, stream, None, None);
                }
                Command::Stats => self.forward(seq, line, "stats", id, stream, None, None),
            },
            Err(_) => {
                // Forwarded verbatim: every shard produces the identical
                // parse-error response, so routing is arbitrary (hash the
                // raw line).  The engine treats malformed lines as
                // unstreamed regardless of envelope, so `stream: false`.
                let client_id = wire::salvage_client_id(line);
                self.forward(seq, line, line, client_id, false, None, None);
            }
        }
    }

    /// Checks the authenticated user (if any) against the router's admission
    /// buckets.  `None` means "forward the request"; `Some(err)` is the
    /// quota rejection to synthesize, mirroring the engine's own wording.
    fn admit_user(&self, auth: Option<&str>) -> Option<EngineError> {
        let quota = self.user_quota.as_ref()?;
        let user = auth?;
        if quota.admit(user) {
            return None;
        }
        Some(EngineError::quota(format!(
            "user `{user}` exceeded the admission rate ({} req/s, burst {})",
            quota.rate_per_sec(),
            quota.burst()
        )))
    }

    /// Picks a shard and forwards the line, trying a second shard when the
    /// first connect/write fails.  `reroute_from` marks this as the one
    /// retry of a request lost to a dying shard: that shard is excluded
    /// from the pick and the new route cannot retry again.  `flight` is the
    /// coalescing key when this line leads a router-level flight.
    #[allow(clippy::too_many_arguments)]
    fn forward(
        self: &Arc<Self>,
        seq: u64,
        line: &str,
        key: &str,
        client_id: Option<String>,
        stream: bool,
        reroute_from: Option<usize>,
        flight: Option<String>,
    ) {
        let retried = reroute_from.is_some();
        let mut excluded = reroute_from;
        for _attempt in 0..2 {
            let Some(shard) = self.choose(key, excluded) else {
                break;
            };
            lock(&self.routes).insert(
                seq,
                Route {
                    shard,
                    upstream_seq: None,
                    raw: line.to_string(),
                    client_id: client_id.clone(),
                    stream,
                    chunks_relayed: 0,
                    retried,
                    cancel_target: None,
                    flight: flight.clone(),
                    is_stats: key == "stats",
                },
            );
            match self.send_on(shard, seq, line) {
                Ok(useq) => {
                    if let Some(route) = lock(&self.routes).get_mut(&seq) {
                        route.upstream_seq = Some(useq);
                    }
                    return;
                }
                Err(_) => {
                    lock(&self.routes).remove(&seq);
                    excluded = Some(shard);
                }
            }
        }
        // Total failure: the flight's followers would wait forever, so they
        // get the same synthesized error as the leader.
        if let Some(key) = flight.as_deref() {
            self.fail_flight(key);
        }
        self.emit_response(Response {
            id: seq,
            client_id,
            outcome: Err(EngineError::internal(
                "no shard available to answer the request",
            )),
            halted: None,
            chunks: stream.then_some(0),
            stats: control_stats(),
        });
    }

    /// Settles every follower of a flight whose leader could not be
    /// forwarded at all, mirroring the leader's "no shard" error.
    fn fail_flight(&self, key: &str) {
        for follower in self.flights.take(key) {
            let line = Response {
                id: follower.seq,
                client_id: follower.client_id.clone(),
                outcome: Err(EngineError::internal(
                    "no shard available to answer the request",
                )),
                halted: None,
                chunks: None,
                stats: control_stats(),
            }
            .to_json_line();
            follower.session.deliver(&line, true);
        }
    }

    /// Forwards a `cancel id=N` line to the shard owning request `N`,
    /// rewriting the target into that shard's numbering.  When the target is
    /// unknown (never seen, already answered, or numbering not yet
    /// assigned), answers `cancelled:false` locally — the same response the
    /// engine gives for an unknown target.
    fn forward_cancel(self: &Arc<Self>, seq: u64, line: &str, target: u64, stream: bool) {
        let owner = lock(&self.routes)
            .get(&target)
            .and_then(|r| r.upstream_seq.map(|u| (r.shard, u)));
        if let Some((shard, target_useq)) = owner {
            let rewritten = rewrite_cancel_target(line, target_useq);
            lock(&self.routes).insert(
                seq,
                Route {
                    shard,
                    upstream_seq: None,
                    raw: rewritten.clone(),
                    client_id: None,
                    stream,
                    chunks_relayed: 0,
                    // A cancel is shard-local: rerouting it to another shard
                    // is meaningless, so it never retries.
                    retried: true,
                    cancel_target: Some(target),
                    flight: None,
                    is_stats: false,
                },
            );
            match self.send_on(shard, seq, &rewritten) {
                Ok(useq) => {
                    if let Some(route) = lock(&self.routes).get_mut(&seq) {
                        route.upstream_seq = Some(useq);
                    }
                    return;
                }
                Err(_) => {
                    lock(&self.routes).remove(&seq);
                }
            }
        }
        // Not routed to any shard — but it may be waiting as a coalesced
        // follower that never left this router.  Settling it locally is the
        // one cancel the shards cannot do.
        let cancelled = if let Some(follower) = self.flights.remove_follower(self.session, target) {
            let line = Response {
                id: follower.seq,
                client_id: follower.client_id.clone(),
                outcome: Err(EngineError::cancelled(
                    "request cancelled while coalesced behind an identical in-flight query",
                )),
                halted: Some(StopReason::Cancelled),
                chunks: None,
                stats: control_stats(),
            }
            .to_json_line();
            follower.session.deliver(&line, true);
            true
        } else {
            false
        };
        self.emit_response(Response {
            id: seq,
            client_id: None,
            outcome: Ok(Outcome::Cancel { target, cancelled }),
            halted: None,
            chunks: stream.then_some(0),
            stats: control_stats(),
        });
    }

    /// Applies the policy over a liveness snapshot (minus `exclude`).
    fn choose(&self, key: &str, exclude: Option<usize>) -> Option<usize> {
        let mut available = self.fleet.availability();
        if let Some(dead) = exclude {
            if let Some(slot) = available.get_mut(dead) {
                *slot = false;
            }
        }
        let load = self.fleet.loads();
        self.policy.choose(
            key,
            &FleetView {
                available: &available,
                load: &load,
                session: self.session,
            },
        )
    }

    /// Writes one line on the shard's session connection, registering the
    /// shard-sequence → client-sequence mapping *before* the write so the
    /// relay thread can never see an unmapped response.
    fn send_on(self: &Arc<Self>, shard: usize, seq: u64, line: &str) -> std::io::Result<u64> {
        for _attempt in 0..2 {
            let up = self.upstream_for(shard)?;
            let mut writer = lock(&up.writer);
            if writer.broken {
                drop(writer);
                self.remove_upstream(&up);
                continue;
            }
            let useq = writer.seq;
            lock(&up.map).insert(useq, seq);
            let mut framed = Vec::with_capacity(line.len() + 1);
            framed.extend_from_slice(line.as_bytes());
            framed.push(b'\n');
            match writer
                .stream
                .write_all(&framed)
                .and_then(|_| writer.stream.flush())
            {
                Ok(()) => {
                    writer.seq += 1;
                    return Ok(useq);
                }
                Err(err) => {
                    writer.broken = true;
                    lock(&up.map).remove(&useq);
                    return Err(err);
                }
            }
        }
        Err(std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            format!("shard {shard} connection unusable"),
        ))
    }

    /// The session's connection to `shard`, creating it (and its relay
    /// thread) on first use.
    fn upstream_for(self: &Arc<Self>, shard: usize) -> std::io::Result<Arc<Upstream>> {
        if let Some(up) = lock(&self.upstreams).get(&shard) {
            return Ok(Arc::clone(up));
        }
        if self.abort.load(Ordering::Acquire) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "session is aborting",
            ));
        }
        let stream = self.fleet.connect(shard)?;
        let relay_stream = stream.try_clone()?;
        let up = Arc::new(Upstream {
            shard,
            writer: Mutex::new(UpstreamWriter {
                stream,
                seq: 0,
                broken: false,
            }),
            map: Mutex::new(HashMap::new()),
        });
        {
            let mut upstreams = lock(&self.upstreams);
            if let Some(existing) = upstreams.get(&shard) {
                // Raced with another thread; keep theirs, drop ours.
                return Ok(Arc::clone(existing));
            }
            upstreams.insert(shard, Arc::clone(&up));
        }
        let core = Arc::clone(self);
        let up_for_thread = Arc::clone(&up);
        let handle = std::thread::Builder::new()
            .name(format!("front-relay-{shard}"))
            .spawn(move || relay(core, up_for_thread, relay_stream))
            .expect("spawn relay thread");
        lock(&self.readers).push(handle);
        Ok(up)
    }

    fn remove_upstream(&self, up: &Arc<Upstream>) {
        let mut upstreams = lock(&self.upstreams);
        if let Some(current) = upstreams.get(&up.shard) {
            if Arc::ptr_eq(current, up) {
                upstreams.remove(&up.shard);
            }
        }
    }

    /// Settles every request still mapped on a dead upstream: retry once on
    /// a surviving shard (when allowed) or synthesize a terminal frame so
    /// the client is never left waiting.
    fn handle_upstream_down(self: &Arc<Self>, up: &Arc<Upstream>) {
        lock(&up.writer).broken = true;
        let mut lost: Vec<(u64, u64)> = lock(&up.map).drain().collect();
        if lost.is_empty() {
            return;
        }
        lost.sort_unstable(); // settle in original submission order
        for (_useq, seq) in lost {
            let Some(route) = lock(&self.routes).remove(&seq) else {
                continue;
            };
            let aborted = self.abort.load(Ordering::Acquire);
            if !aborted
                && self.retry
                && !route.retried
                && route.chunks_relayed == 0
                && route.cancel_target.is_none()
            {
                let raw = route.raw.clone();
                // A flight leader keeps its flight key through the retry, so
                // its terminal still settles the followers.
                let key = route.flight.clone().unwrap_or_else(|| raw.clone());
                self.forward(
                    seq,
                    &raw,
                    &key,
                    route.client_id.clone(),
                    route.stream,
                    Some(up.shard),
                    route.flight.clone(),
                );
            } else {
                // A leader lost with its retry spent does not kill the
                // flight: a live follower is promoted and re-forwards the
                // identical line under the same key.
                if let Some(key) = route.flight.as_deref() {
                    if let Some(next) = self.flights.promote(key) {
                        let session = Arc::clone(&next.session);
                        session.redispatch(next.seq, next.raw, key.to_string(), next.client_id);
                    }
                }
                self.emit_lost(seq, &route);
            }
        }
    }

    /// The terminal frame for a request that died with its shard.
    fn emit_lost(&self, seq: u64, route: &Route) {
        if self.abort.load(Ordering::Acquire) {
            return;
        }
        let outcome = match route.cancel_target {
            // The cancel's target died with the shard: it is certainly no
            // longer in flight, which is exactly `cancelled:false`.
            Some(target) => Ok(Outcome::Cancel {
                target,
                cancelled: false,
            }),
            None => Err(EngineError::internal(
                "shard connection lost before the request completed",
            )),
        };
        self.emit_response(Response {
            id: seq,
            client_id: route.client_id.clone(),
            outcome,
            halted: None,
            chunks: route.stream.then_some(route.chunks_relayed),
            stats: control_stats(),
        });
    }

    /// Writes a locally synthesized response to the client, with the same
    /// JSON rendering the engine uses.
    fn emit_response(&self, response: Response) {
        let is_error = response.outcome.is_err();
        if self.write_client(&response.to_json_line()).is_err() {
            self.abort_session();
            return;
        }
        self.tally(is_error);
    }

    fn write_client(&self, line: &str) -> std::io::Result<()> {
        let mut client = lock(&self.client);
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        client.write_all(&framed)?;
        client.flush()
    }

    fn tally(&self, error: bool) {
        let mut summary = lock(&self.summary);
        summary.requests += 1;
        if error {
            summary.errors += 1;
        }
    }

    /// The client vanished: stop everything, including the (blocked) main
    /// read loop, by half-closing the client socket's read side.
    fn abort_session(&self) {
        self.abort.store(true, Ordering::Release);
        let _ = lock(&self.client).shutdown_side(Shutdown::Read);
    }

    fn pending_inc(&self) {
        *lock(&self.pending) += 1;
    }

    fn pending_dec(&self) {
        let mut pending = lock(&self.pending);
        *pending = pending.saturating_sub(1);
        drop(pending);
        self.pending_cv.notify_all();
    }

    /// Blocks until every follower this session enrolled elsewhere has been
    /// settled (delivered, released, or promoted into a route of its own).
    /// The timeout re-checks `abort` so a vanished client never wedges
    /// teardown behind a slow leader.
    fn wait_pending(&self) {
        let mut pending = lock(&self.pending);
        while *pending > 0 && !self.abort.load(Ordering::Acquire) {
            pending = self
                .pending_cv
                .wait_timeout(pending, Duration::from_millis(100))
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
    }

    /// Session teardown: wait out coalesced followers riding other sessions'
    /// flights, half-close every upstream so the shards drain their
    /// in-flight work (or tear them down on abort, so the shards cancel
    /// it), then join the relay threads.
    fn finish(self: &Arc<Self>) -> ServeSummary {
        self.wait_pending();
        let aborted = self.abort.load(Ordering::Acquire);
        loop {
            let upstreams: Vec<Arc<Upstream>> = lock(&self.upstreams).values().cloned().collect();
            for up in &upstreams {
                let writer = lock(&up.writer);
                let _ = writer.stream.shutdown(if aborted {
                    Shutdown::Both
                } else {
                    // Clean EOF: the shard finishes and answers what is
                    // still in flight before closing, and the relay thread
                    // forwards those answers.
                    Shutdown::Write
                });
            }
            let handles: Vec<JoinHandle<()>> = lock(&self.readers).drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
            // A retry that raced teardown may have opened a fresh upstream;
            // loop to close and join it too.
        }
        // Half-close towards the client so it sees EOF now (the engine's
        // `serve_connection` does the same): the accept loop keeps its own
        // clone of the connection alive until the session is reaped, so
        // merely dropping our handles would leave the client waiting.
        let _ = lock(&self.client).shutdown_side(Shutdown::Write);
        *lock(&self.summary)
    }

    /// Settles a flight from its leader's terminal frame: every follower
    /// gets a byte-identical line modulo its own `id`/`client_id` envelope.
    /// A leader that was *cancelled* instead promotes a follower — the
    /// cancel belonged to the leader's client alone, and the followers
    /// still want the answer.
    fn settle_flight(
        self: &Arc<Self>,
        key: &str,
        leader_id: Option<&str>,
        rest: &str,
        frame: &str,
        error: bool,
    ) {
        if frame.contains("\"halted\":\"cancelled\"") {
            if let Some(next) = self.flights.promote(key) {
                let session = Arc::clone(&next.session);
                session.redispatch(next.seq, next.raw, key.to_string(), next.client_id);
            }
            return;
        }
        let followers = self.flights.take(key);
        if followers.is_empty() {
            return;
        }
        let stripped = strip_leader_client_id(rest, leader_id);
        for follower in followers {
            let line = follower_line(follower.seq, follower.client_id.as_deref(), stripped);
            follower.session.deliver(&line, error);
        }
    }
}

impl<S: SessionStream> CoalesceSession for Core<S> {
    fn is_aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    fn deliver(&self, line: &str, error: bool) {
        if !self.is_aborted() {
            if self.write_client(line).is_err() {
                self.abort_session();
            } else {
                self.tally(error);
            }
        }
        self.pending_dec();
    }

    fn release(&self) {
        self.pending_dec();
    }

    fn redispatch(self: Arc<Self>, seq: u64, raw: String, key: String, client_id: Option<String>) {
        self.forward(seq, &raw, &key, client_id, false, None, Some(key.clone()));
        // Decrement *after* forwarding: the route (and any fresh upstream)
        // now exists, so this session's teardown loop will drain it even if
        // the main read loop already hit EOF.
        self.pending_dec();
    }
}

/// The relay loop: reads the shard session's JSON frames, rewrites the `id`
/// prefix to client numbering, and forwards every byte after it untouched.
fn relay<S: SessionStream>(core: Arc<Core<S>>, up: Arc<Upstream>, stream: UnixStream) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let frame = line.trim_end();
        if frame.is_empty() {
            continue;
        }
        let Some((useq, rest)) = split_id_prefix(frame) else {
            continue;
        };
        let Some(seq) = lock(&up.map).get(&useq).copied() else {
            continue;
        };
        if is_chunk_frame(frame) {
            if let Some(route) = lock(&core.routes).get_mut(&seq) {
                route.chunks_relayed += 1;
            }
            if core.write_client(&format!("{{\"id\":{seq}{rest}")).is_err() {
                core.abort_session();
                break;
            }
            continue;
        }
        // Terminal frame: this request is settled on both sides.
        lock(&up.map).remove(&useq);
        let route = lock(&core.routes).remove(&seq);
        let error = frame.contains("\"ok\":false");
        core.tally(error);
        let remapped = if route.as_ref().is_some_and(|r| r.is_stats) {
            splice_front_stats(seq, rest, core.flights.led(), core.flights.coalesced())
        } else {
            format!("{{\"id\":{seq}{rest}")
        };
        let write_failed = core.write_client(&remapped).is_err();
        if write_failed {
            core.abort_session();
        }
        // Settle the flight even when our own client just vanished: the
        // followers belong to *other* sessions and still want the frame.
        if let Some(route) = route {
            if let Some(key) = route.flight.as_deref() {
                core.settle_flight(key, route.client_id.as_deref(), rest, frame, error);
            }
        }
        if write_failed {
            break;
        }
    }
    core.remove_upstream(&up);
    core.handle_upstream_down(&up);
}

/// Splits `{"id":<N>` off a frame, returning `N` and the remainder
/// (starting at the comma).  Every engine frame — responses and chunks alike
/// — renders the `id` field first precisely so the router can do this.
fn split_id_prefix(frame: &str) -> Option<(u64, &str)> {
    let rest = frame.strip_prefix("{\"id\":")?;
    let digits = rest.len() - rest.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    if digits == 0 {
        return None;
    }
    let id: u64 = rest[..digits].parse().ok()?;
    Some((id, &rest[digits..]))
}

fn is_chunk_frame(frame: &str) -> bool {
    frame.contains("\"frame\":\"chunk\"")
}

/// Splices the router's own coalescing counters into a relayed `stats`
/// terminal as a trailing `front` object, so one `stats` line reports both
/// the answering shard and the fleet front (see WIRE.md).
fn splice_front_stats(seq: u64, rest: &str, flights: u64, coalesced: u64) -> String {
    let line = format!("{{\"id\":{seq}{rest}");
    match line.strip_suffix('}') {
        Some(body) => {
            format!("{body},\"front\":{{\"flights\":{flights},\"coalesced\":{coalesced}}}}}")
        }
        None => line,
    }
}

/// Rebuilds a `cancel` line with its `id=` target pointing at `target`
/// (shard-session numbering), keeping every other envelope token verbatim.
fn rewrite_cancel_target(line: &str, target: u64) -> String {
    let mut tokens: Vec<&str> = line
        .split_whitespace()
        .filter(|token| !token.starts_with("id="))
        .collect();
    let rewritten_target = format!("id={target}");
    tokens.push(&rewritten_target);
    tokens.join(" ")
}

/// The stats the engine attaches to control responses (cancel acks, quota
/// rejections): zeroes with the placeholder solver name.
fn control_stats() -> RequestStats {
    RequestStats {
        solver: "-".to_string(),
        ..RequestStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_prefixes_split_and_everything_after_is_preserved() {
        let frame = r#"{"id":17,"client_id":"a","ok":true,"kind":"duality"}"#;
        let (id, rest) = split_id_prefix(frame).unwrap();
        assert_eq!(id, 17);
        assert_eq!(rest, r#","client_id":"a","ok":true,"kind":"duality"}"#);
        // Reassembly with a different id is exact.
        assert_eq!(
            format!("{{\"id\":{}{}", 3, rest),
            r#"{"id":3,"client_id":"a","ok":true,"kind":"duality"}"#
        );
        assert_eq!(split_id_prefix(r#"{"id":x}"#), None);
        assert_eq!(split_id_prefix("not json"), None);
    }

    #[test]
    fn chunk_frames_are_recognized() {
        assert!(is_chunk_frame(
            r#"{"id":0,"frame":"chunk","seq":0,"item":[1,2]}"#
        ));
        assert!(!is_chunk_frame(r#"{"id":0,"ok":true,"frame":"done"}"#));
    }

    #[test]
    fn cancel_rewrites_keep_the_envelope_and_replace_the_target() {
        assert_eq!(rewrite_cancel_target("cancel id=7", 42), "cancel id=42");
        assert_eq!(
            rewrite_cancel_target("cancel stream=true id=7", 3),
            "cancel stream=true id=3"
        );
        // Duplicate targets collapse into the single rewritten one (the
        // parser's last-wins rule makes the original ambiguity moot).
        assert_eq!(rewrite_cancel_target("cancel id=1 id=2", 9), "cancel id=9");
    }

    #[test]
    fn front_stats_are_spliced_before_the_closing_brace() {
        let rest = r#","ok":true,"kind":"stats","inflight":0}"#;
        assert_eq!(
            splice_front_stats(4, rest, 7, 19),
            r#"{"id":4,"ok":true,"kind":"stats","inflight":0,"front":{"flights":7,"coalesced":19}}"#
        );
    }
}
