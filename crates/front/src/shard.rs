//! One supervised backend shard: a `qld serve` child process with its own
//! Unix socket and cache snapshot file.

use std::io;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::lock_ignoring_poison;

/// How to spawn (and respawn) every shard of a fleet.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The `qld` binary to exec (`qld serve ...`).  Defaults to the front's
    /// own executable — the router and the shards are the same binary.
    pub binary: PathBuf,
    /// Directory holding every shard's socket (`shard-<i>.sock`) and cache
    /// snapshot (`shard-<i>.cache`).
    pub dir: PathBuf,
    /// Worker threads per shard (`--workers`); `None` keeps the serve
    /// default.
    pub workers: Option<usize>,
    /// How long a (re)spawned shard may take to accept connections before it
    /// is declared failed.
    pub ready_timeout: Duration,
}

impl ShardSpec {
    fn command(&self, shard: &Shard) -> Command {
        let mut cmd = Command::new(&self.binary);
        cmd.arg("serve")
            .arg("--socket")
            .arg(&shard.socket)
            .arg("--cache-file")
            .arg(&shard.cache_file)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if let Some(workers) = self.workers {
            cmd.arg("--workers").arg(workers.to_string());
        }
        cmd
    }
}

/// One shard slot: the current child process (if any) plus the routing state
/// the supervisor and the policies read.
#[derive(Debug)]
pub struct Shard {
    index: usize,
    socket: PathBuf,
    cache_file: PathBuf,
    child: Mutex<Option<Child>>,
    /// `true` while the shard accepts connections; policies must skip
    /// unavailable shards.
    available: AtomicBool,
    /// In-flight jobs per the supervisor's last `stats` probe.
    load: AtomicU64,
    /// Bumped on every successful (re)spawn.
    generation: AtomicU64,
    /// Successful automatic respawns after a crash (not counting rolling
    /// restarts).
    respawns: AtomicU64,
    /// Consecutive failed health probes; three strikes force a restart.
    probe_strikes: AtomicU32,
    /// Monotonic probe ticket counter: every health probe takes a ticket
    /// before it talks to the shard.
    probe_seq: AtomicU64,
    /// The ticket of the newest load sample applied so far; a probe whose
    /// ticket is not newer lost a race (to a later probe, or to a respawn
    /// that reset the load) and its sample is discarded.
    last_applied_probe: AtomicU64,
}

impl Shard {
    /// Creates the (not yet spawned) slot for shard `index` under `dir`.
    pub(crate) fn new(index: usize, dir: &Path) -> Shard {
        Shard {
            index,
            socket: dir.join(format!("shard-{index}.sock")),
            cache_file: dir.join(format!("shard-{index}.cache")),
            child: Mutex::new(None),
            available: AtomicBool::new(false),
            load: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            probe_strikes: AtomicU32::new(0),
            probe_seq: AtomicU64::new(0),
            last_applied_probe: AtomicU64::new(0),
        }
    }

    /// This shard's index within the fleet.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The shard's Unix socket path (useful for querying it directly).
    pub fn socket_path(&self) -> &Path {
        &self.socket
    }

    /// The shard's cache snapshot path.
    pub fn cache_file(&self) -> &Path {
        &self.cache_file
    }

    /// Whether the shard currently accepts connections.
    pub fn is_available(&self) -> bool {
        self.available.load(Ordering::Acquire)
    }

    /// In-flight jobs per the last health probe (stale by one interval).
    pub fn load(&self) -> u64 {
        self.load.load(Ordering::Relaxed)
    }

    /// Spawn generation (0 = never spawned; bumped per successful spawn).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Successful crash respawns so far.
    pub fn respawns(&self) -> u64 {
        self.respawns.load(Ordering::Relaxed)
    }

    /// Connects to the shard's socket.
    pub fn connect(&self) -> io::Result<UnixStream> {
        UnixStream::connect(&self.socket)
    }

    pub(crate) fn set_available(&self, available: bool) {
        self.available.store(available, Ordering::Release);
    }

    pub(crate) fn set_load(&self, load: u64) {
        self.load.store(load, Ordering::Relaxed);
    }

    /// Takes a monotonic ticket for one health probe.  The ticket is drawn
    /// *before* the probe's stats round trip, so two overlapping probes (a
    /// slow one straddling a supervision tick, or a probe racing a respawn)
    /// order by when they started, not by when they happened to finish.
    pub(crate) fn next_probe_seq(&self) -> u64 {
        self.probe_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Applies a probe's load sample unless a newer sample (or a respawn's
    /// load reset) already landed: `false` means the sample was stale and
    /// discarded, so the least-loaded policy never acts on an out-of-order
    /// reading.
    pub(crate) fn apply_load_sample(&self, seq: u64, load: u64) -> bool {
        let mut applied = self.last_applied_probe.load(Ordering::Acquire);
        loop {
            if seq <= applied {
                return false;
            }
            match self.last_applied_probe.compare_exchange_weak(
                applied,
                seq,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.set_load(load);
                    return true;
                }
                Err(current) => applied = current,
            }
        }
    }

    pub(crate) fn clear_strikes(&self) {
        self.probe_strikes.store(0, Ordering::Relaxed);
    }

    /// Records one failed probe; returns `true` when the strike budget is
    /// exhausted and the shard should be restarted.
    pub(crate) fn strike(&self) -> bool {
        self.probe_strikes.fetch_add(1, Ordering::Relaxed) + 1 >= 3
    }

    pub(crate) fn note_respawn(&self) {
        self.respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// The current child's pid, if one is running.
    pub(crate) fn pid(&self) -> Option<i32> {
        lock_ignoring_poison(&self.child)
            .as_ref()
            .map(|c| c.id() as i32)
    }

    /// `true` when the child process has exited (or never ran).  Reaps the
    /// zombie as a side effect.
    pub(crate) fn reap_if_dead(&self) -> bool {
        let mut slot = lock_ignoring_poison(&self.child);
        match slot.as_mut() {
            None => true,
            Some(child) => match child.try_wait() {
                Ok(Some(_status)) => {
                    *slot = None;
                    true
                }
                Ok(None) => false,
                // try_wait errors are unexpected; treat the child as gone so
                // the supervisor respawns rather than wedges.
                Err(_) => {
                    *slot = None;
                    true
                }
            },
        }
    }

    /// Kills the child with SIGKILL immediately (no snapshot is written).
    /// The supervisor notices the dead child and respawns it.
    pub(crate) fn kill_now(&self) -> io::Result<()> {
        self.set_available(false);
        let mut slot = lock_ignoring_poison(&self.child);
        if let Some(child) = slot.as_mut() {
            child.kill()?;
            let _ = child.wait();
            *slot = None;
        }
        Ok(())
    }

    /// Gracefully terminates the child (SIGTERM, so the engine drains its
    /// sessions and writes its cache snapshot), escalating to SIGKILL after
    /// `grace`.
    pub(crate) fn terminate(&self, grace: Duration) {
        self.set_available(false);
        let Some(pid) = self.pid() else { return };
        let _ = signal::kill(pid, signal::Signal::Terminate);
        let deadline = Instant::now() + grace;
        loop {
            if self.reap_if_dead() {
                return;
            }
            if Instant::now() >= deadline {
                let _ = self.kill_now();
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// (Re)spawns the child and waits until its socket accepts connections.
    /// On success the shard is marked available and its generation bumped.
    pub(crate) fn spawn(&self, spec: &ShardSpec) -> io::Result<()> {
        {
            let mut slot = lock_ignoring_poison(&self.child);
            if let Some(mut old) = slot.take() {
                let _ = old.kill();
                let _ = old.wait();
            }
            *slot = Some(spec.command(self).spawn()?);
        }
        let deadline = Instant::now() + spec.ready_timeout;
        loop {
            if self.connect().is_ok() {
                self.clear_strikes();
                // The fresh child has zero in-flight jobs; claim a new probe
                // ticket for that reset so any probe still in flight against
                // the *previous* child reads as stale and cannot overwrite
                // it with the dead process's load.
                let reset_ticket = self.next_probe_seq();
                self.last_applied_probe
                    .fetch_max(reset_ticket, Ordering::AcqRel);
                self.set_load(0);
                self.generation.fetch_add(1, Ordering::Relaxed);
                self.set_available(true);
                return Ok(());
            }
            if self.reap_if_dead() {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    format!("shard {} exited before accepting connections", self.index),
                ));
            }
            if Instant::now() >= deadline {
                let _ = self.kill_now();
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "shard {} not ready within {:?}",
                        self.index, spec.ready_timeout
                    ),
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_probe_samples_are_rejected() {
        let shard = Shard::new(0, Path::new("/tmp/qld-shard-test"));
        let first = shard.next_probe_seq();
        let second = shard.next_probe_seq();
        // The newer probe finishes first: its sample lands.
        assert!(shard.apply_load_sample(second, 5));
        assert_eq!(shard.load(), 5);
        // The older probe's late sample is discarded.
        assert!(!shard.apply_load_sample(first, 99));
        assert_eq!(shard.load(), 5);
        // Replaying an already-applied ticket is also stale.
        assert!(!shard.apply_load_sample(second, 99));
        assert_eq!(shard.load(), 5);
        // Probing continues normally afterwards.
        let third = shard.next_probe_seq();
        assert!(shard.apply_load_sample(third, 2));
        assert_eq!(shard.load(), 2);
    }

    #[test]
    fn probe_tickets_are_monotonic_and_start_at_one() {
        let shard = Shard::new(3, Path::new("/tmp/qld-shard-test"));
        assert_eq!(shard.next_probe_seq(), 1);
        assert_eq!(shard.next_probe_seq(), 2);
        // A zero-ticket sample (impossible in practice) is always stale.
        assert!(!shard.apply_load_sample(0, 7));
        assert_eq!(shard.load(), 0);
    }
}
