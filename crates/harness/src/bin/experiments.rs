//! Prints the experiment tables (E2–E14).
//!
//! ```text
//! cargo run --release -p qld-harness --bin experiments            # all experiments
//! cargo run --release -p qld-harness --bin experiments -- --exp e3
//! cargo run --release -p qld-harness --bin experiments -- --tsv   # machine-readable
//! ```

use qld_harness::experiments::{run, run_all, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tsv = args.iter().any(|a| a == "--tsv");
    let selected: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--exp")
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect();

    let tables = if selected.is_empty() {
        run_all()
    } else {
        let mut out = Vec::new();
        for id in &selected {
            match run(id) {
                Some(t) => out.push(t),
                None => {
                    eprintln!(
                        "unknown experiment `{id}`; available: {}",
                        ALL_EXPERIMENTS.join(", ")
                    );
                    std::process::exit(2);
                }
            }
        }
        out
    };

    for table in tables {
        if tsv {
            println!("# {} — {}", table.id, table.title);
            print!("{}", table.to_tsv());
            println!();
        } else {
            println!("{}", table.render());
        }
    }
}
