//! Regenerates Figure 1 of the paper (the complexity-class inclusion diagram).
//!
//! ```text
//! cargo run -p qld-harness --bin figure1            # ASCII rendering
//! cargo run -p qld-harness --bin figure1 -- --dot   # Graphviz DOT
//! ```

use qld_harness::figure::{figure1_ascii, figure1_dot};

fn main() {
    let dot = std::env::args().any(|a| a == "--dot");
    if dot {
        print!("{}", figure1_dot());
    } else {
        print!("{}", figure1_ascii());
    }
}
