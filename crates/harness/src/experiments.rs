//! The experiment suite (E2–E17).
//!
//! Each function reproduces one of the paper claims listed in `DESIGN.md` /
//! `EXPERIMENTS.md` and returns a [`Table`]; the `experiments` binary prints them, and
//! the Criterion benches in `qld-bench` time the same workloads.

use crate::table::{f2, mark, micros, Table};
use crate::workloads;
use qld_core::guess_check::{find_certificate, verify_certificate, CertificateCheck};
use qld_core::instance::DualInstance;
use qld_core::path::{max_branching, max_descriptor_length};
use qld_core::tree::{build_tree, BuildOptions};
use qld_core::witness::missing_dual_edge;
use qld_core::{
    BorosMakinoTreeSolver, DualityResult, DualitySolver, QuadLogspaceSolver, SpaceStrategy,
};
use qld_fk::{AssignmentBruteSolver, BergeSolver, FkASolver};
use qld_logspace::SpaceMeter;
use std::time::Instant;

/// Identifiers of all experiments, in presentation order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17",
];

/// Runs one experiment by identifier (`"e2"` … `"e16"`).
pub fn run(id: &str) -> Option<Table> {
    match id {
        "e2" => Some(e2_tree_shape()),
        "e3" => Some(e3_space_scaling()),
        "e4" => Some(e4_solver_comparison()),
        "e5" => Some(e5_witnesses()),
        "e6" => Some(e6_guess_check()),
        "e7" => Some(e7_itemset_identification()),
        "e8" => Some(e8_additional_keys()),
        "e9" => Some(e9_coteries()),
        "e10" => Some(e10_engine_batch()),
        "e11" => Some(e11_socket_serve()),
        "e12" => Some(e12_hotpath()),
        "e13" => Some(e13_streaming()),
        "e14" => Some(e14_fleet()),
        "e15" => Some(e15_parallel()),
        "e16" => Some(e16_local()),
        "e17" => Some(e17_coalesce()),
        _ => None,
    }
}

/// Runs every experiment.
pub fn run_all() -> Vec<Table> {
    ALL_EXPERIMENTS.iter().filter_map(|id| run(id)).collect()
}

/// E2 — Proposition 2.1(2,3): decomposition-tree depth is at most `⌊log₂|H|⌋` and
/// branching at most `|V|·|G|`.
pub fn e2_tree_shape() -> Table {
    let mut table = Table::new(
        "E2",
        "Decomposition-tree shape vs. the bounds of Proposition 2.1",
        &[
            "instance",
            "|V|",
            "|G|",
            "|H|",
            "nodes",
            "leaves",
            "depth",
            "floor(log2|H|)",
            "max-branch",
            "|V|*|G|",
            "bounds-ok",
        ],
    );
    for li in workloads::dual_instances() {
        let inst = DualInstance::new(li.g.clone(), li.h.clone()).unwrap();
        let (oriented, _) = inst.oriented();
        let tree = build_tree(&oriented, &BuildOptions::default()).unwrap();
        let stats = tree.stats();
        let depth_bound = max_descriptor_length(oriented.h().num_edges());
        let branch_bound = oriented.num_vertices() * oriented.g().num_edges();
        let ok = stats.depth <= depth_bound && stats.max_branching <= branch_bound + 1;
        table.push_row(vec![
            li.name.clone(),
            oriented.num_vertices().to_string(),
            oriented.g().num_edges().to_string(),
            oriented.h().num_edges().to_string(),
            stats.nodes.to_string(),
            stats.leaves.to_string(),
            stats.depth.to_string(),
            depth_bound.to_string(),
            stats.max_branching.to_string(),
            branch_bound.to_string(),
            mark(ok),
        ]);
    }
    table
}

/// E3 — Theorem 4.1: the decomposition can be driven with `O(log² n)` metered work
/// space; comparison of the faithful recompute strategy, the per-level materializing
/// strategy, and the explicit tree.
pub fn e3_space_scaling() -> Table {
    let mut table = Table::new(
        "E3",
        "Peak metered work space vs. c·log²(n) (Theorem 4.1)",
        &[
            "instance",
            "input-bits n",
            "log2^2(n)",
            "recompute-bits",
            "recompute/log2^2",
            "chain-bits",
            "chain/log2^2",
            "tree-bits",
            "tree/log2^2",
        ],
    );
    for (li, measure_recompute) in workloads::space_scaling_instances() {
        let input_bits = li.encoding_bits();
        let log2 = (input_bits.max(2) as f64).log2();
        let log2sq = log2 * log2;

        let chain = QuadLogspaceSolver::new(SpaceStrategy::MaterializeChain);
        let (_, chain_report) = chain.decide_with_space(&li.g, &li.h).unwrap();

        let (rec_bits, rec_ratio) = if measure_recompute {
            let rec = QuadLogspaceSolver::new(SpaceStrategy::Recompute);
            let (_, report) = rec.decide_with_space(&li.g, &li.h).unwrap();
            (
                report.peak_bits.to_string(),
                f2(report.peak_bits as f64 / log2sq),
            )
        } else {
            ("-".to_string(), "-".to_string())
        };

        let inst = DualInstance::new(li.g.clone(), li.h.clone()).unwrap();
        let (oriented, _) = inst.oriented();
        let tree = build_tree(&oriented, &BuildOptions::default()).unwrap();
        let tree_bits = tree.resident_bits(
            oriented.num_vertices(),
            max_branching(oriented.num_vertices(), oriented.g().num_edges()),
        );

        table.push_row(vec![
            li.name.clone(),
            input_bits.to_string(),
            f2(log2sq),
            rec_bits,
            rec_ratio,
            chain_report.peak_bits.to_string(),
            f2(chain_report.peak_bits as f64 / log2sq),
            tree_bits.to_string(),
            f2(tree_bits as f64 / log2sq),
        ]);
    }
    table
}

/// E4 — solver comparison on dual and non-dual instances: the decomposition solvers
/// versus the classical baselines (who wins, and that everyone agrees).
pub fn e4_solver_comparison() -> Table {
    let mut table = Table::new(
        "E4",
        "Solver comparison (all verdicts agree; times in microseconds)",
        &[
            "instance",
            "dual?",
            "berge-us",
            "fk-a-us",
            "bm-tree-us",
            "quadlog-us",
            "agree",
        ],
    );
    let berge = BergeSolver::new();
    let fka = FkASolver::new();
    let bm = BorosMakinoTreeSolver::new();
    let quadlog = QuadLogspaceSolver::default();
    let mut instances = workloads::dual_instances();
    instances.extend(workloads::non_dual_instances());
    for li in instances {
        let mut verdicts = Vec::new();
        let mut times = Vec::new();
        for solver in [
            &berge as &dyn DualitySolver,
            &fka as &dyn DualitySolver,
            &bm as &dyn DualitySolver,
            &quadlog as &dyn DualitySolver,
        ] {
            let start = Instant::now();
            let verdict = solver.decide(&li.g, &li.h).unwrap();
            times.push(start.elapsed());
            verdicts.push(verdict.is_dual());
        }
        let agree = verdicts.iter().all(|&v| v == li.dual);
        table.push_row(vec![
            li.name.clone(),
            mark(li.dual),
            micros(times[0]),
            micros(times[1]),
            micros(times[2]),
            micros(times[3]),
            mark(agree),
        ]);
    }
    table
}

/// E5 — Corollary 4.1(2): on non-dual instances the solver produces a new transversal,
/// which verifies and minimizes to a missing dual edge.
pub fn e5_witnesses() -> Table {
    let mut table = Table::new(
        "E5",
        "New-transversal witnesses on non-dual instances (Corollary 4.1)",
        &[
            "instance",
            "witness-kind",
            "witness-size",
            "verifies",
            "minimal-missing-edge",
            "time-us",
        ],
    );
    let solver = QuadLogspaceSolver::default();
    for li in workloads::non_dual_instances() {
        let start = Instant::now();
        let result = solver.decide(&li.g, &li.h).unwrap();
        let elapsed = start.elapsed();
        match result {
            DualityResult::Dual => {
                table.push_row(vec![
                    li.name.clone(),
                    "(decided dual!)".into(),
                    "-".into(),
                    mark(false),
                    "-".into(),
                    micros(elapsed),
                ]);
            }
            DualityResult::NotDual(witness) => {
                let verifies = qld_core::verify_witness(&li.g, &li.h, &witness);
                let kind = match &witness {
                    qld_core::NonDualWitness::DisjointEdges { .. } => "disjoint-edges",
                    qld_core::NonDualWitness::NewTransversalOfG(_) => "new-transversal(G)",
                    qld_core::NonDualWitness::NewTransversalOfH(_) => "new-transversal(H)",
                };
                let size = witness
                    .transversal()
                    .map(|t| t.len().to_string())
                    .unwrap_or_else(|| "-".into());
                let minimal = missing_dual_edge(&li.g, &li.h, &witness)
                    .map(|m| format!("{m}"))
                    .unwrap_or_else(|| "-".into());
                table.push_row(vec![
                    li.name.clone(),
                    kind.into(),
                    size,
                    mark(verifies),
                    minimal,
                    micros(elapsed),
                ]);
            }
        }
    }
    table
}

/// E6 — Theorem 5.1: non-duality certificates of `O(log² n)` bits, verified by the
/// Lemma 5.1 checker.
pub fn e6_guess_check() -> Table {
    let mut table = Table::new(
        "E6",
        "Guess-and-check certificates (Theorem 5.1)",
        &[
            "instance",
            "input-bits n",
            "cert-bits",
            "4*log2^2(n)",
            "within-budget",
            "verifies",
            "verify-peak-bits",
        ],
    );
    for li in workloads::non_dual_instances() {
        let meter = SpaceMeter::new();
        let cert = match find_certificate(&li.g, &li.h, &meter).unwrap() {
            Some(c) => c,
            None => continue,
        };
        let input_bits = li.encoding_bits();
        let log2 = (input_bits.max(2) as f64).log2();
        let budget = 4.0 * log2 * log2;
        let bits = cert.bits(
            li.g.num_vertices().max(li.h.num_vertices()),
            li.g.num_edges().max(li.h.num_edges()),
        );
        let verify_meter = SpaceMeter::new();
        let check = verify_certificate(
            &li.g,
            &li.h,
            &cert,
            SpaceStrategy::MaterializeChain,
            &verify_meter,
        )
        .unwrap();
        table.push_row(vec![
            li.name.clone(),
            input_bits.to_string(),
            bits.to_string(),
            f2(budget),
            mark((bits as f64) <= budget),
            mark(check == CertificateCheck::RefutesDuality),
            verify_meter.peak_bits().to_string(),
        ]);
    }
    table
}

/// E7 — Proposition 1.1: MaxFreq-MinInfreq identification and border computation by
/// repeated dualization, cross-checked against level-wise mining.
pub fn e7_itemset_identification() -> Table {
    let mut table = Table::new(
        "E7",
        "Frequent-itemset borders via duality (Proposition 1.1)",
        &[
            "relation",
            "items",
            "rows",
            "z",
            "|IS+|",
            "|IS-|",
            "dual-calls",
            "matches-apriori",
            "matches-exhaustive",
            "time-us",
        ],
    );
    for (name, relation, z) in workloads::datamining_workloads() {
        let start = Instant::now();
        let result = qld_datamining::dualize_and_advance(&relation, z).unwrap();
        let elapsed = start.elapsed();
        let apriori = qld_datamining::apriori(&relation, z);
        let exact = qld_datamining::borders_exact(&relation, z);
        let matches_apriori = result
            .maximal_frequent
            .same_edge_set(&apriori.maximal_frequent(relation.num_items()));
        let matches_exact = result
            .maximal_frequent
            .same_edge_set(&exact.maximal_frequent)
            && result
                .minimal_infrequent
                .same_edge_set(&exact.minimal_infrequent);
        table.push_row(vec![
            name,
            relation.num_items().to_string(),
            relation.num_rows().to_string(),
            z.to_string(),
            result.maximal_frequent.num_edges().to_string(),
            result.minimal_infrequent.num_edges().to_string(),
            result.stats.identification_calls.to_string(),
            mark(matches_apriori),
            mark(matches_exact),
            micros(elapsed),
        ]);
    }
    table
}

/// E8 — Proposition 1.2: the additional-key problem and minimal-key enumeration via
/// duality, cross-checked against brute force.
pub fn e8_additional_keys() -> Table {
    let mut table = Table::new(
        "E8",
        "Minimal keys via duality (Proposition 1.2)",
        &[
            "instance",
            "attrs",
            "rows",
            "min-keys",
            "dual-calls",
            "matches-brute",
            "additional-key-after-drop",
            "time-us",
        ],
    );
    for (name, r) in workloads::key_workloads() {
        let start = Instant::now();
        let (keys, calls) =
            qld_keys::enumerate_minimal_keys_with(&r, &QuadLogspaceSolver::default()).unwrap();
        let elapsed = start.elapsed();
        let brute = qld_keys::minimal_keys_brute(&r);
        let matches = keys.same_edge_set(&brute);
        // Drop one key (if any) and confirm the additional-key check rediscovers one.
        let rediscovers = if keys.num_edges() >= 1 {
            let mut partial = keys.clone();
            partial.remove_edge(0);
            matches!(
                qld_keys::additional_key(&r, &partial).unwrap(),
                qld_keys::AdditionalKey::Found(_)
            )
        } else {
            true
        };
        table.push_row(vec![
            name,
            r.num_attributes().to_string(),
            r.num_rows().to_string(),
            keys.num_edges().to_string(),
            calls.to_string(),
            mark(matches),
            mark(rediscovers),
            micros(elapsed),
        ]);
    }
    table
}

/// E9 — Proposition 1.3: coterie non-domination via self-duality, cross-checked against
/// exact dualization, with a dominating coterie exhibited whenever the input is
/// dominated.
pub fn e9_coteries() -> Table {
    let mut table = Table::new(
        "E9",
        "Coterie non-domination via self-duality (Proposition 1.3)",
        &[
            "coterie",
            "nodes",
            "quorums",
            "non-dominated",
            "matches-exact",
            "dominating-quorums",
            "time-us",
        ],
    );
    for (name, coterie) in workloads::coterie_workloads() {
        let start = Instant::now();
        let result = qld_coteries::check_domination(&coterie).unwrap();
        let elapsed = start.elapsed();
        let exact = qld_hypergraph::transversal::is_self_dual_exact(coterie.quorums());
        let dominating = match &result {
            qld_coteries::Domination::NonDominated => "-".to_string(),
            qld_coteries::Domination::DominatedBy(d) => d.num_quorums().to_string(),
        };
        table.push_row(vec![
            name,
            coterie.num_nodes().to_string(),
            coterie.num_quorums().to_string(),
            mark(result.is_non_dominated()),
            mark(result.is_non_dominated() == exact),
            dominating,
            micros(elapsed),
        ]);
    }
    table
}

/// E10 — the batch query engine: throughput of a mixed batch (duality checks,
/// limited enumerations, border identifications, key enumerations) at growing
/// worker counts, with every run cross-checked against the single-worker,
/// cache-less baseline.
pub fn e10_engine_batch() -> Table {
    use qld_engine::{Engine, EngineConfig};

    let mut table = Table::new(
        "E10",
        "Engine batch throughput vs. workers (same answers as direct solver calls)",
        &[
            "workers",
            "cache",
            "requests",
            "errors",
            "total-ms",
            "req/s",
            "cache-hits",
            "matches-direct",
        ],
    );
    let requests = workloads::engine_batch(120);
    let baseline_engine = Engine::new(EngineConfig {
        workers: 1,
        cache: false,
        ..EngineConfig::default()
    });
    let baseline = baseline_engine.run_batch(requests.clone());

    let max_workers = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .min(8);
    let mut worker_counts = vec![1, 2, 4, max_workers];
    worker_counts.sort_unstable();
    worker_counts.dedup();
    for workers in worker_counts {
        for cache in [false, true] {
            let engine = Engine::new(EngineConfig {
                workers,
                cache,
                ..EngineConfig::default()
            });
            let started = Instant::now();
            let responses = engine.run_batch(requests.clone());
            let elapsed = started.elapsed();
            let matches = responses.len() == baseline.len()
                && responses
                    .iter()
                    .zip(&baseline)
                    .all(|(a, b)| a.outcome == b.outcome);
            let errors = responses.iter().filter(|r| !r.is_ok()).count();
            table.push_row(vec![
                workers.to_string(),
                if cache { "on" } else { "off" }.to_string(),
                responses.len().to_string(),
                errors.to_string(),
                f2(elapsed.as_secs_f64() * 1e3),
                f2(responses.len() as f64 / elapsed.as_secs_f64()),
                engine.cache_stats().hits.to_string(),
                mark(matches && errors == 0),
            ]);
        }
    }
    table
}

/// E11 — the daemon transport: throughput of concurrent clients on one Unix
/// socket, in input order and out-of-order (`order=arrival`), every client
/// checking that it received one successful answer per request on its own
/// connection.
pub fn e11_socket_serve() -> Table {
    let mut table = Table::new(
        "E11",
        "Socket daemon: concurrent clients on one shared worker pool",
        &[
            "clients",
            "order",
            "req/client",
            "requests",
            "errors",
            "total-ms",
            "req/s",
            "all-answered",
        ],
    );
    #[cfg(unix)]
    e11_fill(&mut table);
    #[cfg(not(unix))]
    table.push_row(vec![
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "(unix only)".into(),
    ]);
    table
}

#[cfg(unix)]
fn e11_fill(table: &mut Table) {
    use qld_engine::{Engine, EngineConfig, ServeOptions, SocketServer};
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;

    const PER_CLIENT: usize = 60;
    let lines = Arc::new(workloads::engine_wire_lines(PER_CLIENT));
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let path = std::env::temp_dir().join(format!("qld-e11-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let server = match SocketServer::bind(&path) {
        Ok(s) => s,
        Err(e) => {
            table.push_row(vec![
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("bind failed: {e}"),
            ]);
            return;
        }
    };
    let shutdown = server.shutdown_handle();
    let engine_ref = Arc::clone(&engine);
    let runner = std::thread::spawn(move || server.run(&engine_ref, ServeOptions::default()));

    for clients in [1usize, 2, 4] {
        for order in ["input", "arrival"] {
            let started = Instant::now();
            let mut sessions = Vec::new();
            for _ in 0..clients {
                let path = path.clone();
                let lines = Arc::clone(&lines);
                sessions.push(std::thread::spawn(move || -> (usize, usize) {
                    let mut stream = UnixStream::connect(&path).expect("connect");
                    for (i, line) in lines.iter().take(PER_CLIENT).enumerate() {
                        // Exercise the per-request keywords: correlation ids
                        // everywhere, order override on every line.
                        writeln!(stream, "{line} id=c{i} order={order}").expect("send");
                    }
                    stream
                        .shutdown(std::net::Shutdown::Write)
                        .expect("half-close");
                    let mut answered = 0usize;
                    let mut errors = 0usize;
                    for response in BufReader::new(stream).lines() {
                        let response = response.expect("response line");
                        answered += 1;
                        if response.contains("\"ok\":false") {
                            errors += 1;
                        }
                    }
                    (answered, errors)
                }));
            }
            let mut requests = 0usize;
            let mut errors = 0usize;
            let mut all_answered = true;
            for session in sessions {
                let (answered, errs) = session.join().expect("client thread");
                all_answered &= answered == PER_CLIENT;
                requests += answered;
                errors += errs;
            }
            let elapsed = started.elapsed();
            table.push_row(vec![
                clients.to_string(),
                order.to_string(),
                PER_CLIENT.to_string(),
                requests.to_string(),
                errors.to_string(),
                f2(elapsed.as_secs_f64() * 1e3),
                f2(requests as f64 / elapsed.as_secs_f64()),
                mark(all_answered && errors == 0),
            ]);
        }
    }
    shutdown.shutdown();
    let _ = runner.join();
}

/// A tiny sanity harness used by integration tests: every table row that carries a
/// correctness column must report success.
pub fn all_correctness_cells_pass(table: &Table) -> bool {
    let check_columns: Vec<usize> = table
        .columns
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            c.contains("ok")
                || c.contains("agree")
                || c.contains("matches")
                || c.contains("verifies")
        })
        .map(|(i, _)| i)
        .collect();
    table
        .rows
        .iter()
        .all(|row| check_columns.iter().all(|&i| row[i] != "NO"))
}

/// Cross-validation helper shared with the brute-force baseline solver (used by tests
/// to keep E4's "agree" column honest even for tiny instances).
pub fn brute_force_agrees(li: &qld_hypergraph::generators::LabelledInstance) -> bool {
    if li.g.num_vertices().max(li.h.num_vertices()) > 16 {
        return true;
    }
    AssignmentBruteSolver::new()
        .is_dual(&li.g, &li.h)
        .map(|d| d == li.dual)
        .unwrap_or(false)
}

/// E12 — the set-representation hot path: `oracle::classify` and transversal-check
/// throughput of the inline-`VertexSet` + `HypergraphIndex` layer against a faithful
/// replica of the pre-refactor layout (heap word vectors, per-bit kernels,
/// query-driven classify).  Every row first cross-checks that both paths agree.
pub fn e12_hotpath() -> Table {
    let mut table = Table::new(
        "E12",
        "Hot-path throughput: inline sets + hypergraph index vs. pre-refactor layout",
        &[
            "metric",
            "|V|",
            "repr",
            "ops/iter",
            "before-ns/op",
            "after-ns/op",
            "speedup",
        ],
    );
    for m in crate::hotpath::measure_all(24) {
        let per_op = |total_ns: f64| total_ns / m.ops_per_iter as f64;
        table.push_row(vec![
            m.name.to_string(),
            m.universe.to_string(),
            if m.universe <= 64 {
                "inline"
            } else if m.universe <= 128 {
                "spilled"
            } else {
                "wide"
            }
            .to_string(),
            m.ops_per_iter.to_string(),
            f2(per_op(m.baseline_ns)),
            f2(per_op(m.optimized_ns)),
            format!("{:.2}x", m.speedup()),
        ]);
    }
    table
}

/// One measured streaming run: latency to the first item vs. the last, plus
/// the one-shot (non-streaming) wall time for the same request.
pub struct StreamingMeasurement {
    /// Workload label.
    pub name: String,
    /// Items the stream yielded.
    pub items: usize,
    /// Microseconds from submission to the first item chunk.
    pub first_item_us: f64,
    /// Microseconds from submission to the terminal `done` response.
    pub done_us: f64,
    /// Microseconds the same request takes one-shot (fresh engine, no cache).
    pub oneshot_us: f64,
    /// Whether the chunks reassembled into exactly the terminal result.
    pub agree: bool,
}

impl StreamingMeasurement {
    /// Time-to-first-result as a fraction of time-to-last (small is the
    /// whole point of streaming).
    pub fn first_fraction(&self) -> f64 {
        if self.done_us > 0.0 {
            self.first_item_us / self.done_us
        } else {
            1.0
        }
    }

    /// One JSON object for the `e13_stream` trajectory file.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":{:?},\"items\":{},\"first_item_us\":{:.1},\"done_us\":{:.1},\
             \"oneshot_us\":{:.1},\"agree\":{}}}",
            self.name, self.items, self.first_item_us, self.done_us, self.oneshot_us, self.agree
        )
    }
}

/// Runs every streaming workload through a fresh cache-less engine and
/// measures time-to-first-item vs. time-to-last (shared by E13 and the
/// `e13_stream` bench).
pub fn measure_streaming() -> Vec<StreamingMeasurement> {
    use qld_engine::{
        ChunkPayload, Engine, EngineConfig, Outcome, StreamEvent, StreamItem, StreamRunOptions,
    };

    let mut out = Vec::new();
    for (name, request) in workloads::streaming_workloads() {
        // Cache off: both runs must actually execute, or the comparison is
        // replay-vs-replay.
        let engine = Engine::new(EngineConfig {
            workers: 1,
            cache: false,
            ..EngineConfig::default()
        });
        let started = Instant::now();
        let handle = engine.run_streaming(request.clone(), StreamRunOptions::default());
        let mut first_item_us = 0.0f64;
        let mut items: Vec<StreamItem> = Vec::new();
        let mut done = None;
        while let Some(event) = handle.next_event() {
            match event {
                StreamEvent::Chunk(frame) => {
                    if let ChunkPayload::Item(item) = frame.payload {
                        if items.is_empty() {
                            first_item_us = started.elapsed().as_micros() as f64;
                        }
                        items.push(item);
                    }
                }
                StreamEvent::Done(response) => {
                    done = Some(response);
                    break;
                }
            }
        }
        let done_us = started.elapsed().as_micros() as f64;
        let done = done.expect("stream ended with a done frame");

        let oneshot_started = Instant::now();
        let oneshot = engine.run_one(request);
        let oneshot_us = oneshot_started.elapsed().as_micros() as f64;

        // Reassemble the chunks and compare against the terminal result.
        let mut streamed: Vec<String> = items.iter().map(|i| format!("{i:?}")).collect();
        streamed.sort();
        let mut terminal: Vec<String> = match &done.outcome {
            Ok(Outcome::Transversals { transversals, .. }) => transversals
                .iter()
                .map(|t| format!("{:?}", StreamItem::Transversal(t.clone())))
                .collect(),
            Ok(Outcome::FullBorders {
                maximal_frequent,
                minimal_infrequent,
                ..
            }) => maximal_frequent
                .iter()
                .map(|s| {
                    format!(
                        "{:?}",
                        StreamItem::BorderElement {
                            maximal: true,
                            itemset: s.clone()
                        }
                    )
                })
                .chain(minimal_infrequent.iter().map(|s| {
                    format!(
                        "{:?}",
                        StreamItem::BorderElement {
                            maximal: false,
                            itemset: s.clone()
                        }
                    )
                }))
                .collect(),
            other => panic!("unexpected streaming outcome {other:?}"),
        };
        terminal.sort();
        let agree =
            done.halted.is_none() && streamed == terminal && done.outcome == oneshot.outcome;
        out.push(StreamingMeasurement {
            name,
            items: items.len(),
            first_item_us,
            done_us,
            oneshot_us,
            agree,
        });
    }
    out
}

/// E13 — the streaming job pipeline: time-to-first-result vs. time-to-last
/// for streamed transversal enumeration and full-border identification, with
/// every run cross-checked (chunks reassemble into the terminal result, which
/// equals the one-shot answer).
pub fn e13_streaming() -> Table {
    let mut table = Table::new(
        "E13",
        "Streaming: time-to-first-item vs. time-to-last (chunks ≡ one-shot result)",
        &[
            "workload",
            "items",
            "first-item-us",
            "done-us",
            "first/done",
            "oneshot-us",
            "agree",
        ],
    );
    for m in measure_streaming() {
        table.push_row(vec![
            m.name.clone(),
            m.items.to_string(),
            f2(m.first_item_us),
            f2(m.done_us),
            f2(m.first_fraction()),
            f2(m.oneshot_us),
            mark(m.agree),
        ]);
    }
    table
}

/// One measured fleet configuration: a cold pass, a warm re-ask pass (cache
/// affinity), and — with two or more shards — the time to respawn a
/// SIGKILLed shard.
pub struct FleetMeasurement {
    /// Backend shard processes behind the router.
    pub shards: usize,
    /// Requests answered in the cold pass.
    pub requests: u64,
    /// Error responses across both passes.
    pub errors: u64,
    /// Cold-pass wall time in milliseconds.
    pub total_ms: f64,
    /// Cold-pass throughput through the router.
    pub req_per_s: f64,
    /// `cache_hit:true` responses in the warm re-ask pass; with
    /// consistent-hash affinity this equals `requests`.
    pub warm_hits: u64,
    /// Milliseconds from SIGKILLing a shard to its respawn accepting
    /// connections (negative when not measured, i.e. a single shard).
    pub recovery_ms: f64,
    /// Every request answered, no errors, full affinity, recovery worked.
    pub ok: bool,
}

impl FleetMeasurement {
    /// One JSON object for the `e14_front` trajectory file.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"shards\":{},\"requests\":{},\"errors\":{},\"total_ms\":{:.1},\
             \"req_per_s\":{:.1},\"warm_hits\":{},\"recovery_ms\":{:.1},\"ok\":{}}}",
            self.shards,
            self.requests,
            self.errors,
            self.total_ms,
            self.req_per_s,
            self.warm_hits,
            self.recovery_ms,
            self.ok
        )
    }
}

/// Finds the `qld` binary for spawning fleet shards: `$QLD_BIN` when set,
/// otherwise a `qld` next to (or one level above, for `deps/` executables)
/// the current executable.
pub fn locate_qld_binary() -> Option<std::path::PathBuf> {
    if let Some(path) = std::env::var_os("QLD_BIN") {
        let path = std::path::PathBuf::from(path);
        return path.is_file().then_some(path);
    }
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?;
    for _ in 0..2 {
        let candidate = dir.join("qld");
        if candidate.is_file() {
            return Some(candidate);
        }
        dir = dir.parent()?;
    }
    None
}

/// Measures shard-count scaling and crash recovery through an in-process
/// router over real `qld serve` shard processes (shared by E14 and the
/// `e14_front` bench).  Returns an empty vector when the platform has no
/// Unix sockets or the `qld` binary cannot be found.
pub fn measure_fleet() -> Vec<FleetMeasurement> {
    #[cfg(unix)]
    {
        measure_fleet_unix()
    }
    #[cfg(not(unix))]
    {
        Vec::new()
    }
}

#[cfg(unix)]
fn measure_fleet_unix() -> Vec<FleetMeasurement> {
    use qld_engine::SocketServer;
    use qld_front::{policy_from_name, session_handler, Fleet, FleetConfig, Router};
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;
    use std::time::Duration;

    let Some(binary) = locate_qld_binary() else {
        return Vec::new();
    };
    let lines = workloads::engine_wire_lines(40);

    let mut out = Vec::new();
    for shards in [1usize, 2] {
        let dir = std::env::temp_dir().join(format!("qld-e14-{}-{}", shards, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = FleetConfig::new(shards, binary.clone(), dir.join("shards"));
        config.probe_interval = Duration::from_millis(50);
        config.spec.workers = Some(2);
        let Ok(fleet) = Fleet::start(config) else {
            continue;
        };
        let policy = policy_from_name("hash", shards).expect("hash policy");
        let router = Router::new(Arc::clone(&fleet), policy, true);
        let socket = dir.join("front.sock");
        let Ok(server) = SocketServer::bind(&socket) else {
            fleet.shutdown();
            continue;
        };
        let shutdown = server.shutdown_handle();
        let runner = std::thread::spawn(move || server.run_with(Arc::new(session_handler(router))));

        // One pass of the workload over a fresh connection: returns
        // (answered, errors, cache hits).
        let pass = |tag: &str| -> (u64, u64, u64) {
            let mut stream = UnixStream::connect(&socket).expect("connect to front");
            for (i, line) in lines.iter().enumerate() {
                writeln!(stream, "{line} id={tag}-{i}").expect("send");
            }
            stream
                .shutdown(std::net::Shutdown::Write)
                .expect("half-close");
            let (mut answered, mut errors, mut hits) = (0u64, 0u64, 0u64);
            for response in BufReader::new(stream).lines() {
                let response = response.expect("response line");
                answered += 1;
                if response.contains("\"ok\":false") {
                    errors += 1;
                }
                if response.contains("\"cache_hit\":true") {
                    hits += 1;
                }
            }
            (answered, errors, hits)
        };

        let started = Instant::now();
        let (requests, cold_errors, _) = pass("cold");
        let elapsed = started.elapsed();

        // The warm pass must hit every shard-side cache entry: affinity
        // keeps each key on the shard that computed it.
        let (warm_answered, warm_errors, warm_hits) = pass("warm");

        // Crash recovery: SIGKILL one shard, time the supervisor respawn.
        let (recovery_ms, recovered) = if shards >= 2 {
            let killed_at = Instant::now();
            let recovered =
                fleet.kill_shard(0).is_ok() && fleet.wait_available(0, Duration::from_secs(30));
            (killed_at.elapsed().as_secs_f64() * 1e3, recovered)
        } else {
            (-1.0, true)
        };

        shutdown.shutdown();
        let _ = runner.join();
        fleet.shutdown();
        let _ = std::fs::remove_dir_all(&dir);

        let errors = cold_errors + warm_errors;
        out.push(FleetMeasurement {
            shards,
            requests,
            errors,
            total_ms: elapsed.as_secs_f64() * 1e3,
            req_per_s: requests as f64 / elapsed.as_secs_f64().max(1e-9),
            warm_hits,
            recovery_ms,
            ok: requests == lines.len() as u64
                && warm_answered == lines.len() as u64
                && errors == 0
                && warm_hits == lines.len() as u64
                && recovered,
        });
    }
    out
}

/// E14 — the shard-fleet router: request throughput through the front at 1
/// vs. 2 shards, warm re-ask affinity (every key hits the shard that
/// computed it), and supervisor crash-recovery time.
pub fn e14_fleet() -> Table {
    let mut table = Table::new(
        "E14",
        "Fleet router: shard scaling, cache affinity, crash recovery",
        &[
            "shards",
            "requests",
            "errors",
            "total-ms",
            "req/s",
            "warm-hits",
            "recovery-ms",
            "all-ok",
        ],
    );
    let measurements = measure_fleet();
    if measurements.is_empty() {
        table.push_row(vec![
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "(needs unix sockets and a built `qld` binary)".into(),
        ]);
        return table;
    }
    for m in measurements {
        table.push_row(vec![
            m.shards.to_string(),
            m.requests.to_string(),
            m.errors.to_string(),
            f2(m.total_ms),
            f2(m.req_per_s),
            m.warm_hits.to_string(),
            if m.recovery_ms < 0.0 {
                "-".into()
            } else {
                f2(m.recovery_ms)
            },
            mark(m.ok),
        ]);
    }
    table
}

/// One measured run of a large duality query: worker count × intra-query
/// splitting on/off, with the subtask counters the engine recorded for it.
pub struct ParallelMeasurement {
    /// Workload label.
    pub name: String,
    /// Worker threads in the engine pool.
    pub workers: usize,
    /// Whether intra-query splitting was forced on (`parallel_threshold = 0`)
    /// or off (`usize::MAX`).
    pub split: bool,
    /// Wall time of the query, milliseconds.
    pub wall_ms: f64,
    /// Subtasks spawned while answering it.
    pub subtasks: u64,
    /// Subtasks executed by a worker other than the owner.
    pub subtasks_stolen: u64,
    /// The outcome matched the sequential single-worker baseline.
    pub matches_baseline: bool,
}

impl ParallelMeasurement {
    /// One JSON object for the bench trajectory file.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"workers\":{},\"split\":{},\"wall_ms\":{:.2},\"subtasks\":{},\"subtasks_stolen\":{},\"matches\":{}}}",
            self.name,
            self.workers,
            self.split,
            self.wall_ms,
            self.subtasks,
            self.subtasks_stolen,
            self.matches_baseline
        )
    }
}

/// Shared by E15 and the `e15_parallel` bench: large `QuadChain` duality
/// queries (a matching instance of the given order and a broken variant; the
/// dual side has `2^scale` edges) on fresh engines at 1 and N workers, with
/// intra-query splitting forced on and off.  Every run's outcome is
/// cross-checked against the sequential single-worker configuration, whose
/// row is the baseline (`workers = 1`, `split = false`).
pub fn measure_parallel(scale: usize) -> Vec<ParallelMeasurement> {
    use qld_engine::{Engine, EngineConfig, FixedPolicy, Request, SolverKind};
    use qld_hypergraph::generators;
    use std::sync::Arc;

    let li = generators::matching_instance(scale);
    let mut broken = li.h.clone();
    broken.remove_edge(1);
    let instances = [
        (
            "matching-dual",
            Request::DecideDuality {
                g: li.g.clone(),
                h: li.h.clone(),
            },
        ),
        (
            "matching-broken",
            Request::DecideDuality {
                g: li.g.clone(),
                h: broken,
            },
        ),
    ];
    let make = |workers: usize, threshold: usize| {
        Engine::new(EngineConfig {
            workers,
            cache: false,
            policy: Arc::new(FixedPolicy(SolverKind::QuadChain)),
            parallel_threshold: threshold,
            ..EngineConfig::default()
        })
    };
    // On a single-CPU container extra workers cannot help wall time; N > 1
    // still proves the split/steal machinery end to end.
    let max_workers = std::thread::available_parallelism()
        .map_or(2, usize::from)
        .clamp(2, 4);

    let mut out = Vec::new();
    for (name, request) in instances {
        let mut baseline_outcome = None;
        for (workers, split) in [
            (1, false),
            (1, true),
            (max_workers, false),
            (max_workers, true),
        ] {
            let engine = make(workers, if split { 0 } else { usize::MAX });
            let started = Instant::now();
            let response = engine.run_one(request.clone());
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            let (subtasks, subtasks_stolen) = engine.subtask_stats();
            let matches_baseline = match &baseline_outcome {
                None => {
                    baseline_outcome = Some(response.outcome.clone());
                    response.is_ok()
                }
                Some(base) => response.outcome == *base,
            };
            out.push(ParallelMeasurement {
                name: name.to_string(),
                workers,
                split,
                wall_ms,
                subtasks,
                subtasks_stolen,
                matches_baseline,
            });
        }
    }
    out
}

/// E15 — intra-query parallelism: 1-vs-N-worker latency of the largest
/// `QuadChain` queries with work-stealing subtasks forced on and off.  Every
/// configuration must answer exactly like the sequential baseline; on a
/// single-CPU container the interesting columns are the subtask/steal
/// counters (wall-time parity is expected and documented).
pub fn e15_parallel() -> Table {
    let mut table = Table::new(
        "E15",
        "Intra-query work stealing: latency and subtask counters vs. workers",
        &[
            "instance",
            "workers",
            "split",
            "wall-ms",
            "subtasks",
            "stolen",
            "matches-seq",
        ],
    );
    for m in measure_parallel(8) {
        table.push_row(vec![
            m.name.clone(),
            m.workers.to_string(),
            if m.split { "on" } else { "off" }.to_string(),
            f2(m.wall_ms),
            m.subtasks.to_string(),
            m.subtasks_stolen.to_string(),
            mark(m.matches_baseline),
        ]);
    }
    table
}

/// One small duality instance asked one-shot through both execution routes:
/// the persistent worker pool and the in-process local route
/// (`EngineConfig::local_threshold`).
pub struct LocalMeasurement {
    /// Workload label.
    pub name: String,
    /// The request's [`qld_engine::Request::local_work`] routing estimate.
    pub work: usize,
    /// Mean per-ask latency through the pool round-trip, microseconds.
    pub pool_us: f64,
    /// Mean per-ask latency through the in-process route, microseconds.
    pub local_us: f64,
    /// The local answer matched the pool answer and bypassed the cache.
    pub matches: bool,
}

impl LocalMeasurement {
    /// Pool latency over local latency — above 1 the local route wins.
    pub fn speedup(&self) -> f64 {
        self.pool_us / self.local_us.max(1e-9)
    }

    /// One JSON object for the bench trajectory file.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"work\":{},\"pool_us\":{:.2},\"local_us\":{:.2},\"speedup\":{:.2},\"matches\":{}}}",
            self.name,
            self.work,
            self.pool_us,
            self.local_us,
            self.speedup(),
            self.matches
        )
    }
}

/// Shared by E16 and the `e16_local` bench: sub-threshold one-shot duality
/// checks on two single-worker engines that differ only in
/// `local_threshold` — `0` (everything through the pool) vs. `usize::MAX`
/// (every `check` answered inline on the submitting thread).  Caches are off
/// on both, so each ask pays the full decision; the difference is purely the
/// submission path (queue hop, worker wakeup, cache-key render).  Every local
/// answer is cross-checked against the pool answer.
pub fn measure_local(iters: usize) -> Vec<LocalMeasurement> {
    use qld_engine::{Engine, EngineConfig, Request};
    use qld_hypergraph::generators;

    let mut instances: Vec<(String, Request)> = Vec::new();
    for scale in [2usize, 3, 4] {
        let li = generators::matching_instance(scale);
        instances.push((
            format!("matching-{scale}"),
            Request::DecideDuality { g: li.g, h: li.h },
        ));
    }
    let li = generators::matching_instance(3);
    let mut broken = li.h.clone();
    broken.remove_edge(1);
    instances.push((
        "matching-3-broken".to_string(),
        Request::DecideDuality { g: li.g, h: broken },
    ));

    let make = |local_threshold: usize| {
        Engine::new(EngineConfig {
            workers: 1,
            cache: false,
            local_threshold,
            ..EngineConfig::default()
        })
    };
    let pool_engine = make(0);
    let local_engine = make(usize::MAX);

    let iters = iters.max(1);
    let mut out = Vec::new();
    for (name, request) in instances {
        let work = request.local_work().unwrap_or(0);
        // One warm-up ask per engine doubles as the agreement check.
        let base = pool_engine.run_one(request.clone());
        let inline = local_engine.run_one(request.clone());
        let matches = base.is_ok() && base.outcome == inline.outcome && !inline.stats.cache_hit;
        let time = |engine: &Engine| {
            let started = Instant::now();
            for _ in 0..iters {
                let response = engine.run_one(request.clone());
                assert!(response.is_ok(), "{name}: ask failed during timing");
            }
            started.elapsed().as_secs_f64() * 1e6 / iters as f64
        };
        let pool_us = time(&pool_engine);
        let local_us = time(&local_engine);
        out.push(LocalMeasurement {
            name,
            work,
            pool_us,
            local_us,
            matches,
        });
    }
    out
}

/// E16 — one-shot small-instance latency: the in-process local route
/// (answering sub-threshold `check`s on the session thread) vs. the pool
/// round-trip.  Agreement with the pool answer is part of the table.
pub fn e16_local() -> Table {
    let mut table = Table::new(
        "E16",
        "In-process local route vs. pool round-trip, one-shot small checks",
        &[
            "instance", "work", "pool-us", "local-us", "speedup", "matches",
        ],
    );
    for m in measure_local(40) {
        table.push_row(vec![
            m.name.clone(),
            m.work.to_string(),
            f2(m.pool_us),
            f2(m.local_us),
            f2(m.speedup()),
            mark(m.matches),
        ]);
    }
    table
}

/// One stampede configuration: `k` barrier-synced identical one-shot
/// requests against a fresh engine, with the single-flight layer on or off.
pub struct CoalesceMeasurement {
    /// Workload label.
    pub name: String,
    /// Concurrent duplicate requests in the stampede.
    pub k: usize,
    /// Whether the single-flight layer was enabled (`EngineConfig::coalesce`).
    pub coalesce: bool,
    /// Solver executions the stampede caused (duality decisions the policy
    /// was asked for — every duplicate that is neither coalesced nor a cache
    /// hit runs the solver itself).
    pub executions: u64,
    /// Flights led (`Engine::coalesce_stats().0`).
    pub flights: u64,
    /// Followers that attached to an in-flight leader instead of executing.
    pub coalesced: u64,
    /// Median per-request latency across the stampede, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-request latency, microseconds.
    pub p99_us: f64,
    /// Wall time for the whole stampede, milliseconds.
    pub wall_ms: f64,
    /// Every response succeeded with the same outcome as every other.
    pub matches: bool,
}

impl CoalesceMeasurement {
    /// One JSON object for the `e17_coalesce` trajectory file.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"k\":{},\"coalesce\":{},\"executions\":{},\"flights\":{},\
             \"coalesced\":{},\"p50_us\":{:.1},\"p99_us\":{:.1},\"wall_ms\":{:.2},\"matches\":{}}}",
            self.name,
            self.k,
            self.coalesce,
            self.executions,
            self.flights,
            self.coalesced,
            self.p50_us,
            self.p99_us,
            self.wall_ms,
            self.matches
        )
    }
}

/// The policy behind E17's stampedes: delays every duality decision by a
/// fixed amount (so the leader reliably holds its flight open while the
/// duplicates arrive) and counts its calls — with one duality decision per
/// `check`, the call count *is* the number of solver executions.
struct StampedePolicy {
    delay: std::time::Duration,
    calls: std::sync::atomic::AtomicU64,
}

impl qld_engine::SolverPolicy for StampedePolicy {
    fn choose(
        &self,
        _g: &qld_hypergraph::Hypergraph,
        _h: &qld_hypergraph::Hypergraph,
    ) -> qld_engine::SolverKind {
        self.calls
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::thread::sleep(self.delay);
        qld_engine::SolverKind::BmTree
    }
    fn name(&self) -> &'static str {
        "stampede"
    }
}

/// Shared by E17 and the `e17_coalesce` bench: a stampede of `k` identical
/// one-shot duality checks released together by a barrier against a fresh
/// cached engine, once with the single-flight layer off and once with it on.
/// Each execution pays a fixed `per_call_ms` decision delay, so the leader
/// provably holds its flight open while the duplicates arrive.  With
/// coalescing on, the first miss leads and every concurrent duplicate either
/// attaches to the flight or hits the cache the leader filled — the solver
/// runs exactly once.  Every response is cross-checked against every other.
pub fn measure_coalesce(k: usize, per_call_ms: u64) -> Vec<CoalesceMeasurement> {
    use qld_engine::{Engine, EngineConfig, Request};
    use qld_hypergraph::generators;
    use std::sync::{Arc, Barrier};

    let li = generators::matching_instance(3);
    let request = Request::DecideDuality { g: li.g, h: li.h };
    let workers = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .clamp(2, 8);

    let mut out = Vec::new();
    for coalesce in [false, true] {
        let policy = Arc::new(StampedePolicy {
            delay: std::time::Duration::from_millis(per_call_ms),
            calls: std::sync::atomic::AtomicU64::new(0),
        });
        let engine = Arc::new(Engine::new(EngineConfig {
            workers,
            cache: true,
            coalesce,
            policy: Arc::clone(&policy) as Arc<dyn qld_engine::SolverPolicy>,
            ..EngineConfig::default()
        }));
        let barrier = Arc::new(Barrier::new(k));
        let started = Instant::now();
        let threads: Vec<_> = (0..k)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let barrier = Arc::clone(&barrier);
                let request = request.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    let asked = Instant::now();
                    let response = engine.run_one(request);
                    (asked.elapsed().as_micros() as f64, response)
                })
            })
            .collect();
        let mut latencies = Vec::with_capacity(k);
        let mut responses = Vec::with_capacity(k);
        for t in threads {
            let (us, response) = t.join().expect("stampede thread");
            latencies.push(us);
            responses.push(response);
        }
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        latencies.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize];
        let matches = responses[0].is_ok()
            && responses
                .iter()
                .all(|r| r.is_ok() && r.outcome == responses[0].outcome);
        let (flights, coalesced) = engine.coalesce_stats();
        out.push(CoalesceMeasurement {
            name: "check-matching-3".to_string(),
            k,
            coalesce,
            executions: policy.calls.load(std::sync::atomic::Ordering::Relaxed),
            flights,
            coalesced,
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            wall_ms,
            matches,
        });
    }
    out
}

/// Whether a pair of E17 rows (coalesce off, coalesce on) demonstrates the
/// single-flight win: the coalesced stampede executed the solver exactly
/// once, at least one duplicate actually attached to the flight, every
/// response agreed, and the uncoalesced run executed at least as often.
pub fn coalesce_wins(rows: &[CoalesceMeasurement]) -> bool {
    let off = rows.iter().find(|m| !m.coalesce);
    let on = rows.iter().find(|m| m.coalesce);
    match (off, on) {
        (Some(off), Some(on)) => {
            on.executions == 1
                && on.coalesced >= 1
                && on.matches
                && off.matches
                && off.executions >= on.executions
        }
        _ => false,
    }
}

/// E17 — single-flight request coalescing: a stampede of K identical
/// requests with the flight layer off vs. on.  Coalesced stampedes execute
/// the solver once; every duplicate gets a byte-identical answer.
pub fn e17_coalesce() -> Table {
    let mut table = Table::new(
        "E17",
        "Single-flight coalescing: K-duplicate stampede, flight layer off vs. on",
        &[
            "workload",
            "K",
            "coalesce",
            "executions",
            "flights",
            "coalesced",
            "p50-us",
            "p99-us",
            "wall-ms",
            "matches",
        ],
    );
    for m in measure_coalesce(8, 25) {
        table.push_row(vec![
            m.name.clone(),
            m.k.to_string(),
            if m.coalesce { "on" } else { "off" }.to_string(),
            m.executions.to_string(),
            m.flights.to_string(),
            m.coalesced.to_string(),
            f2(m.p50_us),
            f2(m.p99_us),
            f2(m.wall_ms),
            mark(m.matches),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_round_trip() {
        for id in ALL_EXPERIMENTS {
            assert!(run(id).is_some(), "{id} missing");
        }
        assert!(run("e99").is_none());
    }

    #[test]
    fn e2_bounds_hold() {
        let t = e2_tree_shape();
        assert!(!t.is_empty());
        assert!(all_correctness_cells_pass(&t), "\n{}", t.render());
    }

    #[test]
    fn e9_matches_exact_self_duality() {
        let t = e9_coteries();
        assert!(!t.is_empty());
        assert!(all_correctness_cells_pass(&t), "\n{}", t.render());
    }

    #[test]
    fn small_table_helpers() {
        let li = qld_hypergraph::generators::matching_instance(2);
        assert!(brute_force_agrees(&li));
    }

    #[test]
    fn e15_split_answers_match_and_spawn_subtasks() {
        let ms = measure_parallel(5);
        assert_eq!(ms.len(), 8);
        assert!(
            ms.iter().all(|m| m.matches_baseline),
            "a split run changed an answer"
        );
        // Splitting is observable exactly when forced on.
        assert!(ms.iter().filter(|m| m.split).all(|m| m.subtasks > 0));
        assert!(ms.iter().filter(|m| !m.split).all(|m| m.subtasks == 0));
        for m in &ms {
            let json = m.to_json();
            assert!(json.contains("\"subtasks_stolen\""), "{json}");
        }
    }

    #[test]
    fn e16_local_route_agrees_with_pool() {
        let ms = measure_local(3);
        assert_eq!(ms.len(), 4);
        for m in &ms {
            assert!(m.matches, "{}: local answer diverged from pool", m.name);
            assert!(m.work > 0, "{}: no local_work estimate", m.name);
            assert!(m.pool_us > 0.0 && m.local_us > 0.0);
            assert!(m.to_json().contains("\"speedup\""), "{}", m.to_json());
        }
    }

    #[test]
    fn e17_coalesced_stampede_executes_once() {
        let ms = measure_coalesce(8, 25);
        assert_eq!(ms.len(), 2);
        let on = ms.iter().find(|m| m.coalesce).unwrap();
        assert_eq!(on.executions, 1, "coalesced stampede ran the solver twice");
        assert!(on.matches, "a follower's answer diverged");
        // One flight; every duplicate either attached to it or hit the
        // cache the leader filled — nothing executed on its own.
        assert_eq!(on.flights, 1);
        assert!(on.coalesced >= 1 && on.coalesced <= 7, "{}", on.coalesced);
        assert!(coalesce_wins(&ms), "verdict did not hold: {:?}", {
            ms.iter().map(|m| m.to_json()).collect::<Vec<_>>()
        });
        for m in &ms {
            assert!(m.to_json().contains("\"executions\""), "{}", m.to_json());
        }
    }

    #[test]
    fn e13_streams_agree_and_first_item_beats_done() {
        let t = e13_streaming();
        assert!(!t.is_empty());
        assert!(all_correctness_cells_pass(&t), "\n{}", t.render());
        for m in measure_streaming() {
            assert!(m.agree, "{}", m.name);
            assert!(m.items >= 12, "{}: too few items", m.name);
            assert!(
                m.first_item_us <= m.done_us,
                "{}: first item after done",
                m.name
            );
            let json = m.to_json();
            assert!(json.contains("\"first_item_us\""), "{json}");
        }
    }
}
