//! Regeneration of Figure 1 (the complexity-class diagram of Section 6).

use qld_logspace::model::{dual_upper_bounds, figure1_inclusions, included_in, ComplexityClass};

/// The figure as ASCII art, laid out by "levels" of the inclusion order (bottom =
/// smallest classes), with the paper's two new upper bounds marked.
pub fn figure1_ascii() -> String {
    let classes = ComplexityClass::all();
    // level = length of the longest chain below the class
    let level = |c: ComplexityClass| -> usize {
        classes
            .iter()
            .filter(|&&other| other != c && included_in(other, c))
            .map(|&other| 1 + chain_below(other))
            .max()
            .unwrap_or(0)
    };
    fn chain_below(c: ComplexityClass) -> usize {
        ComplexityClass::all()
            .iter()
            .filter(|&&other| other != c && included_in(other, c))
            .map(|&other| 1 + chain_below(other))
            .max()
            .unwrap_or(0)
    }
    let max_level = classes.iter().map(|&c| level(c)).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str("Figure 1 — upper bounds for DUAL (ascending lines = class inclusion)\n");
    out.push_str("=====================================================================\n\n");
    for l in (0..=max_level).rev() {
        let mut names: Vec<String> = classes
            .iter()
            .filter(|&&c| level(c) == l)
            .map(|&c| {
                let marker = if c.is_new_bound() { " *" } else { "" };
                let dual = if dual_upper_bounds().contains(&c) {
                    " [DUAL ∈]"
                } else {
                    ""
                };
                format!("{}{}{}", c.notation(), marker, dual)
            })
            .collect();
        names.sort();
        out.push_str(&format!("level {l}:  {}\n", names.join("   |   ")));
        if l > 0 {
            out.push_str("              |\n");
        }
    }
    out.push_str("\ninclusions drawn in the paper:\n");
    for (a, b) in figure1_inclusions() {
        out.push_str(&format!("  {}  ⊆  {}\n", a.notation(), b.notation()));
    }
    out.push_str("\n(*) new upper bound contributed by the paper\n");
    out
}

/// The figure as a Graphviz DOT digraph (edges point from the smaller class upward).
pub fn figure1_dot() -> String {
    let mut out = String::new();
    out.push_str("digraph figure1 {\n  rankdir=BT;\n  node [shape=box, fontname=\"monospace\"];\n");
    for c in ComplexityClass::all() {
        let style = if c.is_new_bound() {
            ", style=filled, fillcolor=lightblue"
        } else {
            ""
        };
        let label = if dual_upper_bounds().contains(&c) {
            format!("{}\\n(DUAL ∈)", c.notation())
        } else {
            c.notation().to_string()
        };
        out.push_str(&format!("  \"{:?}\" [label=\"{}\"{}];\n", c, label, style));
    }
    for (a, b) in figure1_inclusions() {
        out.push_str(&format!("  \"{a:?}\" -> \"{b:?}\";\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_mentions_every_class_and_the_new_bounds() {
        let text = figure1_ascii();
        for c in ComplexityClass::all() {
            assert!(text.contains(c.notation()), "missing {}", c.notation());
        }
        assert!(text.contains("(*) new upper bound"));
        assert!(text.contains("DSPACE[log²n] *"));
    }

    #[test]
    fn dot_is_well_formed() {
        let dot = figure1_dot();
        assert!(dot.starts_with("digraph figure1 {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches("->").count(), figure1_inclusions().len());
        for c in ComplexityClass::all() {
            assert!(dot.contains(&format!("\"{c:?}\"")));
        }
    }
}
